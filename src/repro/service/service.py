"""The multi-tenant query service core.

:class:`QueryService` is the serving layer over one dataset
(:class:`~repro.rdf.graph.Graph`): it owns the tenant registry, the
global :class:`~repro.governance.AdmissionController`, the
:class:`~repro.service.plancache.PlanCache`, the open result cursors
(pagination), and the service's metric families. It deliberately
contains **no transport**: requests are plain Python calls (the
versioned JSON envelopes live in :mod:`repro.service.api`, the
simulated clients in :mod:`repro.service.workload`), which is what
makes the whole serving stack testable on fake clocks.

Admission happens in two layers, in this order:

1. **tenant quota** — a tenant at its ``max_in_flight`` cap is shed
   with :class:`~repro.service.errors.QuotaExceeded` *before* the
   global pool is consulted, so a greedy tenant rejects its own excess
   instead of occupying pool slots others could use;
2. **global pool** — the admission controller's fail-fast slot pool
   sheds with the governance layer's typed
   :class:`~repro.governance.Overloaded` when total concurrency is
   exhausted.

The request scheduler (:mod:`repro.service.scheduler`) replaces this
direct path's fail-fast behaviour with virtual-time queues, but it
reuses the same tenant accounting, plan cache and execution core via
:meth:`QueryService.execute_admitted`.

Execution for one dataset is strictly serial (prepared plans are
shared mutable pipelines); concurrency in the harness is *simulated*
concurrency in virtual time, which is exactly what makes two runs of
the same seeded workload byte-identical.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from ..governance import (
    AdmissionController,
    BudgetExceeded,
    GovernanceStats,
    QueryBudget,
)
from ..observability import MetricsRegistry, Tracer
from ..observability.qlog import QueryLogRecord
from ..rdf.graph import Graph
from ..rdf.terms import Term
from ..sparql.prepared import PreparedQuery, prepare
from ..sparql.results import Solution
from .errors import (
    InvalidRequest,
    QuotaExceeded,
    UnknownCursor,
    UnknownTemplate,
    error_payload,
)
from .plancache import PlanCache
from .tenancy import TenantRegistry, TenantSpec, TenantState

__all__ = ["QueryService", "ServiceResponse", "OUTCOMES"]

#: Latency histogram bounds: 1 ms .. 10 s, the service's SLO band.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: The full request-outcome vocabulary. Counter children for every
#: (tenant, outcome) pair are created eagerly at service construction
#: so expositions and reports are schema-stable across seeds — a
#: tenant that never shed still reports ``shed_quota 0``.
OUTCOMES = (
    "budget_exceeded", "completed", "failed",
    "shed_overload", "shed_quota", "shed_timeout",
)


def template_id(text: str) -> str:
    """Stable short id for a query template (EXPLAIN/profile key)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


class ServiceResponse:
    """What one successful request returns to the envelope layer."""

    __slots__ = ("tenant", "kind", "vars", "rows", "failures",
                 "budget_stats", "plan_cache_hit", "explain_id",
                 "explain", "next_page_token", "total_rows", "degraded",
                 "est_rows", "replans", "stats_version", "trace_id",
                 "plan_signature")

    def __init__(self, tenant: str, kind: str, vars: List[str],
                 rows: List[Solution], failures: Dict[str, str],
                 budget_stats: Optional[Dict[str, object]],
                 plan_cache_hit: bool, explain_id: str,
                 explain: Optional[str] = None,
                 next_page_token: Optional[str] = None,
                 total_rows: Optional[int] = None,
                 degraded: Optional[Dict[str, object]] = None,
                 est_rows: Optional[float] = None,
                 replans: int = 0,
                 stats_version: Optional[int] = None,
                 trace_id: Optional[str] = None,
                 plan_signature: Optional[str] = None):
        self.tenant = tenant
        self.kind = kind
        self.vars = vars
        self.rows = rows
        self.failures = failures
        self.budget_stats = budget_stats
        self.plan_cache_hit = plan_cache_hit
        self.explain_id = explain_id
        self.explain = explain
        self.next_page_token = next_page_token
        self.total_rows = total_rows
        #: Graceful-degradation report (None when the answer is whole):
        #: ``completeness`` (sources answered/total + which failed),
        #: ``stale_serves`` (responses built from expired cache), and
        #: ``truncated`` (the deadline cut the answer short).
        self.degraded = degraded
        #: Planner's root-node row estimate (query-log provenance).
        self.est_rows = est_rows
        #: Mid-query re-plans summed over the plan tree.
        self.replans = replans
        #: StatsStore version the plan was compiled against.
        self.stats_version = stats_version
        #: Correlation id stamped on the root span (query-log join key).
        self.trace_id = trace_id
        #: Stable root plan signature (StatsStore feedback key).
        self.plan_signature = plan_signature

    def __repr__(self) -> str:
        return (f"<ServiceResponse {self.tenant} {self.kind} "
                f"{len(self.rows)} rows hit={self.plan_cache_hit}>")


class _Cursor:
    """One open paginated result set, owned by one tenant."""

    __slots__ = ("cursor_id", "tenant", "vars", "rows", "explain_id",
                 "created_at")

    def __init__(self, cursor_id: str, tenant: str, vars: List[str],
                 rows: List[Solution], explain_id: str,
                 created_at: float):
        self.cursor_id = cursor_id
        self.tenant = tenant
        self.vars = vars
        self.rows = rows
        self.explain_id = explain_id
        self.created_at = created_at


class QueryService:
    """Multi-tenant SPARQL serving over one graph; see module docs."""

    def __init__(self, graph: Graph,
                 tenants: Optional[List[TenantSpec]] = None,
                 max_concurrent: int = 8,
                 plan_cache_size: int = 64,
                 max_cursors: int = 256,
                 cursor_ttl_s: Optional[float] = None,
                 retry_after_hint_s: float = 0.05,
                 clock: Callable[[], float] = time.monotonic,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 service_resolver=None,
                 federation=None,
                 stats_store=None,
                 replan_ratio=None,
                 slo=None,
                 query_log=None,
                 recorder=None):
        self.graph = graph
        self.clock = clock
        self.tracer = tracer
        self.service_resolver = service_resolver
        #: Optional :class:`~repro.observability.SLOEngine`: every
        #: finished request is fed into its ``tenant:<name>`` and
        #: ``service`` scopes (see :meth:`observe_request`).
        self.slo = slo
        #: Optional :class:`~repro.observability.QueryLog`: every
        #: finished request is offered as a :class:`QueryLogRecord`.
        self.query_log = query_log
        #: Optional :class:`~repro.observability.FlightRecorder`:
        #: request completions and metric deltas land in its ring.
        self.recorder = recorder
        #: Optional :class:`~repro.sparql.StatsStore`: cached plans are
        #: compiled against its feedback and stamped with its version;
        #: when accumulated feedback bumps the version, the plan cache
        #: drops stale entries on their next lookup and re-plans.
        self.stats_store = stats_store
        #: Divergence ratio arming mid-query re-planning (None = off).
        self.replan_ratio = replan_ratio
        #: Optional :class:`~repro.sparql.FederationEngine` serving
        #: templates registered with ``federated=True``. Federated
        #: requests always run in ``partial_results`` mode: a failing
        #: source degrades the answer (reported in the response's
        #: ``degraded`` block) instead of failing the request.
        self.federation = federation
        self._federated_texts: set = set()
        self.tenants = TenantRegistry(tenants)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = GovernanceStats()
        self.controller = AdmissionController(
            max_concurrent=max_concurrent,
            max_queue_depth=0,  # queueing is the scheduler's job
            retry_after_hint_s=retry_after_hint_s,
            clock=clock,
            stats=self.stats,
        )
        self.plan_cache = PlanCache(plan_cache_size, metrics=self.metrics,
                                    stats=stats_store)
        self.templates: Dict[str, str] = {}
        self.max_cursors = max_cursors
        self.cursor_ttl_s = cursor_ttl_s
        self._cursors: "OrderedDict[str, _Cursor]" = OrderedDict()
        self._cursor_seq = 0
        self._requests = self.metrics.counter(
            "service_requests_total",
            "requests by tenant and outcome",
            labelnames=("tenant", "outcome"),
        )
        self._latency = self.metrics.histogram(
            "service_request_latency_seconds",
            "request latency (arrival to completion) by tenant",
            labelnames=("tenant",),
            buckets=LATENCY_BUCKETS,
        )
        self._pages = self.metrics.counter(
            "service_pages_total",
            "result pages served by tenant",
            labelnames=("tenant",),
        )
        # Emit explicit zero rows for the full outcome vocabulary up
        # front: a lazily-created child would make the exposition (and
        # the workload report's per-tenant outcome block) depend on
        # which outcomes a given seed happened to produce.
        for state in self.tenants:
            for outcome in OUTCOMES:
                self._requests.labels(tenant=state.spec.name,
                                      outcome=outcome)
        self._trace_seq = 0
        self._direct_seq = 0

    # -- templates ---------------------------------------------------------
    def register_template(self, name: str, text: str,
                          federated: bool = False) -> str:
        """Register a named prepared-query template; returns its id.

        ``federated=True`` routes the template through the service's
        :class:`~repro.sparql.FederationEngine` (required at
        construction) instead of the local graph's plan cache.
        """
        if federated and self.federation is None:
            raise InvalidRequest(
                f"template {name!r} is federated but the service has "
                f"no federation engine")
        self.templates[name] = text
        if federated:
            self._federated_texts.add(text)
        return template_id(text)

    def template_text(self, name: str) -> str:
        text = self.templates.get(name)
        if text is None:
            raise UnknownTemplate(f"unknown template {name!r}")
        return text

    def invalidate_template(self, name: Optional[str] = None) -> int:
        """Explicit plan-cache invalidation: one template or all.

        Call after mutating the graph (or whatever the plans were
        costed against); returns how many cached plans were dropped.
        """
        if name is None:
            return self.plan_cache.clear()
        text = self.templates.get(name, name)
        return 1 if self.plan_cache.invalidate(text) else 0

    # -- accounting helpers ------------------------------------------------
    def count_outcome(self, tenant: str, outcome: str) -> None:
        self._requests.labels(tenant=tenant, outcome=outcome).inc()
        if self.recorder is not None:
            self.recorder.record("metric_delta",
                                 family="service_requests_total",
                                 tenant=tenant, outcome=outcome)

    def count_for(self, tenant: str, outcome: str) -> float:
        """Current value of one tenant x outcome request counter
        (children are pre-created, so zero rows exist)."""
        return self._requests.labels(tenant=tenant, outcome=outcome).value

    def observe_latency(self, tenant: str, seconds: float) -> None:
        self._latency.labels(tenant=tenant).observe(seconds)

    def latency_histogram(self, tenant: str):
        return self._latency.labels(tenant=tenant)

    def next_trace_id(self) -> str:
        """Deterministic per-execution correlation id (``t00000001``…)."""
        self._trace_seq += 1
        return f"t{self._trace_seq:08d}"

    @staticmethod
    def _plan_rollup(plan):
        """(root est_rows, tree replans, plan signature) off a plan.

        Operator ``signature`` fields are per-node feedback keys (the
        root rarely has one), so the plan-level identity the query log
        joins on is a digest over the pre-order shape: every node's
        signature-or-label. Two executions of the same physical plan
        share it; a replanned join order changes it.
        """
        if plan is None:
            return None, 0, None
        replans = 0
        parts: List[str] = []
        stack = [plan]
        while stack:
            node = stack.pop()
            replans += node.replans
            parts.append(node.signature or node.label)
            stack.extend(node.children)
        signature = hashlib.sha256(
            "|".join(parts).encode("utf-8")).hexdigest()[:12]
        est = plan.est_rows
        return (None if est is None else round(float(est), 6)), \
            replans, signature

    def observe_request(self, *, seq: int, tenant: str, outcome: str,
                        at_s: float,
                        arrival_s: Optional[float] = None,
                        latency_s: Optional[float] = None,
                        rows: Optional[int] = None,
                        degraded: Optional[Dict[str, object]] = None,
                        error: Optional[Dict[str, object]] = None,
                        template: Optional[str] = None,
                        response: Optional[ServiceResponse] = None) -> None:
        """Feed one finished request into the observability stack.

        The single funnel shared by the scheduler (`_complete` /
        `_finish_shed`) and the direct fail-fast path: flight-recorder
        entry first (so an alert snapshot taken *during* the SLO update
        already contains this request), then SLO windows, then the
        query log (whose SLO-breach flag reads the engine the request
        was just folded into). No-ops when nothing is attached.
        """
        stale = bool(degraded and degraded.get("stale_serves"))
        if self.recorder is not None:
            self.recorder.record("request", at_s=at_s, request_seq=seq,
                                 tenant=tenant, outcome=outcome,
                                 latency_s=(None if latency_s is None
                                            else round(latency_s, 9)),
                                 degraded=degraded is not None)
        if self.slo is not None:
            for scope in (f"tenant:{tenant}", "service"):
                self.slo.observe(scope, outcome=outcome,
                                 latency_s=latency_s,
                                 degraded=degraded is not None,
                                 stale=stale, at_s=at_s)
        if self.query_log is None:
            return
        breach = (self.slo is not None and latency_s is not None
                  and self.slo.latency_breach(f"tenant:{tenant}",
                                              latency_s))
        record = QueryLogRecord(
            seq=seq, tenant=tenant,
            template=(template if template is not None else
                      (response.explain_id if response is not None
                       else "")),
            outcome=outcome,
            at_s=at_s,
            latency_s=latency_s,
            degraded=degraded,
            error_code=(error or {}).get("code"),
            slo_breach=breach,
        )
        if response is not None:
            record.trace_id = response.trace_id
            record.stats_version = response.stats_version
            record.est_rows = response.est_rows
            record.replans = response.replans
            record.actual_rows = (len(response.rows) if rows is None
                                  else rows)
            record.plan_signature = response.plan_signature
            record.budget = response.budget_stats
        elif rows is not None:
            record.actual_rows = rows
        self.query_log.offer(record)

    # -- the execution core ------------------------------------------------
    def _prepared(self, text: str):
        """Plan-cache lookup; a miss parses + plans under trace spans."""
        def build(template: str) -> PreparedQuery:
            if self.tracer is not None:
                with self.tracer.span("service.plan",
                                      template=template_id(template)):
                    return prepare(self.graph, template,
                                   service_resolver=self.service_resolver,
                                   stats=self.stats_store)
            return prepare(self.graph, template,
                           service_resolver=self.service_resolver,
                           stats=self.stats_store)

        return self.plan_cache.get_or_prepare(text, build)

    def execute_admitted(self, state: TenantState, text: str,
                         params: Optional[Dict[str, Term]] = None,
                         budget: Optional[QueryBudget] = None,
                         page_size: Optional[int] = None,
                         explain: bool = False) -> ServiceResponse:
        """Run one already-admitted request (no admission, no quota).

        This is the execution core shared by the direct path and the
        virtual-time scheduler: plan-cache lookup, prepared execution,
        pagination cursor creation, tenant/bookkeeping on success.
        Budget violations propagate to the caller, which owns outcome
        classification. Templates registered ``federated=True`` route
        through the federation engine in partial-results mode instead.
        """
        if text in self._federated_texts:
            return self._execute_federated(state, text, params=params,
                                           budget=budget,
                                           page_size=page_size,
                                           explain=explain)
        prepared, hit = self._prepared(text)
        trace_id = self.next_trace_id()
        tracer = self.tracer
        if tracer is not None:
            with tracer.span("service.execute", tenant=state.spec.name,
                             template=template_id(text),
                             cache="hit" if hit else "miss"):
                result = prepared.run(bindings=params, budget=budget,
                                      tracer=tracer,
                                      replan_ratio=self.replan_ratio,
                                      trace_id=trace_id)
        else:
            result = prepared.run(bindings=params, budget=budget,
                                  replan_ratio=self.replan_ratio,
                                  trace_id=trace_id)
        rows = list(result.rows)
        vars = list(result.vars)
        exp_id = template_id(text)
        rows, next_token, total = self._paginate(
            state.spec.name, vars, rows, exp_id, page_size)
        est_rows, replans, plan_signature = self._plan_rollup(result.plan)
        return ServiceResponse(
            tenant=state.spec.name,
            kind=result.kind,
            vars=vars,
            rows=rows,
            failures=dict(result.failures),
            budget_stats=result.budget_stats,
            plan_cache_hit=hit,
            explain_id=exp_id,
            explain=prepared.explain() if explain else None,
            next_page_token=next_token,
            total_rows=total,
            est_rows=est_rows,
            replans=replans,
            stats_version=prepared.stats_version,
            trace_id=trace_id,
            plan_signature=plan_signature,
        )

    def _paginate(self, tenant: str, vars: List[str],
                  rows: List[Solution], exp_id: str,
                  page_size: Optional[int]):
        """First-page slicing + cursor creation, shared by both the
        local and the federated execution paths."""
        next_token: Optional[str] = None
        total: Optional[int] = None
        if page_size is not None:
            if page_size < 1:
                raise InvalidRequest(f"page_size must be >= 1: {page_size}")
            total = len(rows)
            if total > page_size:
                cursor = self._open_cursor(tenant, vars, rows, exp_id)
                next_token = f"{cursor.cursor_id}:{page_size}:{page_size}"
            rows = rows[:page_size]
            self._pages.labels(tenant=tenant).inc()
        return rows, next_token, total

    def _execute_federated(self, state: TenantState, text: str,
                           params: Optional[Dict[str, Term]] = None,
                           budget: Optional[QueryBudget] = None,
                           page_size: Optional[int] = None,
                           explain: bool = False) -> ServiceResponse:
        """One federated request, always in partial-results mode.

        A failing source (dead replica set, tripped breaker, deadline
        cut-off) degrades the answer instead of failing it; what was
        lost is reported in the response's ``degraded`` block so the
        client can tell a whole answer from a partial one.
        """
        if params:
            raise InvalidRequest(
                "federated templates do not take parameters")
        engine = self.federation
        stale_before = engine.stats.stale_serves
        trace_id = self.next_trace_id()
        tracer = self.tracer
        if tracer is not None:
            with tracer.span("service.federated",
                             tenant=state.spec.name,
                             template=template_id(text)):
                result = engine.query(text, partial_results=True,
                                      budget=budget, tracer=tracer)
        else:
            result = engine.query(text, partial_results=True,
                                  budget=budget)
        result.trace_id = trace_id
        rows = list(result.rows)
        vars = list(result.vars)
        exp_id = template_id(text)
        rows, next_token, total = self._paginate(
            state.spec.name, vars, rows, exp_id, page_size)
        degraded = self._degraded_block(
            result, budget, engine.stats.stale_serves - stale_before)
        est_rows, replans, plan_signature = self._plan_rollup(result.plan)
        return ServiceResponse(
            tenant=state.spec.name,
            kind=result.kind,
            vars=vars,
            rows=rows,
            failures=dict(result.failures),
            budget_stats=result.budget_stats,
            plan_cache_hit=False,  # federation plans are not cached
            explain_id=exp_id,
            explain=None,
            next_page_token=next_token,
            total_rows=total,
            degraded=degraded,
            est_rows=est_rows,
            replans=replans,
            trace_id=trace_id,
            plan_signature=plan_signature,
        )

    def _degraded_block(self, result, budget: Optional[QueryBudget],
                        stale_serves: int) -> Optional[Dict[str, object]]:
        """The client-visible degradation report, or None when whole."""
        total = self.federation.source_count
        failed = sorted(result.failures)
        truncated = bool(budget is not None and budget.deadline_expired)
        if not failed and not truncated and stale_serves == 0:
            return None
        return {
            "completeness": {
                "answered": total - len(failed),
                "total": total,
                "failed_sources": failed,
            },
            "stale_serves": stale_serves,
            "truncated": truncated,
        }

    # -- the direct (fail-fast) request path --------------------------------
    def execute(self, tenant: str, query: Optional[str] = None, *,
                template: Optional[str] = None,
                params: Optional[Dict[str, Term]] = None,
                budget: Optional[QueryBudget] = None,
                page_size: Optional[int] = None,
                explain: bool = False) -> ServiceResponse:
        """Admit and run one request now (no queueing — shed or serve).

        Exactly one of ``query`` (raw text) and ``template`` (a name
        registered via :meth:`register_template`) must be given.
        Raises the typed admission/quota/budget errors; the envelope
        layer renders them.
        """
        if (query is None) == (template is None):
            raise InvalidRequest(
                "exactly one of query text and template name is required")
        state = self.tenants.get(tenant)
        text = query if query is not None else self.template_text(template)
        state.submitted += 1
        template_hash = template_id(text)
        if state.at_capacity:
            state.shed_quota += 1
            self.count_outcome(tenant, "shed_quota")
            exc = QuotaExceeded(
                f"tenant {tenant!r} at max_in_flight="
                f"{state.spec.max_in_flight}",
                tenant=tenant,
                retry_after_s=self.controller.retry_after_hint_s,
            )
            self._observe_direct(tenant, "shed_quota", template_hash,
                                 exc=exc)
            raise exc
        if budget is None:
            budget = state.make_budget(self.clock)
        started = self.clock()
        try:
            slot = self.controller.admit(budget)
        except Exception as exc:
            state.shed_overload += 1
            self.count_outcome(tenant, "shed_overload")
            self._observe_direct(tenant, "shed_overload", template_hash,
                                 exc=exc)
            raise
        state.in_flight += 1
        try:
            response = self.execute_admitted(
                state, text, params=params, budget=budget,
                page_size=page_size, explain=explain)
        except BudgetExceeded as exc:
            state.budget_exceeded += 1
            self.stats.record_outcome(exc, budget)
            self.count_outcome(tenant, "budget_exceeded")
            self._observe_direct(tenant, "budget_exceeded", template_hash,
                                 exc=exc, latency_s=self.clock() - started)
            raise
        except Exception as exc:
            state.failed += 1
            self.count_outcome(tenant, "failed")
            self._observe_direct(tenant, "failed", template_hash,
                                 exc=exc, latency_s=self.clock() - started)
            raise
        else:
            state.completed += 1
            self.stats.record_outcome(None, budget)
            self.count_outcome(tenant, "completed")
            latency = self.clock() - started
            self.observe_latency(tenant, latency)
            self._observe_direct(tenant, "completed", template_hash,
                                 latency_s=latency, response=response)
            return response
        finally:
            state.in_flight -= 1
            slot.release()

    def _observe_direct(self, tenant: str, outcome: str, template: str,
                        exc: Optional[BaseException] = None,
                        latency_s: Optional[float] = None,
                        response: Optional[ServiceResponse] = None
                        ) -> None:
        """Outcome classification -> observability, for the direct
        (unscheduled) path; the scheduler calls observe_request with
        its own records instead."""
        if self.slo is None and self.query_log is None \
                and self.recorder is None:
            return
        self._direct_seq += 1
        self.observe_request(
            seq=self._direct_seq, tenant=tenant, outcome=outcome,
            at_s=self.clock(), latency_s=latency_s,
            degraded=response.degraded if response is not None else None,
            error=None if exc is None else error_payload(exc),
            template=template, response=response)

    # -- pagination ---------------------------------------------------------
    def _open_cursor(self, tenant: str, vars: List[str],
                     rows: List[Solution], explain_id: str) -> _Cursor:
        self._cursor_seq += 1
        cursor = _Cursor(f"c{self._cursor_seq:08d}", tenant, vars, rows,
                         explain_id, self.clock())
        self._cursors[cursor.cursor_id] = cursor
        while len(self._cursors) > self.max_cursors:
            self._cursors.popitem(last=False)
        return cursor

    def fetch_page(self, tenant: str, page_token: str) -> ServiceResponse:
        """The next page of an open cursor; tenants see only their own.

        The token encodes ``<cursor_id>:<offset>:<page_size>``; each
        page is a pure slice of the materialized result, so
        concatenating every page reproduces the direct evaluator
        call's rows exactly — same rows, same order, no gaps, no
        duplicates.
        """
        self.tenants.get(tenant)  # raises UnknownTenant
        parts = page_token.split(":")
        if len(parts) != 3 or not parts[1].isdigit() \
                or not parts[2].isdigit() or int(parts[2]) < 1:
            raise InvalidRequest(f"malformed page token {page_token!r}")
        cursor_id, offset, size = parts[0], int(parts[1]), int(parts[2])
        cursor = self._cursors.get(cursor_id)
        if cursor is not None and self.cursor_ttl_s is not None \
                and self.clock() - cursor.created_at > self.cursor_ttl_s:
            del self._cursors[cursor_id]
            cursor = None
        # An unknown cursor and another tenant's cursor are the same
        # error on the wire: cursors must not leak across tenants even
        # by existence.
        if cursor is None or cursor.tenant != tenant:
            raise UnknownCursor(f"unknown or expired cursor {cursor_id!r}")
        rows = cursor.rows[offset:offset + size]
        next_offset = offset + size
        if next_offset < len(cursor.rows):
            next_token = f"{cursor_id}:{next_offset}:{size}"
        else:
            next_token = None
            del self._cursors[cursor_id]  # drained: free it eagerly
        self._pages.labels(tenant=tenant).inc()
        return ServiceResponse(
            tenant=tenant,
            kind="SELECT",
            vars=list(cursor.vars),
            rows=rows,
            failures={},
            budget_stats=None,
            plan_cache_hit=True,  # pages never re-plan by construction
            explain_id=cursor.explain_id,
            next_page_token=next_token,
            total_rows=len(cursor.rows),
        )

    def stream(self, tenant: str, query: Optional[str] = None, *,
               template: Optional[str] = None,
               params: Optional[Dict[str, Term]] = None,
               budget: Optional[QueryBudget] = None,
               page_size: int = 64, explain: bool = False):
        """Yield a request's result as consecutive page responses.

        The streamed delivery path: one admitted execution, then pages
        pulled off the cursor until it drains. Lazy — a consumer that
        stops early leaves the remaining pages unserved (the cursor
        ages out via TTL/LRU).
        """
        response = self.execute(tenant, query, template=template,
                                params=params, budget=budget,
                                page_size=page_size, explain=explain)
        yield response
        token = response.next_page_token
        while token is not None:
            page = self.fetch_page(tenant, token)
            yield page
            token = page.next_page_token
