"""Tenants: quotas, priorities, and per-tenant accounting.

A :class:`TenantSpec` is the declarative contract one tenant signed up
for: how many of its queries may run at once (``max_in_flight``), how
many may wait (``max_queued``), how long one may wait before it is shed
(``queue_timeout_s``), which priority class its traffic dispatches in,
and the default :class:`~repro.governance.QueryBudget` limits stamped
onto every request that does not bring its own.

Quotas are *isolation* devices, not capacity devices: the global
:class:`~repro.governance.AdmissionController` bounds total concurrency,
while the per-tenant ``max_in_flight`` cap guarantees that one greedy
tenant saturating its own allowance cannot consume the whole pool —
the service dispatcher skips a tenant at its cap and serves the next
eligible one, so a tenant with traffic and spare quota always makes
progress (no starvation).

:class:`TenantState` is the runtime side: the FIFO wait queue, the
in-flight count, and the per-tenant counters the workload report and
the metrics registry read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional

from ..governance import QueryBudget
from ..resilience import RetryBudget
from .errors import UnknownTenant

__all__ = ["TenantSpec", "TenantState", "TenantRegistry"]


@dataclass(frozen=True)
class TenantSpec:
    """Declarative per-tenant quotas, priority and default budget.

    ``priority`` orders dispatch (higher first; ties round-robin).
    ``weight`` is only used by the workload generator's tenant mix.
    """

    name: str
    priority: int = 0
    max_in_flight: int = 2
    max_queued: int = 16
    queue_timeout_s: Optional[float] = None
    weight: float = 1.0
    deadline_s: Optional[float] = None
    max_rows: Optional[int] = None
    max_triples: Optional[int] = None
    max_fetches: Optional[int] = None
    #: Retry-budget token bucket shared by all of this tenant's
    #: in-flight queries: each dispatched request deposits
    #: ``retry_ratio`` tokens, each retry/hedge issued anywhere in the
    #: stack withdraws one. ``None`` disables the budget (unbounded
    #: retries, the pre-chaos behaviour).
    retry_ratio: Optional[float] = None
    retry_cap: float = 10.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.max_in_flight < 1:
            raise ValueError(f"{self.name}: max_in_flight must be >= 1")
        if self.max_queued < 0:
            raise ValueError(f"{self.name}: max_queued must be >= 0")

    def make_budget(self, clock) -> QueryBudget:
        """A fresh budget stamped with this tenant's default limits."""
        return QueryBudget(
            deadline_s=self.deadline_s,
            max_rows=self.max_rows,
            max_triples=self.max_triples,
            max_fetches=self.max_fetches,
            clock=clock,
        )


class TenantState:
    """Runtime state for one tenant: queue, in-flight, counters."""

    __slots__ = ("spec", "queue", "in_flight", "submitted", "completed",
                 "shed_quota", "shed_overload", "shed_timeout",
                 "budget_exceeded", "failed", "retry_budget")

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self.queue: Deque[object] = deque()
        self.in_flight = 0
        self.submitted = 0
        self.completed = 0
        self.shed_quota = 0       # per-tenant queue/quota rejections
        self.shed_overload = 0    # global slot-pool rejections
        self.shed_timeout = 0     # queued past queue_timeout_s
        self.budget_exceeded = 0
        self.failed = 0
        # One bucket per tenant, shared by every in-flight query —
        # isolation again: tenant A's retry storm cannot drain B's.
        self.retry_budget: Optional[RetryBudget] = (
            None if spec.retry_ratio is None
            else RetryBudget(ratio=spec.retry_ratio, cap=spec.retry_cap)
        )

    def make_budget(self, clock) -> QueryBudget:
        """A fresh request budget carrying the tenant's retry bucket,
        so every nested retry/hedge site can consult it."""
        budget = self.spec.make_budget(clock)
        budget.retry_budget = self.retry_budget
        return budget

    @property
    def at_capacity(self) -> bool:
        return self.in_flight >= self.spec.max_in_flight

    @property
    def shed(self) -> int:
        return self.shed_quota + self.shed_overload + self.shed_timeout

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed_quota": self.shed_quota,
            "shed_overload": self.shed_overload,
            "shed_timeout": self.shed_timeout,
            "budget_exceeded": self.budget_exceeded,
            "failed": self.failed,
        }


class TenantRegistry:
    """All tenants of one service, in deterministic dispatch order."""

    def __init__(self, specs: Optional[List[TenantSpec]] = None):
        self._states: Dict[str, TenantState] = {}
        for spec in specs or ():
            self.register(spec)

    def register(self, spec: TenantSpec) -> TenantState:
        if spec.name in self._states:
            raise ValueError(f"tenant {spec.name!r} already registered")
        state = TenantState(spec)
        self._states[spec.name] = state
        return state

    def get(self, name: str) -> TenantState:
        state = self._states.get(name)
        if state is None:
            raise UnknownTenant(f"unknown tenant {name!r}")
        return state

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[TenantState]:
        """States in registration order (dispatch tie-break order)."""
        return iter(self._states.values())

    def names(self) -> List[str]:
        return list(self._states)
