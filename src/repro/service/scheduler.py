"""Deterministic virtual-time request scheduling.

The :class:`RequestScheduler` is the piece that turns "thousands of
concurrent clients" into a reproducible artifact. It is a discrete
event simulator: requests *arrive* at virtual timestamps, wait in
per-tenant FIFO queues, are *dispatched* into the global slot pool in
priority order, execute for a *simulated* service time derived from
the work the query actually did (triples scanned, rows produced, plan
cache cold or warm), and *complete* at virtual timestamps that free
their slots for the next dispatch. Nothing sleeps; the only clock is
a :class:`VirtualClock` that jumps from event to event, shared with
the service, every budget, and the tracer.

Scheduling disciplines, all deterministic:

- **event order** — a binary heap keyed ``(time, kind, seq)`` where
  completions sort before arrivals at the same instant (a freed slot
  is visible to a simultaneous arrival) and ``seq`` breaks remaining
  ties in submission order;
- **dispatch order** — among tenants with queued work and spare
  ``max_in_flight`` quota: highest priority first, then least recently
  served (round-robin), then registration order — so equal-priority
  tenants share slots fairly and a greedy tenant cannot starve others;
- **batch execution through the worker pool** — every dispatch round
  runs its admitted requests through a fake-clock
  :class:`~repro.parallel.WorkerPool` (serial executor), inheriting
  the pool's submission-order merge and all-tasks-run error semantics.

Real executions happen at dispatch (the query truly runs, charging
its budget); what is simulated is only *when* the answer would have
been ready under the cost model. Deadlines therefore act twice: a
request whose budget expires while queued is shed without running,
and one whose simulated service time overruns the remaining deadline
is classified ``deadline_exceeded`` at its truncated completion time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..governance import (
    BudgetExceeded,
    DeadlineExceeded,
    Overloaded,
    QueryBudget,
)
from ..parallel import SerialExecutor, WorkerPool
from ..rdf.terms import Term
from .errors import QuotaExceeded, error_payload
from .service import QueryService, template_id
from .tenancy import TenantState

__all__ = ["VirtualClock", "CostModel", "Request", "RequestRecord",
           "RequestScheduler"]

#: Event-kind ordering at equal timestamps (see module docstring).
#: Timers sort first: a fault window opening at *t* already governs
#: completions and arrivals processed at the same instant.
_TIMER, _COMPLETION, _ARRIVAL = -1, 0, 1


class VirtualClock:
    """A manually advanced monotonic clock (reads never move time)."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance_to(self, t: float) -> None:
        if t > self.now:
            self.now = t


@dataclass(frozen=True)
class CostModel:
    """Maps the work one request did to its simulated service time.

    ``plan_s`` is charged only on a plan-cache miss — the knob that
    makes the cache's hit rate visible in the latency distribution.
    """

    base_s: float = 0.002
    per_triple_s: float = 0.0001
    per_row_s: float = 0.0002
    plan_s: float = 0.008

    def service_time(self, budget: QueryBudget,
                     plan_cache_hit: bool) -> float:
        t = self.base_s
        if not plan_cache_hit:
            t += self.plan_s
        t += budget.triples_scanned * self.per_triple_s
        t += budget.rows * self.per_row_s
        return t


@dataclass
class Request:
    """One simulated client request, queued between arrival and start."""

    seq: int
    tenant: str
    text: str
    params: Optional[Dict[str, Term]] = None
    page_size: Optional[int] = None
    arrival_s: float = 0.0
    budget: Optional[QueryBudget] = None
    client: Optional[int] = None  # closed-loop client identity


@dataclass
class RequestRecord:
    """The audit line one request leaves behind (report input)."""

    seq: int
    tenant: str
    arrival_s: float
    outcome: str                      # completed | shed_* | budget code...
    start_s: Optional[float] = None
    finish_s: Optional[float] = None
    latency_s: Optional[float] = None
    plan_cache_hit: Optional[bool] = None
    rows: Optional[int] = None
    error: Optional[Dict[str, object]] = None
    client: Optional[int] = None
    degraded: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq, "tenant": self.tenant,
            "arrival_s": round(self.arrival_s, 9),
            "outcome": self.outcome,
        }
        if self.start_s is not None:
            out["start_s"] = round(self.start_s, 9)
        if self.finish_s is not None:
            out["finish_s"] = round(self.finish_s, 9)
        if self.latency_s is not None:
            out["latency_s"] = round(self.latency_s, 9)
        if self.plan_cache_hit is not None:
            out["plan_cache_hit"] = self.plan_cache_hit
        if self.rows is not None:
            out["rows"] = self.rows
        if self.error is not None:
            out["error"] = self.error
        if self.degraded is not None:
            out["degraded"] = self.degraded
        return out


@dataclass
class _Running:
    request: Request
    state: TenantState
    slot: object
    outcome: str
    record: RequestRecord
    exc: Optional[BaseException] = None
    response: Optional[object] = None  # kept for query-log provenance


class RequestScheduler:
    """Virtual-time multiplexer of simulated clients over one service."""

    def __init__(self, service: QueryService, clock: VirtualClock,
                 cost: Optional[CostModel] = None,
                 max_queue_depth: int = 64,
                 pool: Optional[WorkerPool] = None):
        if service.clock is not clock:
            raise ValueError(
                "service and scheduler must share one VirtualClock")
        self.service = service
        self.clock = clock
        self.cost = cost if cost is not None else CostModel()
        self.max_queue_depth = max_queue_depth
        self.pool = pool if pool is not None else WorkerPool(
            executor=SerialExecutor(), name="service")
        self.records: List[RequestRecord] = []
        #: Called with each finished RequestRecord; closed-loop
        #: workloads submit the client's next request from here.
        self.on_complete: Optional[Callable[[RequestRecord], None]] = None
        self._events: List[tuple] = []
        self._event_seq = 0
        self._request_seq = 0
        self._queued_total = 0
        self._last_served: Dict[str, int] = {}
        self._served_seq = 0
        self._order = {name: i for i, name
                       in enumerate(service.tenants.names())}

    # -- submission --------------------------------------------------------
    def submit(self, at_s: float, tenant: str, query: Optional[str] = None,
               *, template: Optional[str] = None,
               params: Optional[Dict[str, Term]] = None,
               page_size: Optional[int] = None,
               client: Optional[int] = None) -> int:
        """Schedule one request to arrive at virtual time *at_s*."""
        if at_s < self.clock.now:
            raise ValueError(
                f"cannot submit into the past ({at_s} < {self.clock.now})")
        text = query if query is not None \
            else self.service.template_text(template)
        self._request_seq += 1
        request = Request(seq=self._request_seq, tenant=tenant, text=text,
                          params=params, page_size=page_size,
                          arrival_s=at_s, client=client)
        self._push(at_s, _ARRIVAL, request)
        return request.seq

    def at(self, at_s: float, callback: Callable[[], None]) -> None:
        """Run *callback* at virtual time *at_s* (before any completion
        or arrival at the same instant).

        This is the hook chaos plans use to flip fault schedules,
        corrupt caches or invalidate plans mid-workload at exact
        virtual times — the callback runs inside the event loop, so
        whatever it mutates is visible to every later event.
        """
        if at_s < self.clock.now:
            raise ValueError(
                f"cannot schedule into the past ({at_s} < {self.clock.now})")
        self._push(at_s, _TIMER, callback)

    def _push(self, at_s: float, kind: int, payload) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (at_s, kind, self._event_seq, payload))

    # -- the event loop ----------------------------------------------------
    def run(self) -> List[RequestRecord]:
        """Drain every event; returns the records in completion order."""
        while self._events:
            at_s, kind, _, payload = heapq.heappop(self._events)
            self.clock.advance_to(at_s)
            if kind == _TIMER:
                payload()
            elif kind == _COMPLETION:
                self._complete(payload)
            else:
                self._arrive(payload)
            self._dispatch()
        return self.records

    # -- arrival: queue or shed --------------------------------------------
    def _arrive(self, request: Request) -> None:
        state = self.service.tenants.get(request.tenant)
        state.submitted += 1
        request.budget = state.make_budget(self.clock)
        if len(state.queue) >= state.spec.max_queued:
            state.shed_quota += 1
            self.service.stats.shed += 1
            self.service.count_outcome(request.tenant, "shed_quota")
            exc = QuotaExceeded(
                f"tenant {request.tenant!r} queue full "
                f"({state.spec.max_queued})",
                tenant=request.tenant,
                retry_after_s=self.service.controller.retry_after_hint_s)
            self._finish_shed(request, "shed_quota", exc)
            return
        if self._queued_total >= self.max_queue_depth:
            state.shed_overload += 1
            self.service.stats.shed += 1
            self.service.count_outcome(request.tenant, "shed_overload")
            exc = Overloaded(
                f"service queue full ({self.max_queue_depth} waiting)",
                retry_after_s=self.service.controller.retry_after_hint_s)
            self._finish_shed(request, "shed_overload", exc)
            return
        state.queue.append(request)
        self._queued_total += 1

    def _finish_shed(self, request: Request, outcome: str,
                     exc: BaseException) -> None:
        record = RequestRecord(
            seq=request.seq, tenant=request.tenant,
            arrival_s=request.arrival_s, outcome=outcome,
            error=error_payload(exc), client=request.client)
        self.records.append(record)
        self.service.observe_request(
            seq=record.seq, tenant=record.tenant, outcome=outcome,
            at_s=self.clock.now, arrival_s=record.arrival_s,
            error=record.error, template=template_id(request.text))
        if self.on_complete is not None:
            self.on_complete(record)

    # -- dispatch: fill free slots in priority order -----------------------
    def _eligible(self) -> Optional[TenantState]:
        best: Optional[TenantState] = None
        best_key = None
        for state in self.service.tenants:
            if not state.queue or state.at_capacity:
                continue
            name = state.spec.name
            key = (-state.spec.priority,
                   self._last_served.get(name, 0),
                   self._order[name])
            if best_key is None or key < best_key:
                best, best_key = state, key
        return best

    def _dispatch(self) -> None:
        batch: List[_Running] = []
        # admit() bumps controller.active immediately, so the pool
        # bound holds even while the batch is still being collected
        while self.service.controller.active \
                < self.service.controller.max_concurrent:
            state = self._eligible()
            if state is None:
                break
            request = state.queue.popleft()
            self._queued_total -= 1
            self._served_seq += 1
            self._last_served[state.spec.name] = self._served_seq
            if self._expired_in_queue(request, state):
                continue
            slot = self.service.controller.admit(request.budget)
            state.in_flight += 1
            record = RequestRecord(
                seq=request.seq, tenant=request.tenant,
                arrival_s=request.arrival_s, outcome="running",
                start_s=self.clock.now, client=request.client)
            if self.service.recorder is not None:
                self.service.recorder.record(
                    "dispatch", at_s=self.clock.now,
                    request_seq=request.seq, tenant=request.tenant,
                    queued_s=round(self.clock.now - request.arrival_s, 9))
            batch.append(_Running(request, state, slot, "running", record))
        if batch:
            self._execute_batch(batch)

    def _expired_in_queue(self, request: Request,
                          state: TenantState) -> bool:
        budget = request.budget
        waited = self.clock.now - request.arrival_s
        timeout = state.spec.queue_timeout_s
        timed_out = timeout is not None and waited > timeout
        dead = budget is not None and budget.deadline_expired
        if not (timed_out or dead):
            return False
        state.shed_timeout += 1
        self.service.stats.shed += 1
        self.service.count_outcome(request.tenant, "shed_timeout")
        exc: BaseException
        if dead:
            exc = DeadlineExceeded(
                f"deadline expired after {waited:g}s in queue",
                budget.snapshot())
        else:
            exc = Overloaded(
                f"queued {waited:g}s > queue_timeout "
                f"{timeout:g}s", retry_after_s=self.service
                .controller.retry_after_hint_s)
        self._finish_shed(request, "shed_timeout", exc)
        return True

    # -- execution: real work, simulated completion time -------------------
    def _execute_batch(self, batch: List[_Running]) -> None:
        def task(running: _Running):
            request = running.request
            return self.service.execute_admitted(
                running.state, request.text, params=request.params,
                budget=request.budget, page_size=request.page_size)

        outcomes = self.pool.run_tasks(task, batch,
                                       task_label="service.request")
        for running, outcome in zip(batch, outcomes):
            request = running.request
            budget = request.budget
            record = running.record
            if outcome.ok:
                response = outcome.value
                running.response = response
                record.plan_cache_hit = response.plan_cache_hit
                record.rows = (response.total_rows
                               if response.total_rows is not None
                               else len(response.rows))
                record.degraded = response.degraded
                hit = response.plan_cache_hit
                running.outcome = "completed"
            else:
                record.error = error_payload(outcome.error)
                record.plan_cache_hit = None
                hit = True  # failed before/while streaming; no plan fee
                running.outcome = record.error["code"]
                running.exc = outcome.error
            service_s = self.cost.service_time(budget, hit)
            remaining = budget.remaining_s()
            if running.outcome == "completed" and remaining is not None \
                    and service_s > remaining:
                # The simulated server would not have answered in time.
                running.outcome = "deadline_exceeded"
                running.exc = DeadlineExceeded(
                    f"simulated service time {service_s:g}s exceeds "
                    f"remaining deadline {remaining:g}s",
                    budget.snapshot())
                record.error = error_payload(running.exc)
                service_s = remaining
            finish = record.start_s + service_s
            record.finish_s = finish
            self._push(finish, _COMPLETION, running)

    # -- completion: free the slot, account the outcome --------------------
    def _complete(self, running: _Running) -> None:
        request = running.request
        state = running.state
        record = running.record
        state.in_flight -= 1
        running.slot.release()
        record.outcome = running.outcome
        record.latency_s = record.finish_s - record.arrival_s
        if running.outcome == "completed":
            state.completed += 1
            self.service.stats.record_outcome(None, request.budget)
            self.service.count_outcome(request.tenant, "completed")
        elif isinstance(running.exc, BudgetExceeded):
            state.budget_exceeded += 1
            self.service.stats.record_outcome(running.exc, request.budget)
            self.service.count_outcome(request.tenant, "budget_exceeded")
        else:
            state.failed += 1
            self.service.count_outcome(request.tenant, "failed")
        self.service.observe_latency(request.tenant, record.latency_s)
        self.records.append(record)
        self.service.observe_request(
            seq=record.seq, tenant=record.tenant, outcome=record.outcome,
            at_s=record.finish_s, arrival_s=record.arrival_s,
            latency_s=record.latency_s, rows=record.rows,
            degraded=record.degraded, error=record.error,
            template=template_id(request.text),
            response=(running.response
                      if record.outcome == "completed" else None))
        if self.on_complete is not None:
            self.on_complete(record)
