"""Typed service-level errors and the wire payloads they render to.

The service front end never lets an exception escape as a bare string:
every failure a client can observe maps to a stable error ``code`` plus
structured details (retry hints, budget snapshots), so the v1/v2
envelope handlers — and the load harness's shed accounting — switch on
types and codes, not on message text.

The governance layer's :class:`~repro.governance.Overloaded` and
:class:`~repro.governance.BudgetExceeded` families pass through
untouched; :func:`error_payload` knows how to render those too, so one
function turns *any* service-path exception into its JSON payload.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..governance import (
    BudgetExceeded,
    DeadlineExceeded,
    FetchLimitExceeded,
    Overloaded,
    QueryCancelled,
    RowLimitExceeded,
    ScanLimitExceeded,
)
from ..parallel import WorkerDeath
from ..resilience import CircuitOpenError

__all__ = [
    "ServiceError",
    "UnknownTenant",
    "UnknownTemplate",
    "UnknownCursor",
    "InvalidRequest",
    "QuotaExceeded",
    "error_payload",
]


class ServiceError(RuntimeError):
    """Base service error; ``code`` is the stable wire identifier."""

    code = "service_error"

    def to_payload(self) -> Dict[str, object]:
        return {"code": self.code, "message": str(self)}


class UnknownTenant(ServiceError):
    """The request named a tenant the service has not registered."""

    code = "unknown_tenant"


class UnknownTemplate(ServiceError):
    """The request named a prepared template that does not exist."""

    code = "unknown_template"


class UnknownCursor(ServiceError):
    """The page token names a cursor that expired or never existed."""

    code = "unknown_cursor"


class InvalidRequest(ServiceError):
    """The request envelope is malformed (missing op, bad params...)."""

    code = "invalid_request"


class QuotaExceeded(ServiceError):
    """The *tenant's* quota rejected the request (the global pool may
    still have room — per-tenant isolation shedding, not overload)."""

    code = "quota_exceeded"

    def __init__(self, message: str, tenant: str,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s

    def to_payload(self) -> Dict[str, object]:
        payload = super().to_payload()
        payload["tenant"] = self.tenant
        if self.retry_after_s is not None:
            payload["retry_after_s"] = self.retry_after_s
        return payload


#: Stable wire codes for the governance-layer exception types.
_GOVERNANCE_CODES = (
    (QueryCancelled, "cancelled"),
    (DeadlineExceeded, "deadline_exceeded"),
    (RowLimitExceeded, "row_limit_exceeded"),
    (ScanLimitExceeded, "scan_limit_exceeded"),
    (FetchLimitExceeded, "fetch_limit_exceeded"),
    (BudgetExceeded, "budget_exceeded"),
)


def error_payload(exc: BaseException) -> Dict[str, object]:
    """The JSON payload for any exception the service path can raise."""
    if isinstance(exc, ServiceError):
        return exc.to_payload()
    if isinstance(exc, Overloaded):
        payload: Dict[str, object] = {
            "code": "overloaded", "message": str(exc),
        }
        if exc.retry_after_s is not None:
            payload["retry_after_s"] = exc.retry_after_s
        return payload
    for exc_type, code in _GOVERNANCE_CODES:
        if isinstance(exc, exc_type):
            return {"code": code, "message": str(exc),
                    "snapshot": dict(exc.snapshot)}
    # Infrastructure failures surfacing from nested layers (federation
    # dispatch, SDL fetch, worker pool). CircuitOpenError must be
    # tested before its ConnectionError base: an open circuit is a
    # deliberate local decision, not an upstream outage.
    if isinstance(exc, CircuitOpenError):
        return {"code": "circuit_open", "message": str(exc)}
    if isinstance(exc, (ConnectionError, TimeoutError)):
        return {"code": "upstream_unavailable",
                "message": f"{type(exc).__name__}: {exc}"}
    if isinstance(exc, WorkerDeath):
        return {"code": "worker_died", "message": str(exc)}
    return {"code": "internal_error",
            "message": f"{type(exc).__name__}: {exc}"}
