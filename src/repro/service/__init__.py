"""repro.service: the multi-tenant query service front end.

The App Lab story is "many users, one modest service": mobile and web
apps firing SPARQL at shared Copernicus endpoints. This package is
that serving layer, built so every moving part runs on fake clocks:

- :mod:`~repro.service.tenancy` — tenant specs (quotas, priorities,
  default budgets) and per-tenant runtime accounting;
- :mod:`~repro.service.plancache` — the LRU prepared-query cache
  keyed on query template, explicit invalidation only;
- :mod:`~repro.service.service` — :class:`QueryService`: two-layer
  admission (tenant quota, then global pool), prepared execution,
  paginated/streamed result delivery, service metric families;
- :mod:`~repro.service.scheduler` — the deterministic virtual-time
  request scheduler multiplexing thousands of simulated clients;
- :mod:`~repro.service.workload` — seeded workload generation (open/
  closed-loop arrivals, Zipf hot keys, tenant mix) and the
  byte-identical :class:`WorkloadReport`;
- :mod:`~repro.service.api` — versioned (v1/v2) JSON envelopes;
- :mod:`~repro.service.errors` — the service's typed error family
  and the exception→wire-payload mapping.
"""

from .api import ServiceAPI, decode_term, encode_term
from .errors import (
    InvalidRequest,
    QuotaExceeded,
    ServiceError,
    UnknownCursor,
    UnknownTemplate,
    UnknownTenant,
    error_payload,
)
from .plancache import PlanCache
from .scheduler import (
    CostModel,
    Request,
    RequestRecord,
    RequestScheduler,
    VirtualClock,
)
from .service import LATENCY_BUCKETS, QueryService, ServiceResponse, template_id
from .tenancy import TenantRegistry, TenantSpec, TenantState
from .workload import (
    Workload,
    WorkloadReport,
    WorkloadSpec,
    build_default_graph,
    default_tenants,
    run_workload,
)

__all__ = [
    "CostModel",
    "InvalidRequest",
    "LATENCY_BUCKETS",
    "PlanCache",
    "QueryService",
    "QuotaExceeded",
    "Request",
    "RequestRecord",
    "RequestScheduler",
    "ServiceAPI",
    "ServiceError",
    "ServiceResponse",
    "TenantRegistry",
    "TenantSpec",
    "TenantState",
    "UnknownCursor",
    "UnknownTemplate",
    "UnknownTenant",
    "VirtualClock",
    "Workload",
    "WorkloadReport",
    "WorkloadSpec",
    "build_default_graph",
    "decode_term",
    "default_tenants",
    "encode_term",
    "error_payload",
    "run_workload",
    "template_id",
]
