"""The prepared-query (plan) cache: LRU by template, explicit invalidation.

The cache maps a query *template* (the exact query text; parameters
are bound at execution time through the prepared query's seed row, so
one entry serves every parameterization) to a
:class:`~repro.sparql.prepared.PreparedQuery`. A hit skips tokenizing,
parsing and planning; under the simulated cost model that is the
difference between a cold and a warm request, so the workload report's
hit rate is directly a latency story.

Invalidation is *explicit*: callers that mutate the dataset (or bump
planner statistics) call :meth:`PlanCache.invalidate` /
:meth:`PlanCache.clear`. The cache deliberately does not watch the
graph — plan reuse against a mutated graph stays *correct* (operators
scan live indexes at execution time) but the join order may grow
stale, which is a performance decision the owner of the mutation makes,
not the cache.

Counters (hits/misses/evictions/invalidations) are mirrored into the
service's :class:`~repro.observability.MetricsRegistry` under
``service_plan_cache_total{event=...}`` when a registry is attached.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..sparql.prepared import PreparedQuery

__all__ = ["PlanCache"]


class PlanCache:
    """LRU cache of :class:`PreparedQuery` entries keyed on template."""

    def __init__(self, max_entries: int = 64, metrics=None, stats=None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, PreparedQuery]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: Entries dropped because planner feedback moved past them.
        self.stats_invalidations = 0
        #: StatsStore whose version gates entry freshness (optional).
        self.stats = stats
        self._counter = None
        if metrics is not None:
            self._counter = metrics.counter(
                "service_plan_cache_total",
                "plan cache events by type",
                labelnames=("event",),
            )

    def _count(self, event: str, n: int = 1) -> None:
        if self._counter is not None:
            self._counter.labels(event=event).inc(n)

    # -- lookup ------------------------------------------------------------
    def get_or_prepare(
        self, template: str,
        builder: Callable[[str], PreparedQuery],
    ) -> Tuple[PreparedQuery, bool]:
        """The cached entry for *template*, or build + insert one.

        Returns ``(prepared, hit)``. *builder* runs only on a miss —
        the caller wraps it in its ``service.parse``/``service.plan``
        trace spans, which is how the acceptance suite proves a hit
        skipped re-planning.
        """
        entry = self._entries.get(template)
        if entry is not None and self._stale(entry):
            # Planner feedback has materially changed since this plan
            # was compiled: drop it and fall through to a miss so the
            # builder re-plans against the fresher statistics.
            del self._entries[template]
            self.stats_invalidations += 1
            self._count("stats_invalidation")
            entry = None
        if entry is not None:
            self._entries.move_to_end(template)
            self.hits += 1
            self._count("hit")
            return entry, True
        self.misses += 1
        self._count("miss")
        entry = builder(template)
        self._entries[template] = entry
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("eviction")
        return entry, False

    def peek(self, template: str) -> Optional[PreparedQuery]:
        """The entry without touching LRU order or counters."""
        return self._entries.get(template)

    def _stale(self, entry: PreparedQuery) -> bool:
        """Whether planner feedback moved past this entry's plan."""
        if self.stats is None:
            return False
        version = getattr(entry, "stats_version", None)
        return version is not None and version != self.stats.version

    # -- invalidation ------------------------------------------------------
    def invalidate(self, template: str) -> bool:
        """Drop one template's plan; returns whether it was cached."""
        if template in self._entries:
            del self._entries[template]
            self.invalidations += 1
            self._count("invalidation")
            return True
        return False

    def clear(self) -> int:
        """Drop every cached plan (dataset mutated); returns the count."""
        n = len(self._entries)
        self._entries.clear()
        self.invalidations += n
        if n:
            self._count("invalidation", n)
        return n

    # -- reporting ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "stats_invalidations": self.stats_invalidations,
            "stats_version": (self.stats.version
                              if self.stats is not None else None),
            "hit_rate": round(self.hit_rate(), 6),
        }

    def __repr__(self) -> str:
        return (f"<PlanCache {len(self._entries)}/{self.max_entries} "
                f"hits={self.hits} misses={self.misses}>")
