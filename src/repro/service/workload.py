"""Seeded workload generation: simulated tenants, clients, arrival models.

This module turns the ROADMAP's "millions of users" north star into a
reproducible artifact: a :class:`WorkloadSpec` (one seed, a tenant
mix, an arrival model, a hot-key skew) fully determines every request
thousands of simulated clients will make, the virtual times they make
them at, and therefore — because the scheduler, the service, the
budgets and the tracer all run on one :class:`VirtualClock` — every
latency, shed decision and plan-cache hit in the resulting
:class:`WorkloadReport`. Two runs with the same seed produce
byte-identical report JSON; that equality is pinned by the acceptance
suite and the CI service-smoke gate.

Arrival models:

- **open loop** (``arrival="open"``): requests arrive by a seeded
  Poisson-like process at ``rate_rps`` regardless of completions —
  the model that exposes overload behaviour (queues grow, shed rates
  climb) because clients do not slow down when the service does;
- **closed loop** (``arrival="closed"``): each client waits for its
  response, thinks for a seeded exponential ``think_time_s``, then
  submits its next request — throughput self-limits to the service's
  capacity, the model for steady-state latency measurement.

Hot-key skew: template parameters are drawn Zipf-distributed over the
key universe (``zipf_s`` steepness), so a few hot regions dominate —
which is also what makes the plan cache's template-level sharing pay.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..observability import (FlightRecorder, MetricsRegistry, QueryLog,
                             SLOEngine, SLOSpec, SLOWindows, Tracer,
                             histogram_quantile, register_slo)
from ..observability.metrics import Histogram
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal
from ..resilience import RetryPolicy
from ..sparql.federation import FederationEngine, SparqlEndpoint
from .scheduler import CostModel, RequestScheduler, VirtualClock
from .service import LATENCY_BUCKETS, OUTCOMES, QueryService
from .tenancy import TenantSpec

__all__ = ["WorkloadSpec", "WorkloadReport", "Workload",
           "build_default_graph", "build_federated_sources",
           "default_tenants", "run_workload"]

EX = "http://example.org/copernicus/"

#: Prepared templates the default workload mixes over; ``param`` names
#: the seed-bound variable (hot-key skewed) or is None.
DEFAULT_TEMPLATES: Tuple[Tuple[str, float, Optional[str], str], ...] = (
    ("stations_in_region", 5.0, "region",
     "PREFIX ex: <http://example.org/copernicus/>\n"
     "SELECT ?s ?name WHERE { ?s ex:region ?region . "
     "?s ex:name ?name } ORDER BY ?name"),
    ("greenest_stations", 3.0, None,
     "PREFIX ex: <http://example.org/copernicus/>\n"
     "SELECT ?s ?v WHERE { ?s ex:ndvi ?v } ORDER BY DESC(?v) ?s LIMIT 10"),
    ("station_count", 2.0, None,
     "PREFIX ex: <http://example.org/copernicus/>\n"
     "SELECT (COUNT(?s) AS ?n) WHERE { ?s a ex:Station }"),
    ("station_listing", 1.0, None,
     "PREFIX ex: <http://example.org/copernicus/>\n"
     "SELECT ?s ?name WHERE { ?s a ex:Station . ?s ex:name ?name } "
     "ORDER BY ?name"),
)

#: The federated template mixed in when ``WorkloadSpec.federated`` is
#: set: a parameterless sweep whose patterns touch every region shard,
#: so the degraded block's completeness denominator is the full source
#: set. (Federated templates take no parameters — plans are per-text.)
FEDERATED_TEMPLATE: Tuple[str, str] = (
    "federated_inventory",
    "PREFIX ex: <http://example.org/copernicus/>\n"
    "SELECT ?s ?name WHERE { ?s ex:name ?name } ORDER BY ?name LIMIT 40")


def build_default_graph(stations: int = 240, regions: int = 12) -> Graph:
    """A deterministic in-situ station dataset the templates query."""
    graph = Graph()
    graph.bind("ex", EX)
    station_class = IRI(EX + "Station")
    for i in range(stations):
        s = IRI(f"{EX}station{i:04d}")
        graph.add(s, IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                  station_class)
        graph.add(s, IRI(EX + "name"), Literal(f"station-{i:04d}"))
        graph.add(s, IRI(EX + "region"),
                  IRI(f"{EX}region{i % regions:02d}"))
        # deterministic pseudo-NDVI in [0, 1): no ambient randomness
        graph.add(s, IRI(EX + "ndvi"),
                  Literal(round((i * 37 % 100) / 100.0, 2)))
    return graph


def build_federated_sources(stations: int = 240, regions: int = 12,
                            sources: int = 3
                            ) -> List[Tuple[str, Graph]]:
    """Region-shard the default dataset across *sources* graphs.

    Shard ``k`` holds every station whose region number is congruent
    to ``k`` modulo *sources* — the same rows the monolithic graph
    holds, partitioned, so a federated sweep over all shards answers
    what the local graph would, and killing one shard removes exactly
    its regions (what the completeness block reports).
    """
    shards = [Graph() for _ in range(sources)]
    for shard in shards:
        shard.bind("ex", EX)
    station_class = IRI(EX + "Station")
    for i in range(stations):
        region = i % regions
        shard = shards[region % sources]
        s = IRI(f"{EX}station{i:04d}")
        shard.add(s, IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                  station_class)
        shard.add(s, IRI(EX + "name"), Literal(f"station-{i:04d}"))
        shard.add(s, IRI(EX + "region"), IRI(f"{EX}region{region:02d}"))
        shard.add(s, IRI(EX + "ndvi"),
                  Literal(round((i * 37 % 100) / 100.0, 2)))
    return [(f"http://shard{k}.example/sparql", shards[k])
            for k in range(sources)]


def default_tenants() -> List[TenantSpec]:
    """Four tenants spanning the priority/quota/budget design space."""
    return [
        TenantSpec("dashboard", priority=2, max_in_flight=3, max_queued=32,
                   weight=3.0, deadline_s=1.5),
        TenantSpec("api", priority=1, max_in_flight=3, max_queued=32,
                   weight=3.0, deadline_s=3.0),
        TenantSpec("analytics", priority=0, max_in_flight=2, max_queued=16,
                   weight=2.0),
        TenantSpec("batch", priority=-1, max_in_flight=1, max_queued=8,
                   weight=1.0, queue_timeout_s=5.0),
    ]


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that determines a workload run, seed included."""

    seed: int = 42
    clients: int = 1000
    requests_per_client: int = 1
    arrival: str = "open"            # "open" | "closed"
    rate_rps: float = 400.0          # open loop: aggregate arrival rate
    think_time_s: float = 0.05       # closed loop: mean think time
    zipf_s: float = 1.2              # hot-key skew steepness
    regions: int = 12                # parameter key universe
    stations: int = 240              # dataset scale
    page_size: Optional[int] = 25    # station_listing pagination
    max_concurrent: int = 8          # global slot pool
    max_queue_depth: int = 64        # global wait-queue bound
    plan_cache_size: int = 64
    cost: CostModel = field(default_factory=CostModel)
    #: Mix in a federated template answered by a region-sharded
    #: FederationEngine (the substrate the chaos harness injects
    #: endpoint faults into). Off by default: the single-graph
    #: workload stays byte-identical to the PR 6 harness.
    federated: bool = False
    federation_sources: int = 3
    federated_weight: float = 2.0
    #: Build the observability stack (SLO engine + query log + flight
    #: recorder) on the workload's virtual clock. On by default — the
    #: overhead benchmark flips it off to measure the delta.
    observability: bool = True
    #: Virtual-time (fast, mid, slow) burn-rate windows in seconds.
    #: Workload runs span a few virtual seconds, so the Google-SRE
    #: 5m/1h/6h production windows scale down to sub-second spans
    #: with the same 1:5:20 flavour of ordering (fast < mid < slow).
    slo_windows: Tuple[float, float, float] = (0.05, 0.25, 1.0)
    qlog_capacity: int = 4096
    qlog_sample_ratio: float = 0.05
    recorder_capacity: int = 256

    def __post_init__(self):
        if self.arrival not in ("open", "closed"):
            raise ValueError(f"unknown arrival model {self.arrival!r}")
        if self.clients < 1 or self.requests_per_client < 1:
            raise ValueError("clients and requests_per_client must be >= 1")
        if self.federated and self.federation_sources < 1:
            raise ValueError("federation_sources must be >= 1")

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seed": self.seed,
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "arrival": self.arrival,
            "rate_rps": self.rate_rps,
            "think_time_s": self.think_time_s,
            "zipf_s": self.zipf_s,
            "max_concurrent": self.max_concurrent,
            "max_queue_depth": self.max_queue_depth,
        }
        if self.federated:
            out["federated"] = True
            out["federation_sources"] = self.federation_sources
        return out


class _ZipfKeys:
    """Seeded Zipf-skewed choice over the parameter key universe."""

    def __init__(self, n: int, s: float):
        weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
        total = sum(weights)
        self.cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self.cdf.append(acc)

    def pick(self, rng: random.Random) -> int:
        u = rng.random()
        for i, edge in enumerate(self.cdf):
            if u <= edge:
                return i
        return len(self.cdf) - 1


class Workload:
    """One runnable workload: service + scheduler + request program."""

    def __init__(self, spec: WorkloadSpec,
                 graph: Optional[Graph] = None,
                 tenants: Optional[List[TenantSpec]] = None,
                 tracer: Optional[Tracer] = None):
        self.spec = spec
        self.clock = VirtualClock()
        self.metrics = MetricsRegistry()
        self.graph = graph if graph is not None else build_default_graph(
            stations=spec.stations, regions=spec.regions)
        self.tenants = tenants if tenants is not None else default_tenants()
        self.federation: Optional[FederationEngine] = None
        if spec.federated:
            # Everything in the engine runs on the workload's virtual
            # clock, so retries/ejection windows/hedge delays are part
            # of the same deterministic timeline as the scheduler.
            self.federation = FederationEngine(
                retry_policy=RetryPolicy(
                    max_attempts=1, base_delay_s=0.0, jitter=0.0,
                    clock=self.clock),
                tracer=tracer)
            for iri, shard in build_federated_sources(
                    stations=spec.stations, regions=spec.regions,
                    sources=spec.federation_sources):
                self.federation.register(
                    iri, SparqlEndpoint(shard, name=iri.split("//")[1]
                                        .split(".")[0]))
        self.slo: Optional[SLOEngine] = None
        self.query_log: Optional[QueryLog] = None
        self.recorder: Optional[FlightRecorder] = None
        if spec.observability:
            fast_s, mid_s, slow_s = spec.slo_windows
            windows = SLOWindows(fast_s=fast_s, mid_s=mid_s, slow_s=slow_s)
            self.recorder = FlightRecorder(clock=self.clock,
                                           capacity=spec.recorder_capacity)
            self.slo = SLOEngine(clock=self.clock)
            self.slo.on_alert.append(self._on_slo_alert)
            for tenant in self.tenants:
                scope = f"tenant:{tenant.name}"
                self.slo.register(SLOSpec(
                    name=f"{tenant.name}-availability", scope=scope,
                    objective="availability", target=0.99, windows=windows))
                self.slo.register(SLOSpec(
                    name=f"{tenant.name}-latency-p95", scope=scope,
                    objective="latency", target=0.95,
                    threshold_s=tenant.deadline_s or 2.5, windows=windows))
            self.slo.register(SLOSpec(
                name="service-shed-rate", scope="service",
                objective="shed_rate", target=0.10, windows=windows))
            self.slo.register(SLOSpec(
                name="service-staleness", scope="service",
                objective="staleness", target=0.05, windows=windows))
            register_slo(self.metrics, self.slo)
            self.query_log = QueryLog(
                capacity=spec.qlog_capacity, seed=spec.seed,
                sample_ratio=spec.qlog_sample_ratio,
                metrics=self.metrics)
        self.service = QueryService(
            self.graph, tenants=self.tenants,
            max_concurrent=spec.max_concurrent,
            plan_cache_size=spec.plan_cache_size,
            clock=self.clock, metrics=self.metrics, tracer=tracer,
            federation=self.federation,
            slo=self.slo, query_log=self.query_log, recorder=self.recorder)
        self.templates = []
        for name, weight, param, text in DEFAULT_TEMPLATES:
            self.service.register_template(name, text)
            self.templates.append((name, weight, param))
        if spec.federated:
            fed_name, fed_text = FEDERATED_TEMPLATE
            self.service.register_template(fed_name, fed_text,
                                           federated=True)
            self.templates.append((fed_name, spec.federated_weight, None))
        self.scheduler = RequestScheduler(
            self.service, self.clock, cost=spec.cost,
            max_queue_depth=spec.max_queue_depth)
        self._zipf = _ZipfKeys(spec.regions, spec.zipf_s)
        self._rng = random.Random(spec.seed)
        self._tenant_names = [t.name for t in self.tenants]
        self._tenant_weights = [t.weight for t in self.tenants]
        self._template_names = [t[0] for t in self.templates]
        self._template_weights = [t[1] for t in self.templates]
        self._template_param = {t[0]: t[2] for t in self.templates}
        self._remaining: Dict[int, int] = {}

    # -- observability -----------------------------------------------------
    def _on_slo_alert(self, alert) -> None:
        """Every burn-rate edge lands in the flight recorder; a *page*
        firing is an incident and snapshots the ring."""
        self.recorder.record(
            "slo_alert", at_s=alert.at_s, spec=alert.spec,
            severity=alert.severity, edge=alert.edge,
            burn_fast=round(alert.burn_fast, 6),
            burn_mid=round(alert.burn_mid, 6))
        if alert.severity == "page" and alert.edge == "fire":
            self.recorder.snapshot(f"slo_page:{alert.spec}",
                                   at_s=alert.at_s)

    # -- request synthesis -------------------------------------------------
    def _pick_tenant(self) -> str:
        return self._rng.choices(self._tenant_names,
                                 weights=self._tenant_weights)[0]

    def _pick_template(self) -> Tuple[str, Optional[Dict[str, object]],
                                      Optional[int]]:
        name = self._rng.choices(self._template_names,
                                 weights=self._template_weights)[0]
        params = None
        param_var = self._template_param[name]
        if param_var == "region":
            key = self._zipf.pick(self._rng)
            params = {"region": IRI(f"{EX}region{key:02d}")}
        page = self.spec.page_size if name == "station_listing" else None
        return name, params, page

    def _submit_one(self, at_s: float, client: int) -> None:
        tenant = self._pick_tenant()
        template, params, page = self._pick_template()
        self.scheduler.submit(at_s, tenant, template=template,
                              params=params, page_size=page,
                              client=client)

    def _program_open(self) -> None:
        total = self.spec.clients * self.spec.requests_per_client
        at = 0.0
        for i in range(total):
            at += self._rng.expovariate(self.spec.rate_rps)
            self._submit_one(at, client=i % self.spec.clients)

    def _program_closed(self) -> None:
        # Stagger the fleet's first requests across one mean think time
        # so the opening instant is not a synchronized stampede.
        for client in range(self.spec.clients):
            self._remaining[client] = self.spec.requests_per_client - 1
            first = self._rng.uniform(0.0, self.spec.think_time_s)
            self._submit_one(first, client=client)

        def on_complete(record) -> None:
            client = record.client
            if client is None or self._remaining.get(client, 0) <= 0:
                return
            self._remaining[client] -= 1
            think = self._rng.expovariate(1.0 / self.spec.think_time_s)
            at = max(self.clock.now, (record.finish_s or self.clock.now)) \
                + think
            self._submit_one(at, client=client)

        self.scheduler.on_complete = on_complete

    # -- running -----------------------------------------------------------
    def run(self) -> "WorkloadReport":
        if self.spec.arrival == "open":
            self._program_open()
        else:
            self._program_closed()
        records = self.scheduler.run()
        return WorkloadReport(self)


class WorkloadReport:
    """The deterministic summary of one finished workload run."""

    def __init__(self, workload: Workload):
        self.workload = workload
        service = workload.service
        spec = workload.spec
        records = workload.scheduler.records
        finishes = [r.finish_s for r in records if r.finish_s is not None]
        duration = max(finishes) if finishes else 0.0
        submitted = sum(s.submitted for s in service.tenants)
        completed = sum(s.completed for s in service.tenants)
        shed = sum(s.shed for s in service.tenants)
        merged = Histogram({}, LATENCY_BUCKETS)
        tenants: Dict[str, Dict[str, object]] = {}
        for state in service.tenants:
            hist = service.latency_histogram(state.spec.name)
            for i, n in enumerate(hist.bucket_counts):
                merged.bucket_counts[i] += n
            merged.count += hist.count
            merged.sum += hist.sum
            block = dict(state.as_dict())
            block["p50_s"] = histogram_quantile(hist, 0.50) \
                if hist.count else 0.0
            block["p99_s"] = histogram_quantile(hist, 0.99) \
                if hist.count else 0.0
            # Explicit zero rows for every outcome (the counter
            # children are pre-created per tenant x outcome), so the
            # report schema is identical whatever this seed produced —
            # a tenant with zero completed queries still reports all
            # six outcomes.
            block["outcomes"] = {
                outcome: int(service.count_for(state.spec.name, outcome))
                for outcome in OUTCOMES}
            tenants[state.spec.name] = block
        self.report: Dict[str, object] = {
            "spec": spec.summary(),
            "totals": {
                "submitted": submitted,
                "completed": completed,
                "shed": shed,
                "budget_exceeded": sum(
                    s.budget_exceeded for s in service.tenants),
                "failed": sum(s.failed for s in service.tenants),
                "shed_rate": round(shed / submitted, 6) if submitted
                else 0.0,
                "virtual_duration_s": round(duration, 9),
                "throughput_rps": round(completed / duration, 6)
                if duration else 0.0,
            },
            "latency_s": {
                # histogram_quantile returns the NaN EMPTY_QUANTILE
                # sentinel on empty histograms; reports pin 0.0 so the
                # JSON stays strict (no bare NaN tokens).
                "p50": histogram_quantile(merged, 0.50)
                if merged.count else 0.0,
                "p90": histogram_quantile(merged, 0.90)
                if merged.count else 0.0,
                "p99": histogram_quantile(merged, 0.99)
                if merged.count else 0.0,
                "mean": round(merged.sum / merged.count, 9)
                if merged.count else 0.0,
                "observations": merged.count,
            },
            "tenants": tenants,
            "plan_cache": service.plan_cache.snapshot(),
            "governance": {
                "admitted": service.stats.admitted,
                "shed": service.stats.shed,
                "completed": service.stats.completed,
                "deadline_exceeded": service.stats.deadline_exceeded,
                "headroom_histogram":
                    service.stats.combined_headroom_histogram(),
            },
        }
        if workload.slo is not None:
            # A final evaluation at the end of the timeline lets quiet
            # tails clear alerts before the report freezes them.
            workload.slo.evaluate(at_s=workload.clock.now)
            self.report["slo"] = workload.slo.report().report
        if workload.query_log is not None:
            self.report["query_log"] = workload.query_log.summary()
        if workload.recorder is not None:
            self.report["incidents"] = workload.recorder.summary()

    def __getitem__(self, key: str):
        return self.report[key]

    def to_json(self) -> str:
        """Canonical JSON text: the byte-identity unit of determinism."""
        return json.dumps(self.report, sort_keys=True, indent=2) + "\n"


def run_workload(spec: WorkloadSpec,
                 graph: Optional[Graph] = None,
                 tenants: Optional[List[TenantSpec]] = None,
                 tracer: Optional[Tracer] = None) -> WorkloadReport:
    """Build and run one seeded workload; returns its report."""
    return Workload(spec, graph=graph, tenants=tenants, tracer=tracer).run()
