"""Versioned JSON envelope handlers for the query service.

This is the wire layer of :class:`~repro.service.QueryService` —
transport-free by design: a *request envelope* is a plain dict and
each handler returns a plain *response envelope* dict, so the same
handlers sit equally well behind an HTTP frame, a message queue, or
(as in this repo) the acceptance suite and the workload harness.

Two envelope versions coexist (clients pick with ``"v"``):

- **v1** — the minimal contract: ``{"ok", "data"}`` where ``data``
  carries ``vars``/``rows`` (SPARQL 1.1 JSON binding encoding) and a
  ``next_page_token``; errors are ``{"ok": false, "error": {"code",
  "message"}}`` only.
- **v2** — everything v1 has plus the degraded-mode ``failures`` map
  from :class:`~repro.sparql.SPARQLResult`, the final budget
  snapshot, plan-cache info (``{"hit": ...}``), ``explain_id`` (the
  stable template id that keys EXPLAIN output and query profiles) and
  inline ``explain`` text on request, and *typed* error payloads
  (``retry_after_s`` for shed requests, budget snapshots for budget
  kills) straight from :func:`~repro.service.errors.error_payload`.

Version negotiation is strict: an unknown version or op is a v-less
``invalid_request`` error, never a guess.

Operations: ``query`` (raw text or registered template + params),
``page`` (cursor continuation), ``invalidate`` (explicit plan-cache
drop), ``metrics`` (service counters for scrapers).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..rdf.terms import BNode, IRI, Literal, Term
from .errors import InvalidRequest, error_payload
from .service import QueryService, ServiceResponse

__all__ = ["ServiceAPI", "encode_term", "decode_term"]

SUPPORTED_VERSIONS = (1, 2)
OPS = ("query", "page", "invalidate", "metrics")


def encode_term(term: Optional[Term]) -> Optional[Dict[str, str]]:
    """One binding in the SPARQL 1.1 JSON results encoding."""
    if term is None:
        return None
    if isinstance(term, Literal):
        out = {"type": "literal", "value": term.lexical}
        if term.lang:
            out["xml:lang"] = term.lang
        elif term.datatype:
            out["datatype"] = str(term.datatype)
        return out
    if isinstance(term, BNode):
        return {"type": "bnode", "value": str(term)}
    return {"type": "uri", "value": str(term)}


def decode_term(obj: Dict[str, Any]) -> Term:
    """The inverse of :func:`encode_term` (request parameters)."""
    if not isinstance(obj, dict) or "type" not in obj or "value" not in obj:
        raise InvalidRequest(f"malformed term {obj!r}")
    kind = obj["type"]
    if kind == "uri":
        return IRI(obj["value"])
    if kind == "bnode":
        return BNode(obj["value"])
    if kind == "literal":
        datatype = obj.get("datatype")
        return Literal(obj["value"],
                       datatype=IRI(datatype) if datatype else None,
                       lang=obj.get("xml:lang"))
    raise InvalidRequest(f"unknown term type {kind!r}")


def _encode_rows(response: ServiceResponse) -> list:
    rows = []
    for row in response.rows:
        entry = {}
        for var, term in row.items():
            encoded = encode_term(term)
            if encoded is not None:
                entry[var] = encoded
        rows.append(entry)
    return rows


class ServiceAPI:
    """Dict-in/dict-out versioned handlers over one QueryService."""

    def __init__(self, service: QueryService):
        self.service = service

    # -- the single entry point --------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request envelope; never raises — errors are
        rendered into the envelope of the requested version (or the
        minimal v1 shape when the version itself is unusable)."""
        if not isinstance(request, dict):
            return self._error(1, InvalidRequest("request must be a dict"))
        version = request.get("v", 1)
        if version not in SUPPORTED_VERSIONS:
            return self._error(
                1, InvalidRequest(
                    f"unsupported envelope version {version!r}; "
                    f"supported: {list(SUPPORTED_VERSIONS)}"))
        op = request.get("op")
        if op not in OPS:
            return self._error(
                version,
                InvalidRequest(f"unknown op {op!r}; supported: {list(OPS)}"))
        try:
            if op == "query":
                return self._query(version, request)
            if op == "page":
                return self._page(version, request)
            if op == "invalidate":
                return self._invalidate(version, request)
            return self._metrics(version, request)
        except Exception as exc:  # typed payloads, not stack traces
            return self._error(version, exc)

    # -- ops ----------------------------------------------------------------
    def _query(self, version: int, request: Dict[str, Any]) -> Dict[str, Any]:
        params = None
        raw = request.get("params")
        if raw is not None:
            if not isinstance(raw, dict):
                raise InvalidRequest("params must be a var->term dict")
            params = {var: decode_term(term) for var, term in raw.items()}
        response = self.service.execute(
            request.get("tenant", ""),
            request.get("query"),
            template=request.get("template"),
            params=params,
            page_size=request.get("page_size"),
            explain=bool(request.get("explain", False))
            if version >= 2 else False,
        )
        return self._ok(version, response)

    def _page(self, version: int, request: Dict[str, Any]) -> Dict[str, Any]:
        token = request.get("page_token")
        if not isinstance(token, str):
            raise InvalidRequest("page op requires a string page_token")
        response = self.service.fetch_page(request.get("tenant", ""), token)
        return self._ok(version, response)

    def _invalidate(self, version: int,
                    request: Dict[str, Any]) -> Dict[str, Any]:
        dropped = self.service.invalidate_template(request.get("template"))
        return {"v": version, "ok": True, "data": {"invalidated": dropped}}

    def _metrics(self, version: int,
                 request: Dict[str, Any]) -> Dict[str, Any]:
        service = self.service
        data: Dict[str, Any] = {
            "tenants": {state.spec.name: state.as_dict()
                        for state in service.tenants},
            "plan_cache": service.plan_cache.snapshot(),
        }
        if version >= 2:
            data["governance"] = {
                "admitted": service.stats.admitted,
                "shed": service.stats.shed,
                "completed": service.stats.completed,
                "headroom_histogram":
                    service.stats.combined_headroom_histogram(),
            }
            if service.slo is not None:
                data["slo"] = service.slo.summary()
            if service.query_log is not None:
                data["query_log"] = service.query_log.summary()
        return {"v": version, "ok": True, "data": data}

    # -- envelopes -----------------------------------------------------------
    def _ok(self, version: int,
            response: ServiceResponse) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "tenant": response.tenant,
            "kind": response.kind,
            "vars": list(response.vars),
            "rows": _encode_rows(response),
        }
        if response.next_page_token is not None:
            data["next_page_token"] = response.next_page_token
        if version >= 2:
            data["failures"] = dict(response.failures)
            data["plan_cache"] = {"hit": response.plan_cache_hit}
            data["explain_id"] = response.explain_id
            if response.explain is not None:
                data["explain"] = response.explain
            if response.budget_stats is not None:
                data["budget"] = response.budget_stats
            if response.total_rows is not None:
                data["total_rows"] = response.total_rows
            if response.degraded is not None:
                data["degraded"] = response.degraded
            if response.trace_id is not None:
                data["trace_id"] = response.trace_id
            cache = self.service.plan_cache
            data["diagnostics"] = {
                "plan_cache_hit_rate": round(cache.hit_rate(), 6),
                "stats_invalidations": cache.stats_invalidations,
                "stats_version": (cache.stats.version
                                  if cache.stats is not None else None),
            }
            if self.service.slo is not None:
                data["diagnostics"]["slo"] = {
                    "active_alerts": self.service.slo.active_alerts(),
                }
        return {"v": version, "ok": True, "data": data}

    def _error(self, version: int, exc: BaseException) -> Dict[str, Any]:
        payload = error_payload(exc)
        if version < 2:
            # v1 clients signed up for code+message only
            payload = {"code": payload["code"],
                       "message": payload["message"]}
        return {"v": version, "ok": False, "error": payload}
