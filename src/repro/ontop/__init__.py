"""Ontop-spatial OBDA engine with OPeNDAP and raster adapters."""

from .mapping import (
    NodeTemplate,
    OntopMapping,
    OntopMappingError,
    TemplateTriple,
    parse_mapping_document,
    parse_target,
)
from .obda import OntopSpatial
from .opendap_adapter import make_opendap_endpoint, opendap_mapping_document
from .r2rml_adapter import from_r2rml, ontop_mapping_from_triples_map
from .raster import (
    RasterCatalog,
    attach_raster,
    raster_mapping_document,
)

__all__ = [
    "NodeTemplate",
    "OntopMapping",
    "OntopMappingError",
    "OntopSpatial",
    "RasterCatalog",
    "TemplateTriple",
    "attach_raster",
    "from_r2rml",
    "make_opendap_endpoint",
    "ontop_mapping_from_triples_map",
    "opendap_mapping_document",
    "parse_mapping_document",
    "parse_target",
    "raster_mapping_document",
]
