"""Ontop-spatial: geospatial ontology-based data access.

The engine exposes *virtual semantic graphs* over relational (and, via
MadIS virtual tables, non-relational) sources:

- mappings (native language or R2RML) describe how rows become triples;
- nothing is materialized up front: at query time the engine *unfolds*
  the query's triple patterns against the mapping targets, executes the
  SQL of only the relevant mappings, instantiates just those assertions
  and evaluates the rest of the query in memory;
- spatial filters against constant geometries are **pushed into SQL**:
  an ``geof:sfWithin(?w, <const>)`` becomes an ``ST_WITHIN`` predicate,
  and when the source is a plain table with a registered spatial index
  the push-down adds an R*Tree bounding-box pre-filter — the "DBMS
  optimizations ... taken into account" of Section 5.

``materialize()`` gives the full triple dump (what the paper calls the
materialized workflow), so benchmarks can compare both modes.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..geometry import Geometry, wkt_dumps
from ..madis import MadisConnection
from ..rdf import Graph
from ..rdf.namespace import NamespaceManager
from ..rdf.terms import BNode, IRI, Literal, Term, Triple
from ..sparql.ast import (
    BGP,
    GroupGraphPattern,
    OptionalPattern,
    MinusPattern,
    ServicePattern,
    SubSelect,
    TriplePattern,
    UnionPattern,
    Var,
)
from ..sparql.evaluator import (
    Context,
    _extract_spatial_restrictions,
    eval_query,
)
from ..sparql.parser import parse_query
from ..sparql.results import SPARQLResult
from .mapping import (
    NodeTemplate,
    OntopMapping,
    OntopMappingError,
    TemplateTriple,
    parse_mapping_document,
)

_SQL_RELATIONS = {
    "intersects": "ST_INTERSECTS",
    "contains": "ST_CONTAINS",
    "within": "ST_WITHIN",
    "touches": "ST_TOUCHES",
    "crosses": "ST_CROSSES",
    "overlaps": "ST_OVERLAPS",
    "equals": "ST_EQUALS",
}


class OntopSpatial:
    """An OBDA endpoint over a MadIS connection."""

    def __init__(self, conn: MadisConnection,
                 mappings: Sequence[OntopMapping],
                 namespaces: Optional[NamespaceManager] = None,
                 ontology: Optional[Graph] = None,
                 admission=None,
                 tracer=None):
        self.conn = conn
        self.mappings = list(mappings)
        self.namespaces = namespaces or NamespaceManager()
        self.ontology = ontology
        #: Optional AdmissionController guarding ``query()``.
        self.admission = admission
        #: Optional Tracer; query() also accepts a per-call override.
        self.tracer = tracer
        self._spatial_indexes: Dict[Tuple[str, str], str] = {}
        self.last_sql: List[str] = []  # introspection for tests/benchmarks

    @classmethod
    def from_document(cls, conn: MadisConnection, text: str,
                      ontology: Optional[Graph] = None) -> "OntopSpatial":
        mappings, ns = parse_mapping_document(text)
        return cls(conn, mappings, namespaces=ns, ontology=ontology)

    # -- spatial index administration --------------------------------------
    def register_spatial_index(self, table: str, geom_column: str) -> str:
        """Build an R*Tree over a table's WKT column for bbox pushdown."""
        index = f"idx_{table}_{geom_column}"
        self.conn.executescript(
            f"""
            DROP TABLE IF EXISTS {index};
            CREATE VIRTUAL TABLE {index}
                USING rtree(id, minx, maxx, miny, maxy);
            """
        )
        rows = self.conn.execute(
            f'SELECT rowid, "{geom_column}" FROM "{table}"'
        )
        from ..geometry import wkt_loads

        for row in rows:
            wkt = row[geom_column]
            if wkt is None:
                continue
            minx, miny, maxx, maxy = wkt_loads(wkt).bounds
            self.conn.execute(
                f"INSERT INTO {index} VALUES (?, ?, ?, ?, ?)",
                (row["rowid"], minx, maxx, miny, maxy),
            )
        self._spatial_indexes[(table.lower(), geom_column.lower())] = index
        return index

    # -- unfolding -----------------------------------------------------------
    def unfold(self, pattern: TriplePattern) -> List[OntopMapping]:
        """Mappings whose target can produce triples matching *pattern*."""
        return [
            m for m in self.mappings
            if any(_template_matches(t, pattern) for t in m.target)
        ]

    def relevant_mappings(self, group: GroupGraphPattern
                          ) -> List[OntopMapping]:
        patterns = list(_collect_patterns(group))
        if not patterns:
            return list(self.mappings)
        seen: Dict[str, OntopMapping] = {}
        for pattern in patterns:
            for m in self.unfold(pattern):
                seen[m.mapping_id] = m
        return list(seen.values())

    # -- evaluation ---------------------------------------------------------------
    def query(self, sparql_text: str, budget=None,
              tracer=None) -> SPARQLResult:
        """Answer a (Geo)SPARQL query against the virtual graphs.

        Simple single-mapping SELECTs are *unfolded directly to SQL*
        (the genuine Ontop execution model: the database computes the
        result rows, no triples are instantiated); everything else
        falls back to on-demand instantiation + the SPARQL evaluator.

        ``budget`` (a :class:`~repro.governance.QueryBudget`) governs
        the whole virtual evaluation: the MadIS layer row-budgets its
        virtual-table scans, triple instantiation charges the scan
        budget, and the final evaluation is cooperatively cancellable.
        When the engine has an admission controller, the query first
        takes an execution slot (and may be shed with ``Overloaded``).

        ``tracer`` (falling back to the engine's own) records the whole
        evaluation under one ``ontop.query`` span — direct-SQL
        unfolding, mapping instantiation, and the SPARQL evaluation all
        nest beneath it, and ``result.trace`` holds the span.
        """
        tracer = tracer if tracer is not None else self.tracer
        if self.admission is not None:
            return self.admission.run(
                lambda: self._governed_query(sparql_text, budget, tracer),
                budget=budget,
            )
        return self._governed_query(sparql_text, budget, tracer)

    def _governed_query(self, sparql_text: str, budget,
                        tracer=None) -> SPARQLResult:
        if tracer is None:
            return self._run_query(sparql_text, budget, None)
        with tracer.span("ontop.query") as root:
            result = self._run_query(sparql_text, budget, tracer)
        result.trace = root
        return result

    def _run_query(self, sparql_text: str, budget,
                   tracer) -> SPARQLResult:
        ast = parse_query(sparql_text, namespaces=self.namespaces)
        where = getattr(ast, "where", None)
        direct = self._try_direct_sql(ast, budget=budget, tracer=tracer)
        if direct is not None:
            return direct
        mappings = (
            self.relevant_mappings(where) if where is not None
            else list(self.mappings)
        )
        restrictions = (
            _extract_spatial_restrictions(where.elements, None)
            if where is not None else {}
        )
        if tracer is None:
            graph = self._instantiate(mappings, where, restrictions,
                                      budget=budget)
        else:
            with tracer.span("ontop.instantiate",
                             mappings=len(mappings)):
                graph = self._instantiate(mappings, where, restrictions,
                                          budget=budget)
        graph.namespaces = self.namespaces
        result = eval_query(ast, Context(graph, budget=budget,
                                         tracer=tracer))
        if budget is not None:
            result.budget_stats = budget.snapshot()
        return result

    def materialize(self, graph: Optional[Graph] = None) -> Graph:
        """Full triple dump of every mapping (the materialized workflow)."""
        graph = graph if graph is not None else Graph()
        graph.namespaces = self.namespaces
        self.last_sql = []
        for mapping in self.mappings:
            self._run_mapping(mapping, mapping.source_sql, graph)
        if self.ontology is not None:
            graph.update(self.ontology)
        return graph

    # -- internals ------------------------------------------------------------
    def _instantiate(self, mappings: Sequence[OntopMapping],
                     where: Optional[GroupGraphPattern],
                     restrictions, budget=None) -> Graph:
        graph = Graph()
        self.last_sql = []
        for mapping in mappings:
            sql = mapping.source_sql
            pushed = self._push_spatial_filter(mapping, where, restrictions)
            if pushed is not None:
                sql = pushed[0]
            self._run_mapping(mapping, sql, graph, budget=budget)
        if self.ontology is not None:
            graph.update(self.ontology)
        return graph

    def _run_mapping(self, mapping: OntopMapping, sql: str,
                     graph: Graph, budget=None) -> None:
        self.last_sql.append(sql)
        rows = self.conn.execute(sql, budget=budget)
        for row in rows:
            row_dict = {key: row[key] for key in row.keys()}
            bnodes: Dict[str, BNode] = {}
            for template in mapping.target:
                triple = template.instantiate(row_dict, bnodes)
                if triple is not None:
                    graph.add(triple)
                    if budget is not None:
                        budget.charge_triples()

    def _push_spatial_filter(self, mapping: OntopMapping,
                             where: Optional[GroupGraphPattern],
                             restrictions
                             ) -> Optional[Tuple[str, str]]:
        """Rewrite the mapping SQL with a pushed-down spatial predicate.

        Applies when a FILTER constrains a variable that, per the query's
        BGP and this mapping's target, is produced from a single source
        column holding WKT. Returns ``(sql, pushed_var_name)``.
        """
        if not restrictions or where is None:
            return None
        for var_name, restriction in restrictions.items():
            column = self._geometry_column_for(mapping, where, var_name)
            if column is None:
                continue
            sql_fn = _SQL_RELATIONS.get(restriction.relation)
            if sql_fn is None:
                continue
            const_wkt = wkt_dumps(restriction.geometry)
            sql = self._wrap_sql(
                mapping.source_sql, column, sql_fn, const_wkt,
                restriction.geometry,
            )
            return sql, var_name
        return None

    def _geometry_column_for(self, mapping: OntopMapping,
                             where: GroupGraphPattern,
                             var_name: str) -> Optional[str]:
        """The source column feeding geometry variable ?var_name, if any."""
        for pattern in _collect_patterns(where):
            if not (isinstance(pattern.o, Var) and pattern.o.name == var_name):
                continue
            for template in mapping.target:
                if not _template_matches(template, pattern):
                    continue
                node = template.o
                if node.kind == "literal" and node.datatype is not None \
                        and str(node.datatype).endswith("wktLiteral"):
                    columns = node.columns
                    if len(columns) == 1 and node.text == f"{{{columns[0]}}}":
                        return columns[0]
        return None

    def _other_mappings_provably_disjoint(self, anchor: OntopMapping,
                                          patterns) -> bool:
        """No non-anchor combination of mappings can answer the BGP.

        Real Ontop prunes the unfolding with IRI-template disjointness:
        an assignment of one mapping per pattern is infeasible when some
        shared variable would have to take values from two disjoint
        template languages. We enumerate every assignment that is not
        anchor-everywhere (pattern counts are tiny) and require each to
        be infeasible; otherwise fall back to the generic path.
        """
        import itertools

        per_pattern = []
        for p in patterns:
            matching = [
                m for m in self.mappings
                if any(_template_matches(t, p) for t in m.target)
            ]
            per_pattern.append(matching)
        if any(len(m) > 8 for m in per_pattern) or len(patterns) > 6:
            return False  # keep enumeration bounded

        for assignment in itertools.product(*per_pattern):
            if all(m is anchor for m in assignment):
                continue
            if self._assignment_feasible(assignment, patterns):
                return False
        return True

    @staticmethod
    def _assignment_feasible(assignment, patterns) -> bool:
        """Could this mapping-per-pattern assignment produce join rows?"""
        bindings: Dict[str, List[NodeTemplate]] = {}
        for m, p in zip(assignment, patterns):
            templates = [t for t in m.target if _template_matches(t, p)]
            for pos in ("s", "p", "o"):
                term = getattr(p, pos)
                if isinstance(term, Var):
                    # any matching template could bind it; feasible if at
                    # least one is compatible — collect all options
                    bindings.setdefault(term.name, []).append(
                        [getattr(t, pos) for t in templates]
                    )
        for var_name, option_lists in bindings.items():
            if len(option_lists) < 2:
                continue
            # feasible for this var if some cross-product choice is
            # pairwise compatible; check greedily over pairs of lists
            feasible = False
            first = option_lists[0]
            for candidate in first:
                if all(
                    any(not _templates_disjoint(candidate, other)
                        for other in options)
                    for options in option_lists[1:]
                ):
                    feasible = True
                    break
            if not feasible:
                return False
        return True

    # -- direct SQL unfolding (the real Ontop execution model) ---------------
    def _direct_sql_plan(self, ast) -> Optional[Dict[str, object]]:
        """Detect direct-SQL eligibility; the unfolding recipe or ``None``.

        Applies when the WHERE is one BGP (plus filters we can push or
        evaluate per-row) and exactly one mapping produces every
        pattern. Shared by execution (``_try_direct_sql``) and
        ``explain``.
        """
        from ..sparql.ast import Bind as BindEl
        from ..sparql.ast import Filter as FilterEl
        from ..sparql.ast import SelectQuery
        from ..sparql.evaluator import _projection_has_aggregate

        if not isinstance(ast, SelectQuery):
            return None
        if not ast.projections:
            return None
        needs_grouping = bool(ast.group_by) or \
            _projection_has_aggregate(ast)

        bgps = [e for e in ast.where.elements if isinstance(e, BGP)]
        filters = [e for e in ast.where.elements
                   if isinstance(e, FilterEl)]
        binds = [e for e in ast.where.elements if isinstance(e, BindEl)]
        if len(bgps) != 1 or len(bgps[0].patterns) == 0:
            return None
        if len(bgps) + len(filters) + len(binds) != \
                len(ast.where.elements):
            return None
        if any(_contains_exists(f.expr) for f in filters):
            return None  # EXISTS needs the full virtual graph
        if any(_contains_exists(b.expr) for b in binds):
            return None
        patterns = bgps[0].patterns

        # exactly one mapping must match *every* pattern (the anchor)
        anchors = [
            m for m in self.mappings
            if all(
                any(_template_matches(t, p) for t in m.target)
                for p in patterns
            )
        ]
        if len(anchors) != 1:
            return None
        mapping = anchors[0]
        if not self._other_mappings_provably_disjoint(mapping, patterns):
            return None

        # unify every pattern variable with exactly one node template
        var_templates: Dict[str, NodeTemplate] = {}
        for pattern in patterns:
            matches = [
                t for t in mapping.target if _template_matches(t, pattern)
            ]
            if len(matches) != 1:
                return None
            template = matches[0]
            for position, node in (("s", template.s), ("p", template.p),
                                   ("o", template.o)):
                term = getattr(pattern, position)
                if isinstance(term, Var):
                    existing = var_templates.get(term.name)
                    if existing is not None and existing != node:
                        return None  # same var from two shapes → join
                    if node.kind == "bnode":
                        return None  # bnode identity needs row scoping
                    var_templates[term.name] = node

        sql = mapping.source_sql
        restrictions = _extract_spatial_restrictions(
            ast.where.elements, None
        )
        pushed = self._push_spatial_filter(
            mapping, ast.where, restrictions
        )
        pushed_var = None
        if pushed is not None:
            sql, pushed_var = pushed
        residual_filters = [
            f for f in filters
            if not _is_pushed_spatial(f, pushed_var)
        ]
        return {
            "mapping": mapping,
            "sql": sql,
            "pushed_var": pushed_var,
            "var_templates": var_templates,
            "binds": binds,
            "residual_filters": residual_filters,
            "needs_grouping": needs_grouping,
        }

    def _try_direct_sql(self, ast, budget=None,
                        tracer=None) -> Optional[SPARQLResult]:
        """Answer a simple SELECT straight from the mapping's SQL rows."""
        recipe = self._direct_sql_plan(ast)
        if recipe is None:
            return None
        if tracer is None:
            return self._run_direct_sql(ast, recipe, budget)
        with tracer.span("ontop.direct_sql",
                         mapping=recipe["mapping"].mapping_id):
            return self._run_direct_sql(ast, recipe, budget)

    def _run_direct_sql(self, ast, recipe, budget) -> SPARQLResult:
        from ..sparql.evaluator import eval_expr
        from ..sparql.functions import SparqlValueError, \
            effective_boolean_value

        sql = recipe["sql"]
        var_templates = recipe["var_templates"]
        binds = recipe["binds"]
        residual_filters = recipe["residual_filters"]
        needs_grouping = recipe["needs_grouping"]

        self.last_sql = [sql]
        rows = self.conn.execute(sql, budget=budget)
        ctx = Context(Graph(), budget=budget)
        binding_rows = []
        for row in rows:
            if budget is not None:
                budget.check_deadline()
            row_dict = {key: row[key] for key in row.keys()}
            bindings = {}
            ok = True
            for var_name, node in var_templates.items():
                term = node.instantiate(row_dict, {})
                if term is None:
                    ok = False
                    break
                bindings[var_name] = term
            if not ok:
                continue
            for b in binds:
                try:
                    bindings[b.var.name] = eval_expr(b.expr, bindings, ctx)
                except SparqlValueError:
                    pass  # BIND error leaves the variable unbound
            for f in residual_filters:
                try:
                    if not effective_boolean_value(
                        eval_expr(f.expr, bindings, ctx)
                    ):
                        ok = False
                        break
                except SparqlValueError:
                    ok = False
                    break
            if ok:
                binding_rows.append(bindings)

        if needs_grouping:
            from ..sparql.evaluator import _group_and_aggregate

            out_rows = _group_and_aggregate(ast, binding_rows, ctx)
            binding_rows = out_rows
        if ast.order_by:
            from ..rdf.terms import Literal as RdfLiteral
            from ..rdf.terms import literal_cmp_key

            for cond in reversed(ast.order_by):
                def key_one(row, cond=cond):
                    try:
                        term = eval_expr(cond.expr, row, ctx)
                    except SparqlValueError:
                        return ((-1, 0.0), "")
                    if isinstance(term, RdfLiteral):
                        return (literal_cmp_key(term), "")
                    return ((4, 0.0), str(term))

                binding_rows.sort(key=key_one, reverse=cond.descending)
        if needs_grouping:
            out_rows = binding_rows
        else:
            out_rows = []
            for bindings in binding_rows:
                projected = {}
                for proj in ast.projections:
                    if proj.expr is None:
                        value = bindings.get(proj.var.name)
                        if value is not None:
                            projected[proj.var.name] = value
                    else:
                        try:
                            projected[proj.var.name] = eval_expr(
                                proj.expr, bindings, ctx
                            )
                        except SparqlValueError:
                            pass
                out_rows.append(projected)

        if ast.distinct:
            seen = set()
            unique = []
            for row in out_rows:
                key = tuple(
                    (v, row[v].n3() if hasattr(row[v], "n3")
                     else str(row[v]))
                    for v in sorted(row)
                )
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            out_rows = unique
        if ast.offset:
            out_rows = out_rows[ast.offset:]
        if ast.limit is not None:
            out_rows = out_rows[: ast.limit]
        if budget is not None:
            budget.charge_rows(len(out_rows))
        plan = self._direct_sql_node(recipe)
        plan.actual_rows = len(out_rows)
        return SPARQLResult(
            "SELECT",
            variables=[p.var.name for p in ast.projections],
            rows=out_rows,
            budget_stats=budget.snapshot() if budget is not None else None,
            plan=plan,
        )

    @staticmethod
    def _direct_sql_node(recipe):
        """Plan node describing one direct-SQL unfolding."""
        from ..sparql.plan import PlanNode

        mapping = recipe["mapping"]
        node = PlanNode("OntopDirectSQL", mapping.mapping_id)
        sql_detail = " ".join(str(recipe["sql"]).split())
        sql_node = PlanNode("SQL", sql_detail)
        if recipe["pushed_var"] is not None:
            sql_node.children.append(
                PlanNode("SpatialPushdown", f"?{recipe['pushed_var']}")
            )
        node.children.append(sql_node)
        if recipe["residual_filters"]:
            node.children.append(
                PlanNode("ResidualFilter",
                         f"{len(recipe['residual_filters'])} filters")
            )
        return node

    def explain(self, sparql_text: str):
        """Plan a query without touching the database.

        Returns the plan root. Direct-SQL-eligible queries show the
        unfolded SQL (with any spatial pushdown); everything else shows
        the unfolding (which mappings would be instantiated) and the
        SPARQL plan that would run over the virtual graph — estimates
        there are structural only, since the virtual graph is not
        materialized for EXPLAIN.
        """
        from ..sparql.evaluator import Context as EvalContext
        from ..sparql.evaluator import explain_query
        from ..sparql.plan import PlanNode

        ast = parse_query(sparql_text, namespaces=self.namespaces)
        recipe = self._direct_sql_plan(ast) \
            if hasattr(ast, "projections") else None
        if recipe is not None:
            return self._direct_sql_node(recipe)
        where = getattr(ast, "where", None)
        mappings = (
            self.relevant_mappings(where) if where is not None
            else list(self.mappings)
        )
        restrictions = (
            _extract_spatial_restrictions(where.elements, None)
            if where is not None else {}
        )
        root = PlanNode("OntopVirtual", f"{len(mappings)} mappings")
        for mapping in mappings:
            pushed = self._push_spatial_filter(mapping, where, restrictions)
            detail = mapping.mapping_id
            if pushed is not None:
                detail += f" [spatial pushdown ?{pushed[1]}]"
            root.children.append(PlanNode("Instantiate", detail))
        placeholder = Graph()
        placeholder.namespaces = self.namespaces
        root.children.append(explain_query(ast, EvalContext(placeholder)))
        return root

    def _wrap_sql(self, base_sql: str, column: str, sql_fn: str,
                  const_wkt: str, geometry: Geometry) -> str:
        """Add the spatial predicate, using an R*Tree bbox when possible."""
        escaped = const_wkt.replace("'", "''")
        m = re.match(
            r"^\s*SELECT\s+(?P<cols>.+?)\s+FROM\s+(?P<table>[A-Za-z_]\w*)"
            r"(?:\s+WHERE\s+(?P<where>.+))?\s*$",
            base_sql, re.IGNORECASE | re.DOTALL,
        )
        if m:
            table = m.group("table")
            index = self._spatial_indexes.get((table.lower(), column.lower()))
            if index is not None:
                minx, miny, maxx, maxy = geometry.bounds
                bbox = (
                    f'"{table}".rowid IN (SELECT id FROM {index} '
                    f"WHERE minx <= {maxx} AND maxx >= {minx} "
                    f"AND miny <= {maxy} AND maxy >= {miny})"
                )
                exact = f"{sql_fn}(\"{column}\", '{escaped}')"
                existing = m.group("where")
                clauses = [bbox, exact] + ([existing] if existing else [])
                return (
                    f'SELECT {m.group("cols")} FROM "{table}" WHERE '
                    + " AND ".join(clauses)
                )
        return (
            f"SELECT * FROM ({base_sql}) "
            f"WHERE {sql_fn}(\"{column}\", '{escaped}')"
        )


def _templates_disjoint(a: NodeTemplate, b: NodeTemplate) -> bool:
    """True when two node templates can never produce the same term."""
    if a == b:
        return False
    if a.kind != b.kind:
        # iri vs literal vs bnode spaces never overlap
        return not (a.kind == "constant" or b.kind == "constant") or \
            _constant_disjoint(a, b)
    if a.kind == "constant":
        return a.constant != b.constant
    if a.kind == "iri":
        prefix_a = a.text.split("{", 1)[0]
        prefix_b = b.text.split("{", 1)[0]
        return not (
            prefix_a.startswith(prefix_b) or prefix_b.startswith(prefix_a)
        )
    if a.kind == "literal":
        if a.datatype != b.datatype or a.lang != b.lang:
            return True
        return False  # same shape: cannot prove disjoint
    return False  # bnodes: assume overlap


def _constant_disjoint(a: NodeTemplate, b: NodeTemplate) -> bool:
    const, other = (a, b) if a.kind == "constant" else (b, a)
    from ..rdf.terms import Literal as RdfLiteral

    value = const.constant
    if other.kind == "iri":
        if not isinstance(value, IRI):
            return True
        prefix = other.text.split("{", 1)[0]
        return not str(value).startswith(prefix)
    if other.kind == "literal":
        if not isinstance(value, RdfLiteral):
            return True
        return value.datatype != other.datatype or value.lang != other.lang
    return True


def _contains_exists(expr) -> bool:
    from ..sparql.ast import (
        BinaryExpr, ExistsExpr, FunctionCall, InExpr, UnaryExpr,
    )

    if isinstance(expr, ExistsExpr):
        return True
    if isinstance(expr, BinaryExpr):
        return _contains_exists(expr.left) or _contains_exists(expr.right)
    if isinstance(expr, UnaryExpr):
        return _contains_exists(expr.operand)
    if isinstance(expr, FunctionCall):
        return any(_contains_exists(a) for a in expr.args)
    if isinstance(expr, InExpr):
        return _contains_exists(expr.value) or any(
            _contains_exists(o) for o in expr.options
        )
    return False


def _is_pushed_spatial(filter_element, pushed_var: Optional[str]) -> bool:
    """True when this FILTER is the one the SQL pushdown applied."""
    from ..sparql.ast import FunctionCall, TermExpr, VarExpr
    from ..sparql.functions import SPATIAL_RELATIONS

    if pushed_var is None:
        return False
    expr = filter_element.expr
    if not isinstance(expr, FunctionCall):
        return False
    if expr.name not in SPATIAL_RELATIONS or len(expr.args) != 2:
        return False
    a, b = expr.args
    var = a if isinstance(a, VarExpr) else b if isinstance(b, VarExpr) \
        else None
    const = a if isinstance(a, TermExpr) else b \
        if isinstance(b, TermExpr) else None
    return (
        var is not None and const is not None
        and var.var.name == pushed_var
    )


def _collect_patterns(group: GroupGraphPattern):
    for element in group.elements:
        if isinstance(element, BGP):
            yield from element.patterns
        elif isinstance(element, OptionalPattern):
            yield from _collect_patterns(element.group)
        elif isinstance(element, MinusPattern):
            yield from _collect_patterns(element.group)
        elif isinstance(element, UnionPattern):
            for alt in element.alternatives:
                yield from _collect_patterns(alt)
        elif isinstance(element, ServicePattern):
            yield from _collect_patterns(element.group)
        elif isinstance(element, SubSelect):
            yield from _collect_patterns(element.query.where)


def _template_matches(template: TemplateTriple,
                      pattern: TriplePattern) -> bool:
    return (
        _node_matches(template.s, pattern.s)
        and _node_matches(template.p, pattern.p)
        and _node_matches(template.o, pattern.o)
    )


def _node_matches(node: NodeTemplate, pattern_term) -> bool:
    if isinstance(pattern_term, Var):
        return True
    if node.kind == "bnode":
        return isinstance(pattern_term, BNode)
    if node.kind == "constant":
        return node.constant == pattern_term
    if node.kind == "iri":
        if not isinstance(pattern_term, IRI):
            return False
        if not node.columns:
            return str(pattern_term) == node.text
        return re.fullmatch(
            re.sub(r"\\{\w+\\}", ".+", re.escape(node.text)),
            str(pattern_term),
        ) is not None
    # literal template
    if not isinstance(pattern_term, Literal):
        return False
    if node.datatype is not None and pattern_term.datatype != node.datatype:
        return False
    if node.lang is not None and pattern_term.lang != node.lang:
        return False
    if not node.columns:
        return node.text == pattern_term.lexical
    return True
