"""Raster data sources for Ontop-spatial.

Reproduces the extension of [Bereta & Koubarakis, BiDS 2017]: raster
coverages (which GeoSPARQL does not model) become queryable through the
same OBDA machinery, "without the need to extend the GeoSPARQL query
language further". A raster's cells are exposed as a virtual table
``(id, <value>, ts, loc)`` where ``loc`` is the WKT *polygon of the
cell's footprint* — so vector/raster joins (e.g. "parks intersecting
burnt cells") work transparently with ``geof:sfIntersects``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..madis import MadisConnection
from ..madis.engine import MadisError
from ..opendap import DapDataset, decode_time
from ..opendap.model import apply_fill_and_scale


class RasterCatalog:
    """Named in-memory rasters exposed as the ``raster`` VT operator."""

    def __init__(self):
        self._rasters: Dict[str, DapDataset] = {}

    def add(self, name: str, dataset: DapDataset) -> None:
        self._rasters[name] = dataset

    def names(self) -> List[str]:
        return sorted(self._rasters)

    def __call__(self, name: Optional[str] = None,
                 variable: Optional[str] = None):
        """MadIS operator entry point: (columns, rows) of cell polygons."""
        if name is None:
            raise MadisError("raster operator requires name:<raster>")
        dataset = self._rasters.get(name)
        if dataset is None:
            raise MadisError(
                f"unknown raster {name!r}; have {self.names()}"
            )
        if variable is None:
            variable = next(
                (n for n, v in dataset.variables.items()
                 if len(v.dims) == 3), None,
            )
            if variable is None:
                raise MadisError(f"raster {name!r} has no 3-D variable")
        var = dataset[variable]
        times = decode_time(dataset["time"])
        lats = dataset["lat"].data.astype(float)
        lons = dataset["lon"].data.astype(float)
        half_lon = abs(lons[1] - lons[0]) / 2 if lons.size > 1 else 0.005
        half_lat = abs(lats[1] - lats[0]) / 2 if lats.size > 1 else 0.005
        values = apply_fill_and_scale(var)
        rows: List[Tuple] = []
        for ti, moment in enumerate(times):
            ts = moment.strftime("%Y-%m-%dT%H:%M:%SZ")
            stamp = moment.strftime("%Y%m%d")
            for yi, lat in enumerate(lats):
                for xi, lon in enumerate(lons):
                    value = values[ti, yi, xi]
                    if np.isnan(value):
                        continue
                    cell = _cell_polygon(lon, lat, half_lon, half_lat)
                    rows.append(
                        (f"{name}_{xi}_{yi}_{stamp}", float(value), ts, cell)
                    )
        return ("id", variable, "ts", "loc"), rows


def _cell_polygon(lon: float, lat: float,
                  half_lon: float, half_lat: float) -> str:
    x1, x2 = lon - half_lon, lon + half_lon
    y1, y2 = lat - half_lat, lat + half_lat
    return (
        f"POLYGON (({x1:g} {y1:g}, {x2:g} {y1:g}, {x2:g} {y2:g}, "
        f"{x1:g} {y2:g}, {x1:g} {y1:g}))"
    )


def attach_raster(conn: MadisConnection,
                  catalog: Optional[RasterCatalog] = None) -> RasterCatalog:
    """Register the ``raster`` operator; returns the catalog to fill."""
    catalog = catalog or RasterCatalog()
    conn.register_vt_operator("raster", catalog)
    return catalog


RASTER_MAPPING_TEMPLATE = """\
[PrefixDeclaration]
rast:\thttp://www.app-lab.eu/raster/
geo:\thttp://www.opengis.net/ont/geosparql#
time:\thttp://www.w3.org/2006/time#
xsd:\thttp://www.w3.org/2001/XMLSchema#
rdf:\thttp://www.w3.org/1999/02/22-rdf-syntax-ns#

[MappingDeclaration] @collection [[
mappingId\traster_{name}
target\trast:{{id}} rdf:type rast:Cell .
\trast:{{id}} rast:value {{{variable}}}^^xsd:float ;
\t     time:hasTime {{ts}}^^xsd:dateTime .
\trast:{{id}} geo:hasGeometry rast:geom/{{id}} .
\trast:geom/{{id}} geo:asWKT {{loc}}^^geo:wktLiteral .
source\tSELECT id, {variable}, ts, loc FROM (raster name:{name})
]]
"""


def raster_mapping_document(name: str, variable: str) -> str:
    """A mapping exposing one named raster as rast:Cell observations."""
    return RASTER_MAPPING_TEMPLATE.format(name=name, variable=variable)
