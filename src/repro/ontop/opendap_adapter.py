"""The Ontop-spatial OPeNDAP adapter (the paper's core novelty, §3.2).

Wires together the pieces so that "users [can] pose GeoSPARQL queries
on top of OPeNDAP data sources without materializing any triples or
tables": the MadIS ``opendap`` virtual-table operator fetches the data
at query time (with the time-window cache), and an Ontop mapping in the
style of Listing 2 turns the rows into virtual RDF observations.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

from ..madis import MadisConnection, OpendapVTOperator, attach_opendap
from ..opendap import ServerRegistry
from ..resilience import ResilienceStats, RetryPolicy
from .obda import OntopSpatial

LISTING2_TEMPLATE = """\
[PrefixDeclaration]
lai:\thttp://www.app-lab.eu/lai/
geo:\thttp://www.opengis.net/ont/geosparql#
time:\thttp://www.w3.org/2006/time#
xsd:\thttp://www.w3.org/2001/XMLSchema#
rdf:\thttp://www.w3.org/1999/02/22-rdf-syntax-ns#

[MappingDeclaration] @collection [[
mappingId\topendap_mapping
target\tlai:{{id}} rdf:type lai:Observation .
\tlai:{{id}} lai:lai {{{variable}}}^^xsd:float ;
\t     time:hasTime {{ts}}^^xsd:dateTime .
\tlai:{{id}} geo:hasGeometry lai:geom/{{id}} .
\tlai:geom/{{id}} geo:asWKT {{loc}}^^geo:wktLiteral .
source\tSELECT id, {variable}, ts, loc
\tFROM (ordered opendap url:{url}, {window})
\tWHERE {variable} > 0
]]
"""


def opendap_mapping_document(url: str, variable: str = "LAI",
                             window_minutes: float = 10) -> str:
    """The Listing 2 mapping document for a DAP product URL."""
    return LISTING2_TEMPLATE.format(
        url=url, variable=variable, window=f"{window_minutes:g}"
    )


def make_opendap_endpoint(
    registry: ServerRegistry,
    url: str,
    variable: str = "LAI",
    window_minutes: float = 10,
    clock: Callable[[], float] = time.monotonic,
    mapping_document: Optional[str] = None,
    retry_policy: Optional[RetryPolicy] = None,
    stats: Optional[ResilienceStats] = None,
    admission=None,
    tracer=None,
) -> Tuple[OntopSpatial, OpendapVTOperator, MadisConnection]:
    """Build a ready-to-query virtual endpoint over an OPeNDAP URL.

    Returns (engine, opendap operator, MadIS connection); the operator
    exposes cache/server-call counters for the E4/E5 experiments and —
    when a *retry_policy* is given — a ``stats`` ResilienceStats block
    describing retries/timeouts seen while the virtual tables fetched
    remote data.

    ``engine.query(text, budget=...)`` threads a
    :class:`~repro.governance.QueryBudget` down to the virtual-table
    scans (row budget, deadline-capped fetch retries). *admission* (an
    :class:`~repro.governance.AdmissionController`) bounds concurrent
    queries on the returned engine; excess load is shed with
    ``Overloaded``. *tracer* (a
    :class:`~repro.observability.Tracer`) is threaded through every
    layer of the returned stack — Ontop query spans, MadIS
    execute/materialize spans, and DAP fetch spans all join one tree.
    """
    conn = MadisConnection(tracer=tracer)
    operator = attach_opendap(conn, registry, clock=clock,
                              retry_policy=retry_policy, stats=stats,
                              tracer=tracer)
    document = mapping_document or opendap_mapping_document(
        url, variable=variable, window_minutes=window_minutes
    )
    engine = OntopSpatial.from_document(conn, document)
    engine.admission = admission
    engine.tracer = tracer
    return engine, operator, conn
