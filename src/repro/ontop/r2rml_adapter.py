"""R2RML support for Ontop-spatial.

Section 3.2: "The mapping language R2RML is a W3C standard and is
commonly used to encode mappings, but a lot of OBDA/RDB2RDF systems
also offer a native mapping language." The native language lives in
:mod:`repro.ontop.mapping`; this module accepts W3C R2RML documents by
converting the parsed :class:`repro.geotriples.TriplesMap` model into
Ontop mappings (``rr:logicalTable/rr:tableName`` becomes the source
SQL).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..geotriples import TriplesMap, parse_r2rml
from ..geotriples.rml import LogicalSource, TermMap
from ..madis import MadisConnection
from ..rdf.namespace import GEO, NamespaceManager, RDF, SF
from ..rdf.terms import IRI, Literal
from .mapping import NodeTemplate, OntopMapping, OntopMappingError, \
    TemplateTriple
from .obda import OntopSpatial


def _node_from_term_map(term_map: TermMap) -> NodeTemplate:
    if term_map.constant is not None:
        return NodeTemplate("constant", constant=term_map.constant)
    if term_map.term_type == "bnode":
        text = term_map.template or f"{{{term_map.column}}}"
        return NodeTemplate("bnode", text)
    if term_map.term_type == "iri":
        text = term_map.template or f"{{{term_map.column}}}"
        return NodeTemplate("iri", text)
    # literal
    text = term_map.template or f"{{{term_map.column}}}"
    return NodeTemplate(
        "literal", text, datatype=term_map.datatype, lang=term_map.lang
    )


def ontop_mapping_from_triples_map(tmap: TriplesMap,
                                   source_sql: str) -> OntopMapping:
    """Convert one parsed R2RML triples map into an Ontop mapping."""
    subject = _node_from_term_map(tmap.subject_map)
    target: List[TemplateTriple] = []
    for cls in tmap.classes:
        target.append(
            TemplateTriple(
                subject,
                NodeTemplate("constant", constant=RDF.type),
                NodeTemplate("constant", constant=cls),
            )
        )
    for pom in tmap.predicate_object_maps:
        target.append(
            TemplateTriple(
                subject,
                NodeTemplate("constant", constant=pom.predicate),
                _node_from_term_map(pom.object_map),
            )
        )
    if tmap.geometry_column:
        geom_node = NodeTemplate(
            "iri", _geometry_iri_text(tmap.subject_map)
        )
        target.append(
            TemplateTriple(
                subject,
                NodeTemplate("constant", constant=GEO.hasGeometry),
                geom_node,
            )
        )
        target.append(
            TemplateTriple(
                geom_node,
                NodeTemplate("constant", constant=GEO.asWKT),
                NodeTemplate(
                    "literal", f"{{{tmap.geometry_column}}}",
                    datatype=IRI(str(GEO) + "wktLiteral"),
                ),
            )
        )
    if not target:
        raise OntopMappingError(
            f"triples map {tmap.name!r} produces no assertions"
        )
    return OntopMapping(
        mapping_id=tmap.name, source_sql=source_sql, target=target
    )


def _geometry_iri_text(subject_map: TermMap) -> str:
    if subject_map.template:
        return subject_map.template + "/geometry"
    return f"{{{subject_map.column}}}/geometry"


def from_r2rml(conn: MadisConnection, r2rml_text: str,
               table_sql: Optional[Dict[str, str]] = None,
               ontology=None) -> OntopSpatial:
    """Build an Ontop-spatial endpoint from an R2RML Turtle document.

    ``table_sql`` optionally overrides the SQL per ``rr:tableName``;
    the default is ``SELECT * FROM <table>``.
    """
    table_sql = dict(table_sql or {})

    class _TableRef(LogicalSource):
        def __init__(self, table: str):
            super().__init__("rows", ())
            self.table = table

    # parse_r2rml wants concrete sources per table name; capture names.
    import re

    names = set(re.findall(r'rr:tableName\s+"([^"]+)"', r2rml_text))
    sources = {name: _TableRef(name) for name in names}
    triples_maps = parse_r2rml(r2rml_text, sources=sources)

    mappings = []
    for tmap in triples_maps:
        source = tmap.logical_source
        table = getattr(source, "table", None)
        if table is None:
            raise OntopMappingError(
                f"triples map {tmap.name!r} has no rr:tableName source"
            )
        sql = table_sql.get(table, f'SELECT * FROM "{table}"')
        mappings.append(ontop_mapping_from_triples_map(tmap, sql))
    return OntopSpatial(conn, mappings, namespaces=NamespaceManager(),
                        ontology=ontology)
