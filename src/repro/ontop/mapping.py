"""Ontop's native mapping language (the format of the paper's Listing 2).

A mapping document looks like::

    [PrefixDeclaration]
    lai:    http://www.app-lab.eu/lai/
    geo:    http://www.opengis.net/ont/geosparql#

    [MappingDeclaration] @collection [[
    mappingId   opendap_mapping
    target      lai:{id} rdf:type lai:Observation .
                lai:{id} lai:lai {LAI}^^xsd:float ;
                         time:hasTime {ts}^^xsd:dateTime .
                lai:{id} geo:hasGeometry _:g .
                _:g geo:asWKT {loc}^^geo:wktLiteral .
    source      SELECT id, LAI, ts, loc
                FROM (ordered opendap url:dap://vito/LAI, 10)
                WHERE LAI > 0
    ]]

The *target* is a Turtle-like template whose ``{column}`` placeholders
are filled from each source row; the *source* is SQL over the MadIS
layer (including its virtual-table operators).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..rdf.namespace import NamespaceManager, RDF
from ..rdf.terms import BNode, IRI, Literal, Term, Triple


class OntopMappingError(ValueError):
    """Raised on malformed mapping documents or templates."""


@dataclass(frozen=True)
class NodeTemplate:
    """A subject/predicate/object slot of a target template triple.

    kinds: ``iri`` (text with optional placeholders), ``bnode`` (label is
    per-row), ``literal`` (text with placeholders + optional datatype or
    lang), ``constant`` (a fixed term).
    """

    kind: str
    text: str = ""
    datatype: Optional[IRI] = None
    lang: Optional[str] = None
    constant: Optional[Term] = None

    @property
    def columns(self) -> List[str]:
        return re.findall(r"\{(\w+)\}", self.text)

    def instantiate(self, row: Dict[str, object],
                    bnodes: Dict[str, BNode]) -> Optional[Term]:
        if self.kind == "constant":
            return self.constant
        if self.kind == "bnode":
            if self.text not in bnodes:
                bnodes[self.text] = BNode()
            return bnodes[self.text]
        try:
            text = re.sub(
                r"\{(\w+)\}",
                lambda m: _row_value(row, m.group(1)),
                self.text,
            )
        except KeyError:
            return None
        if self.kind == "iri":
            return IRI(text.replace(" ", "_"))
        return Literal(text, datatype=self.datatype, lang=self.lang)


class _NullValue(KeyError):
    pass


def _row_value(row: Dict[str, object], column: str) -> str:
    if column not in row or row[column] is None:
        raise _NullValue(column)
    return str(row[column])


@dataclass(frozen=True)
class TemplateTriple:
    s: NodeTemplate
    p: NodeTemplate
    o: NodeTemplate

    def instantiate(self, row: Dict[str, object],
                    bnodes: Dict[str, BNode]) -> Optional[Triple]:
        s = self.s.instantiate(row, bnodes)
        p = self.p.instantiate(row, bnodes)
        o = self.o.instantiate(row, bnodes)
        if s is None or p is None or o is None:
            return None
        return Triple(s, p, o)


@dataclass
class OntopMapping:
    mapping_id: str
    source_sql: str
    target: List[TemplateTriple] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Target template parsing
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<punct>[.;,])
  | (?P<bnode>_:\w+)
  | (?P<iriref><[^<>\s]+>)
  | (?P<quoted>"(?:[^"\\]|\\.)*")
  | (?P<braced>\{\w+\})
  | (?P<pname>[A-Za-z_][\w.-]*:[\w.{}%/-]*)
  | (?P<a>\ba\b)
  | (?P<caret>\^\^)
  | (?P<lang>@[A-Za-z-]+)
    """,
    re.VERBOSE,
)


def parse_target(text: str, ns: NamespaceManager) -> List[TemplateTriple]:
    """Parse a target template into template triples."""
    tokens = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise OntopMappingError(
                f"cannot tokenize target at {text[pos:pos+30]!r}"
            )
        tokens.append((m.lastgroup, m.group(0)))
        pos = m.end()

    triples: List[TemplateTriple] = []
    i = 0

    def node(allow_literal: bool) -> Tuple[NodeTemplate, int]:
        nonlocal i
        kind, value = tokens[i]
        if kind == "bnode":
            i += 1
            return NodeTemplate("bnode", value[2:]), i
        if kind == "iriref":
            i += 1
            return NodeTemplate("iri", value[1:-1]), i
        if kind == "a":
            i += 1
            return NodeTemplate("constant", constant=RDF.type), i
        if kind == "pname":
            i += 1
            prefix, __, local = value.partition(":")
            try:
                base = ns.expand(prefix + ":")
            except ValueError as exc:
                raise OntopMappingError(str(exc)) from None
            return NodeTemplate("iri", str(base) + local), i
        if kind in ("braced", "quoted") and allow_literal:
            i += 1
            text_value = value[1:-1] if kind == "quoted" else value
            datatype = None
            lang = None
            if i < len(tokens) and tokens[i][0] == "caret":
                i += 1
                dt_kind, dt_value = tokens[i]
                i += 1
                if dt_kind == "iriref":
                    datatype = IRI(dt_value[1:-1])
                elif dt_kind == "pname":
                    datatype = ns.expand(dt_value)
                else:
                    raise OntopMappingError("bad datatype after ^^")
            elif i < len(tokens) and tokens[i][0] == "lang":
                lang = tokens[i][1][1:]
                i += 1
            return NodeTemplate("literal", text_value,
                                datatype=datatype, lang=lang), i
        if kind == "braced":
            # placeholder in subject position → IRI template
            i += 1
            return NodeTemplate("iri", value), i
        raise OntopMappingError(
            f"unexpected token {value!r} in target template"
        )

    while i < len(tokens):
        subject, i = node(allow_literal=False)
        while True:
            predicate, i = node(allow_literal=False)
            while True:
                obj, i = node(allow_literal=True)
                triples.append(TemplateTriple(subject, predicate, obj))
                if i < len(tokens) and tokens[i] == ("punct", ","):
                    i += 1
                    continue
                break
            if i < len(tokens) and tokens[i] == ("punct", ";"):
                i += 1
                if i < len(tokens) and tokens[i] == ("punct", "."):
                    i += 1
                    break
                continue
            if i < len(tokens) and tokens[i] == ("punct", "."):
                i += 1
                break
            if i >= len(tokens):
                break
            raise OntopMappingError(
                f"expected '.', ';' or ',' after object, got {tokens[i][1]!r}"
            )
    if not triples:
        raise OntopMappingError("empty target template")
    return triples


# ---------------------------------------------------------------------------
# Mapping document parsing
# ---------------------------------------------------------------------------

def parse_mapping_document(text: str,
                           namespaces: Optional[NamespaceManager] = None
                           ) -> Tuple[List[OntopMapping], NamespaceManager]:
    """Parse a native Ontop mapping document."""
    ns = namespaces or NamespaceManager()
    lines = text.splitlines()
    i = 0
    # prefix declaration section (optional)
    while i < len(lines):
        line = lines[i].strip()
        if line == "[PrefixDeclaration]":
            i += 1
            while i < len(lines):
                decl = lines[i].strip()
                if not decl:
                    break
                if decl.startswith("["):
                    break
                m = re.match(r"^([\w-]*):\s+(\S+)$", decl)
                if not m:
                    raise OntopMappingError(f"bad prefix line {decl!r}")
                ns.bind(m.group(1), m.group(2))
                i += 1
            continue
        if line.startswith("[MappingDeclaration]"):
            i += 1
            continue
        i += 1

    # mapping blocks
    body = re.sub(r"\[\[|\]\]", "", text)
    blocks = re.split(r"(?m)^\s*mappingId\b", body)[1:]
    mappings: List[OntopMapping] = []
    for block in blocks:
        mapping_id, rest = _take_line(block)
        target_text, source_text = _split_target_source(rest)
        target = parse_target(target_text, ns)
        mappings.append(
            OntopMapping(
                mapping_id=mapping_id.strip(),
                source_sql=" ".join(source_text.split()),
                target=target,
            )
        )
    if not mappings:
        raise OntopMappingError("no mappings found in document")
    return mappings, ns


def _take_line(text: str) -> Tuple[str, str]:
    line, __, rest = text.partition("\n")
    return line.strip(), rest


def _split_target_source(text: str) -> Tuple[str, str]:
    m_target = re.search(r"(?m)^\s*target\b", text)
    m_source = re.search(r"(?m)^\s*source\b", text)
    if not m_target or not m_source:
        raise OntopMappingError("mapping block needs target and source")
    if m_target.start() > m_source.start():
        source_text = text[m_source.end(): m_target.start()]
        target_text = text[m_target.end():]
    else:
        target_text = text[m_target.end(): m_source.start()]
        source_text = text[m_source.end():]
    # a following mappingId (same block split artifact) cannot appear here
    return target_text.strip(), source_text.strip()
