"""Geographica-style benchmark workload.

Geographica [Garbis, Kyzirakos & Koubarakis, ISWC 2013] evaluates
geospatial RDF stores with a *micro* benchmark over real datasets (GAG
administrative areas, CORINE land cover, hotspots, road network, POIs).
We generate a synthetic workload with the same shape, and load it both
ways so the two engines of the paper's comparison see identical data:

- as RDF (GeoTriples → Strabon / plain graph), and
- as SQL tables + Ontop mappings (the OBDA side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..data import WorkloadGenerator
from ..geometry import FeatureCollection
from ..geotriples import (
    LogicalSource,
    MappingProcessor,
    TermMap,
    TriplesMap,
)
from ..madis import MadisConnection
from ..ontop import OntopSpatial
from ..rdf import IRI, Namespace, XSD
from ..strabon import StrabonStore

GEOGRAPHICA = Namespace("http://geographica.di.uoa.gr/generator/")

#: dataset name → (geometry kind, relative size, classes)
DATASET_SHAPES: Dict[str, Tuple[str, int, List[str]]] = {
    "gag": ("polygon", 40, []),                     # admin areas
    "corine": ("box", 120, ["111", "121", "141", "211", "311", "511"]),
    "hotspots": ("point", 200, []),
    "roads": ("linestring", 60, []),
    "pois": ("point", 150, ["cafe", "school", "fuel", "museum"]),
}


@dataclass
class Workload:
    """The generated feature collections plus both loaded forms."""

    features: Dict[str, FeatureCollection]
    scale: int


def generate_workload(scale: int = 1, seed: int = 13) -> Workload:
    """Scale factor multiplies every dataset's cardinality."""
    features: Dict[str, FeatureCollection] = {}
    for i, (name, (kind, base, classes)) in enumerate(
        sorted(DATASET_SHAPES.items())
    ):
        gen = WorkloadGenerator(seed=seed + i)
        features[name] = gen.feature_collection(
            base * scale, kind, classes=classes or None
        )
    return Workload(features=features, scale=scale)


def _triples_map(name: str, fc: FeatureCollection) -> TriplesMap:
    ns = str(GEOGRAPHICA)
    tmap = TriplesMap(
        name=name,
        logical_source=LogicalSource("geojson", fc),
        subject_map=TermMap(template=f"{ns}{name}/{{gid}}"),
        classes=[IRI(ns + name.capitalize())],
        geometry_column="wkt",
    )
    tmap.add_pom(
        GEOGRAPHICA.hasName,
        TermMap(column="name", term_type="literal", datatype=XSD.string),
    )
    sample = fc.features[0].properties if fc.features else {}
    if "class" in sample:
        tmap.add_pom(
            GEOGRAPHICA.hasClass,
            TermMap(column="class", term_type="literal"),
        )
    return tmap


def load_strabon(workload: Workload) -> StrabonStore:
    """Materialize the workload into a Strabon store."""
    store = StrabonStore("geographica")
    maps = [
        _triples_map(name, fc)
        for name, fc in sorted(workload.features.items())
    ]
    MappingProcessor(maps).run(store)
    return store


_ONTOP_DOC_HEADER = """\
[PrefixDeclaration]
geod:\thttp://geographica.di.uoa.gr/generator/
geo:\thttp://www.opengis.net/ont/geosparql#
xsd:\thttp://www.w3.org/2001/XMLSchema#
rdf:\thttp://www.w3.org/1999/02/22-rdf-syntax-ns#

[MappingDeclaration] @collection [[
"""

_ONTOP_BLOCK = """\
mappingId\t{name}
target\tgeod:{name}/{{gid}} rdf:type geod:{cls} .
\tgeod:{name}/{{gid}} geod:hasName {{name}}^^xsd:string .
{class_line}\tgeod:{name}/{{gid}} geo:hasGeometry geod:{name}/{{gid}}/geom .
\tgeod:{name}/{{gid}}/geom geo:asWKT {{wkt}}^^geo:wktLiteral .
source\tSELECT gid, name{class_col} , wkt FROM {name}

"""


def load_ontop(workload: Workload,
               spatial_indexes: bool = True
               ) -> Tuple[OntopSpatial, MadisConnection]:
    """Load the workload into SQL tables + an Ontop-spatial endpoint."""
    conn = MadisConnection()
    blocks = []
    for name, fc in sorted(workload.features.items()):
        has_class = bool(fc.features) and "class" in fc.features[0].properties
        columns = "gid INTEGER, name TEXT" + (
            ", class TEXT" if has_class else ""
        ) + ", wkt TEXT"
        conn.executescript(f"CREATE TABLE {name} ({columns});")
        placeholders = "?, ?, ?" + (", ?" if has_class else "")
        for feature in fc:
            row = [int(feature.id), feature.properties.get("name", "")]
            if has_class:
                row.append(feature.properties.get("class", ""))
            from ..geometry import wkt_dumps

            row.append(wkt_dumps(feature.geometry))
            conn.execute(
                f"INSERT INTO {name} VALUES ({placeholders})", row
            )
        class_line = (
            f"\tgeod:{name}/{{gid}} geod:hasClass {{class}}^^xsd:string .\n"
            if has_class else ""
        )
        blocks.append(
            _ONTOP_BLOCK.format(
                name=name,
                cls=name.capitalize(),
                class_line=class_line,
                class_col=", class" if has_class else "",
            )
        )
    document = _ONTOP_DOC_HEADER + "".join(blocks) + "]]\n"
    engine = OntopSpatial.from_document(conn, document)
    if spatial_indexes:
        for name in workload.features:
            engine.register_spatial_index(name, "wkt")
    return engine, conn
