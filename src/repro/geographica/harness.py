"""Multi-engine benchmark harness.

Runs the Geographica query set against any engine with a
``query(text)`` method (Strabon store, plain graph, Ontop-spatial,
federation) and reports per-query timings + the per-query winner, the
form in which the paper states its claim ("Ontop-spatial is also faster
than Strabon on most of the queries of the benchmark Geographica").
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .queries import BenchQuery, micro_queries


@dataclass
class Measurement:
    query_key: str
    engine: str
    seconds: float
    rows: int


@dataclass
class BenchmarkReport:
    measurements: List[Measurement] = field(default_factory=list)

    def median(self, query_key: str, engine: str) -> Optional[float]:
        times = [
            m.seconds for m in self.measurements
            if m.query_key == query_key and m.engine == engine
        ]
        return statistics.median(times) if times else None

    def engines(self) -> List[str]:
        return sorted({m.engine for m in self.measurements})

    def queries(self) -> List[str]:
        seen: List[str] = []
        for m in self.measurements:
            if m.query_key not in seen:
                seen.append(m.query_key)
        return seen

    def winner(self, query_key: str) -> Optional[str]:
        candidates = [
            (self.median(query_key, engine), engine)
            for engine in self.engines()
        ]
        candidates = [(t, e) for t, e in candidates if t is not None]
        return min(candidates)[1] if candidates else None

    def win_counts(self) -> Dict[str, int]:
        counts = {engine: 0 for engine in self.engines()}
        for query_key in self.queries():
            winner = self.winner(query_key)
            if winner is not None:
                counts[winner] += 1
        return counts

    def rows_agree(self, query_key: str) -> bool:
        rows = {
            m.rows for m in self.measurements if m.query_key == query_key
        }
        return len(rows) == 1

    def render(self) -> str:
        engines = self.engines()
        header = "query".ljust(6) + "".join(
            e.rjust(16) for e in engines
        ) + "  winner"
        lines = [header, "-" * len(header)]
        for query_key in self.queries():
            cells = []
            for engine in engines:
                median = self.median(query_key, engine)
                cells.append(
                    f"{median * 1000:13.2f}ms" if median is not None
                    else " " * 15 + "-"
                )
            lines.append(
                query_key.ljust(6) + "".join(cells)
                + f"  {self.winner(query_key)}"
            )
        wins = self.win_counts()
        lines.append("-" * len(header))
        lines.append(
            "wins: " + ", ".join(f"{e}={n}" for e, n in sorted(wins.items()))
        )
        return "\n".join(lines)


def run_benchmark(engines: Dict[str, object],
                  queries: Optional[Sequence[BenchQuery]] = None,
                  repeat: int = 3,
                  warmup: int = 1,
                  clock: Callable[[], float] = time.perf_counter
                  ) -> BenchmarkReport:
    """Time every query on every engine; returns the report."""
    queries = list(queries) if queries is not None else micro_queries()
    report = BenchmarkReport()
    for bench_query in queries:
        for engine_name, engine in sorted(engines.items()):
            for __ in range(warmup):
                engine.query(bench_query.sparql)
            for __ in range(repeat):
                start = clock()
                result = engine.query(bench_query.sparql)
                elapsed = clock() - start
                report.measurements.append(
                    Measurement(
                        bench_query.key, engine_name, elapsed, len(result)
                    )
                )
    return report
