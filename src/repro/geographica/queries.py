"""The Geographica micro query set (adapted to the synthetic workload).

Four families mirroring the original micro benchmark:

- **NT** non-topological constructs (envelope, convex hull, buffer, area);
- **SS** spatial selections against a constant geometry;
- **SJ** spatial joins between datasets;
- **AG** aggregations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..data import DEFAULT_REGION

PREFIXES = """
PREFIX geod: <http://geographica.di.uoa.gr/generator/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
"""


def _selection_box() -> str:
    minx, miny, maxx, maxy = DEFAULT_REGION
    # a window covering ~12% of the region
    width = (maxx - minx) * 0.35
    height = (maxy - miny) * 0.35
    x1, y1 = minx + width / 2, miny + height / 2
    x2, y2 = x1 + width, y1 + height
    return (
        f"POLYGON (({x1} {y1}, {x2} {y1}, {x2} {y2}, {x1} {y2}, "
        f"{x1} {y1}))"
    )


@dataclass(frozen=True)
class BenchQuery:
    key: str
    family: str
    description: str
    sparql: str


def micro_queries() -> List[BenchQuery]:
    box = _selection_box()
    queries = [
        BenchQuery(
            "NT1", "non-topological", "envelope of admin areas",
            PREFIXES + """
            SELECT ?a (geof:envelope(?w) AS ?env) WHERE {
              ?a a geod:Gag ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
            }
            """,
        ),
        BenchQuery(
            "NT2", "non-topological", "convex hull of admin areas",
            PREFIXES + """
            SELECT ?a (geof:convexHull(?w) AS ?hull) WHERE {
              ?a a geod:Gag ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
            }
            """,
        ),
        BenchQuery(
            "NT3", "non-topological", "buffer around POIs",
            PREFIXES + """
            SELECT ?p (geof:buffer(?w, 0.02) AS ?zone) WHERE {
              ?p a geod:Pois ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
            }
            """,
        ),
        BenchQuery(
            "NT4", "non-topological", "area of CORINE polygons",
            PREFIXES + """
            SELECT ?c (geof:area(?w) AS ?area) WHERE {
              ?c a geod:Corine ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
            }
            """,
        ),
        BenchQuery(
            "SS1", "spatial-selection", "hotspots within a window",
            PREFIXES + f"""
            SELECT ?h WHERE {{
              ?h a geod:Hotspots ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
              FILTER(geof:sfWithin(?w, "{box}"^^geo:wktLiteral))
            }}
            """,
        ),
        BenchQuery(
            "SS2", "spatial-selection", "CORINE intersecting a window",
            PREFIXES + f"""
            SELECT ?c WHERE {{
              ?c a geod:Corine ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
              FILTER(geof:sfIntersects(?w, "{box}"^^geo:wktLiteral))
            }}
            """,
        ),
        BenchQuery(
            "SS3", "spatial-selection", "roads crossing a window",
            PREFIXES + f"""
            SELECT ?r WHERE {{
              ?r a geod:Roads ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
              FILTER(geof:sfIntersects(?w, "{box}"^^geo:wktLiteral))
            }}
            """,
        ),
        BenchQuery(
            "SJ1", "spatial-join", "hotspots within admin areas",
            PREFIXES + """
            SELECT ?h ?a WHERE {
              ?a a geod:Gag ; geo:hasGeometry ?ga . ?ga geo:asWKT ?wa .
              ?h a geod:Hotspots ; geo:hasGeometry ?gh . ?gh geo:asWKT ?wh .
              FILTER(geof:sfWithin(?wh, ?wa))
            }
            """,
        ),
        BenchQuery(
            "SJ2", "spatial-join", "CORINE intersecting admin areas",
            PREFIXES + """
            SELECT ?c ?a WHERE {
              ?a a geod:Gag ; geo:hasGeometry ?ga . ?ga geo:asWKT ?wa .
              ?c a geod:Corine ; geo:hasGeometry ?gc . ?gc geo:asWKT ?wc .
              FILTER(geof:sfIntersects(?wc, ?wa))
            }
            """,
        ),
        BenchQuery(
            "AG1", "aggregation", "POI count per class in a window",
            PREFIXES + f"""
            SELECT ?class (COUNT(?p) AS ?n) WHERE {{
              ?p a geod:Pois ; geod:hasClass ?class ;
                 geo:hasGeometry ?g . ?g geo:asWKT ?w .
              FILTER(geof:sfWithin(?w, "{box}"^^geo:wktLiteral))
            }} GROUP BY ?class
            """,
        ),
        BenchQuery(
            "AG2", "aggregation", "mean CORINE polygon area",
            PREFIXES + """
            SELECT (AVG(geof:area(?w)) AS ?mean) WHERE {
              ?c a geod:Corine ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
            }
            """,
        ),
    ]
    return queries


def macro_queries() -> List[BenchQuery]:
    """The macro scenarios: reverse geocoding, map browsing, rapid
    mapping — end-user workloads composed of several operations."""
    minx, miny, maxx, maxy = DEFAULT_REGION
    px = minx + (maxx - minx) * 0.4
    py = miny + (maxy - miny) * 0.6
    browse_box = (
        f"POLYGON (({px} {py}, {px + 1.0} {py}, {px + 1.0} {py + 1.0}, "
        f"{px} {py + 1.0}, {px} {py}))"
    )
    return [
        BenchQuery(
            "RG1", "reverse-geocoding",
            "nearest road to a position",
            PREFIXES + f"""
            SELECT ?r ?d WHERE {{
              ?r a geod:Roads ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
              BIND(geof:distance(?w,
                "POINT ({px} {py})"^^geo:wktLiteral) AS ?d)
            }} ORDER BY ?d LIMIT 3
            """,
        ),
        BenchQuery(
            "MSB1", "map-browsing",
            "search POIs by name prefix, browse surroundings",
            PREFIXES + f"""
            SELECT ?p ?name ?w WHERE {{
              ?p a geod:Pois ; geod:hasName ?name ;
                 geo:hasGeometry ?g . ?g geo:asWKT ?w .
              FILTER(STRSTARTS(?name, "a") ||
                     geof:sfWithin(?w, "{browse_box}"^^geo:wktLiteral))
            }}
            """,
        ),
        BenchQuery(
            "RM1", "rapid-mapping",
            "hotspots per admin area with land-cover context",
            PREFIXES + f"""
            SELECT ?a (COUNT(?h) AS ?fires) WHERE {{
              ?a a geod:Gag ; geo:hasGeometry ?ga . ?ga geo:asWKT ?wa .
              ?h a geod:Hotspots ; geo:hasGeometry ?gh .
              ?gh geo:asWKT ?wh .
              FILTER(geof:sfWithin(?wh, ?wa))
            }} GROUP BY ?a
            """,
        ),
    ]


def queries_by_key() -> Dict[str, BenchQuery]:
    return {q.key: q for q in micro_queries() + macro_queries()}
