"""Geographica benchmark: workload, query set, multi-engine harness."""

from .harness import BenchmarkReport, Measurement, run_benchmark
from .queries import BenchQuery, macro_queries, micro_queries, queries_by_key
from .workload import (
    DATASET_SHAPES,
    GEOGRAPHICA,
    Workload,
    generate_workload,
    load_ontop,
    load_strabon,
)

__all__ = [
    "BenchQuery",
    "BenchmarkReport",
    "DATASET_SHAPES",
    "GEOGRAPHICA",
    "Measurement",
    "macro_queries",
    "Workload",
    "generate_workload",
    "load_ontop",
    "load_strabon",
    "micro_queries",
    "queries_by_key",
    "run_benchmark",
]
