"""Bridges from pre-existing stats blocks into the metrics registry.

``ResilienceStats``, ``GovernanceStats`` and the ``DapCache`` counters
predate the registry and keep their own state; rather than rewriting
their call sites, these helpers register scrape-time *collectors* that
rebuild metric families from the live objects on every ``expose()``.

Sample layout for labeled stats trees: every block in the tree emits
one sample carrying its **own** counts (not totals) under its
accumulated labels, so a Prometheus-style ``sum`` over the family
equals the tree total without double counting. Blocks whose labels
lack a family label get it as ``""``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .metrics import MetricFamily, MetricsRegistry

__all__ = [
    "register_resilience",
    "register_governance",
    "register_dap_cache",
]

#: Upper bounds of the governance headroom histogram (tenths of the
#: deadline still unused at completion; matches HEADROOM_BUCKETS=10).
HEADROOM_BOUNDS = tuple((i + 1) / 10 for i in range(10))


def _counter_families(stats, namespace: str,
                      base_labels: Optional[Dict[str, str]],
                      help_prefix: str) -> List[MetricFamily]:
    rows = list(stats.walk(base_labels))
    labelnames = sorted({k for labels, _ in rows for k in labels})
    families = []
    for field in stats.FIELDS:
        family = MetricFamily(
            f"{namespace}_{field}_total", "counter",
            help=f"{help_prefix}: {field.replace('_', ' ')}",
            labelnames=labelnames,
        )
        for labels, block in rows:
            value = block.own_as_dict()[field]
            full = {name: labels.get(name, "") for name in labelnames}
            family.labels(**full).inc(value)
        families.append(family)
    return families


def register_resilience(registry: MetricsRegistry, stats,
                        namespace: str = "repro_resilience",
                        **labels: str) -> None:
    """Expose a :class:`ResilienceStats` tree as counter families."""
    registry.register_collector(
        lambda: _counter_families(
            stats, namespace, labels, "Resilience layer"))


def _governance_families(stats, namespace: str,
                         base_labels: Optional[Dict[str, str]]
                         ) -> Iterable[MetricFamily]:
    families = _counter_families(
        stats, namespace, base_labels, "Governance layer")
    labelnames = sorted(base_labels or {})
    histogram = MetricFamily(
        f"{namespace}_headroom", "histogram",
        help="Governance layer: fraction of deadline unused at "
             "completion",
        labelnames=labelnames, buckets=HEADROOM_BOUNDS,
    )
    combined = stats.combined_headroom_histogram()
    child = histogram.labels(**dict(base_labels or {}))
    child.load(combined, sum(combined), stats.combined_headroom_sum())
    families.append(histogram)
    return families


def register_governance(registry: MetricsRegistry, stats,
                        namespace: str = "repro_governance",
                        **labels: str) -> None:
    """Expose a :class:`GovernanceStats` tree: counters + the deadline
    headroom histogram."""
    registry.register_collector(
        lambda: _governance_families(stats, namespace, labels))


def _cache_families(cache, namespace: str,
                    base_labels: Dict[str, str]
                    ) -> Iterable[MetricFamily]:
    labelnames = sorted(base_labels)
    families = []
    for field in ("hits", "misses", "stale_hits", "evictions"):
        family = MetricFamily(
            f"{namespace}_{field}_total", "counter",
            help=f"DAP cache: {field.replace('_', ' ')}",
            labelnames=labelnames,
        )
        family.labels(**base_labels).inc(getattr(cache, field))
        families.append(family)
    entries = MetricFamily(
        f"{namespace}_entries", "gauge",
        help="DAP cache: live entries", labelnames=labelnames,
    )
    entries.labels(**base_labels).set(len(cache))
    families.append(entries)
    return families


def register_dap_cache(registry: MetricsRegistry, cache,
                       namespace: str = "repro_dap_cache",
                       **labels: str) -> None:
    """Expose a :class:`DapCache`'s hit/miss/stale/eviction counters
    (including the stale-served-is-not-a-hit accounting) and size."""
    registry.register_collector(
        lambda: _cache_families(cache, namespace, dict(labels)))
