"""Bridges from pre-existing stats blocks into the metrics registry.

``ResilienceStats``, ``GovernanceStats`` and the ``DapCache`` counters
predate the registry and keep their own state; rather than rewriting
their call sites, these helpers register scrape-time *collectors* that
rebuild metric families from the live objects on every ``expose()``.

Sample layout for labeled stats trees: every block in the tree emits
one sample carrying its **own** counts (not totals) under its
accumulated labels, so a Prometheus-style ``sum`` over the family
equals the tree total without double counting. Blocks whose labels
lack a family label get it as ``""``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .metrics import MetricFamily, MetricsRegistry

__all__ = [
    "register_resilience",
    "register_governance",
    "register_dap_cache",
    "register_endpoint_pool",
    "register_stats_store",
    "register_slo",
]

#: Upper bounds of the governance headroom histogram (tenths of the
#: deadline still unused at completion; matches HEADROOM_BUCKETS=10).
HEADROOM_BOUNDS = tuple((i + 1) / 10 for i in range(10))


def _counter_families(stats, namespace: str,
                      base_labels: Optional[Dict[str, str]],
                      help_prefix: str) -> List[MetricFamily]:
    rows = list(stats.walk(base_labels))
    labelnames = sorted({k for labels, _ in rows for k in labels})
    families = []
    for field in stats.FIELDS:
        family = MetricFamily(
            f"{namespace}_{field}_total", "counter",
            help=f"{help_prefix}: {field.replace('_', ' ')}",
            labelnames=labelnames,
        )
        for labels, block in rows:
            value = block.own_as_dict()[field]
            full = {name: labels.get(name, "") for name in labelnames}
            family.labels(**full).inc(value)
        families.append(family)
    return families


def register_resilience(registry: MetricsRegistry, stats,
                        namespace: str = "repro_resilience",
                        **labels: str) -> None:
    """Expose a :class:`ResilienceStats` tree as counter families."""
    registry.register_collector(
        lambda: _counter_families(
            stats, namespace, labels, "Resilience layer"))


def _governance_families(stats, namespace: str,
                         base_labels: Optional[Dict[str, str]]
                         ) -> Iterable[MetricFamily]:
    families = _counter_families(
        stats, namespace, base_labels, "Governance layer")
    labelnames = sorted(base_labels or {})
    histogram = MetricFamily(
        f"{namespace}_headroom", "histogram",
        help="Governance layer: fraction of deadline unused at "
             "completion",
        labelnames=labelnames, buckets=HEADROOM_BOUNDS,
    )
    combined = stats.combined_headroom_histogram()
    child = histogram.labels(**dict(base_labels or {}))
    child.load(combined, sum(combined), stats.combined_headroom_sum())
    families.append(histogram)
    return families


def register_governance(registry: MetricsRegistry, stats,
                        namespace: str = "repro_governance",
                        **labels: str) -> None:
    """Expose a :class:`GovernanceStats` tree: counters + the deadline
    headroom histogram."""
    registry.register_collector(
        lambda: _governance_families(stats, namespace, labels))


def _cache_families(cache, namespace: str,
                    base_labels: Dict[str, str]
                    ) -> Iterable[MetricFamily]:
    labelnames = sorted(base_labels)
    families = []
    for field in ("hits", "misses", "stale_hits", "evictions"):
        family = MetricFamily(
            f"{namespace}_{field}_total", "counter",
            help=f"DAP cache: {field.replace('_', ' ')}",
            labelnames=labelnames,
        )
        family.labels(**base_labels).inc(getattr(cache, field))
        families.append(family)
    entries = MetricFamily(
        f"{namespace}_entries", "gauge",
        help="DAP cache: live entries", labelnames=labelnames,
    )
    entries.labels(**base_labels).set(len(cache))
    families.append(entries)
    return families


def register_dap_cache(registry: MetricsRegistry, cache,
                       namespace: str = "repro_dap_cache",
                       **labels: str) -> None:
    """Expose a :class:`DapCache`'s hit/miss/stale/eviction counters
    (including the stale-served-is-not-a-hit accounting) and size."""
    registry.register_collector(
        lambda: _cache_families(cache, namespace, dict(labels)))


def _pool_families(pool, namespace: str,
                   base_labels: Dict[str, str]
                   ) -> Iterable[MetricFamily]:
    pool_labels = dict(base_labels, pool=pool.name)
    labelnames = sorted(pool_labels)
    families = []
    for field, value in sorted(pool.counters.items()):
        family = MetricFamily(
            f"{namespace}_{field}_total", "counter",
            help=f"Endpoint pool: {field.replace('_', ' ')}",
            labelnames=labelnames,
        )
        family.labels(**pool_labels).inc(value)
        families.append(family)
    replica_labels = sorted(pool_labels) + ["replica"]
    active = MetricFamily(
        f"{namespace}_replica_active", "gauge",
        help="Endpoint pool: 1 when the replica is active, 0 ejected",
        labelnames=replica_labels,
    )
    error_rate = MetricFamily(
        f"{namespace}_replica_error_rate", "gauge",
        help="Endpoint pool: rolling-window error rate per replica",
        labelnames=replica_labels,
    )
    report = pool.report()
    for name, info in report["replicas"].items():
        labels = dict(pool_labels, replica=name)
        active.labels(**labels).set(
            1 if info["state"] == "active" else 0)
        error_rate.labels(**labels).set(info["error_rate"])
    families.extend([active, error_rate])
    return families


def register_endpoint_pool(registry: MetricsRegistry, pool,
                           namespace: str = "repro_endpoint_pool",
                           **labels: str) -> None:
    """Expose an :class:`~repro.resilience.EndpointPool`'s dispatch /
    failover / hedge / ejection counters plus per-replica health gauges
    (active flag, rolling error rate)."""
    registry.register_collector(
        lambda: _pool_families(pool, namespace, dict(labels)))


def _stats_store_families(store, namespace: str,
                          base_labels: Dict[str, str],
                          plan_cache) -> Iterable[MetricFamily]:
    labelnames = sorted(base_labels)
    stats = store.stats()
    families = []
    version = MetricFamily(
        f"{namespace}_version", "gauge",
        help="Stats store: feedback version (bumps on drift)",
        labelnames=labelnames,
    )
    version.labels(**base_labels).set(stats["stats_version"])
    signatures = MetricFamily(
        f"{namespace}_signatures", "gauge",
        help="Stats store: plan signatures with feedback records",
        labelnames=labelnames,
    )
    signatures.labels(**base_labels).set(stats["signatures"])
    frozen = MetricFamily(
        f"{namespace}_frozen", "gauge",
        help="Stats store: 1 when frozen for replay, else 0",
        labelnames=labelnames,
    )
    frozen.labels(**base_labels).set(1 if stats["frozen"] else 0)
    families.extend([version, signatures, frozen])
    if plan_cache is not None:
        invalidations = MetricFamily(
            f"{namespace}_plan_invalidations_total", "counter",
            help="Stats store: plan-cache entries invalidated by "
                 "stats-version bumps",
            labelnames=labelnames,
        )
        invalidations.labels(**base_labels).inc(
            plan_cache.stats_invalidations)
        families.append(invalidations)
    return families


def register_stats_store(registry: MetricsRegistry, store,
                         namespace: str = "repro_stats_store",
                         plan_cache=None, **labels: str) -> None:
    """Expose a :class:`~repro.sparql.stats.StatsStore`'s version,
    signature count and frozen flag — plus the plan cache's
    stats-version invalidation counter when one is passed."""
    registry.register_collector(
        lambda: _stats_store_families(store, namespace, dict(labels),
                                      plan_cache))


def register_slo(registry: MetricsRegistry, engine) -> None:
    """Expose an :class:`~repro.observability.slo.SLOEngine`'s
    ``slo_*`` families (event counts, burn-rate gauges, alert states
    and fire/clear edge counters) at scrape time."""
    registry.register_collector(engine.metric_families)
