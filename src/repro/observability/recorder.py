"""Flight recorder: an always-on ring of recent events plus incident
bundles snapshotted at the moment something goes wrong.

The recorder answers "what was the system doing in the 30 virtual
seconds before this tripped?". The service, scheduler, chaos harness
and endpoint pools ``record()`` small primitive-valued entries into a
bounded ring — request completions, metric deltas, dispatch
decisions, fault-window edges, pool ejections/probes, SLO alert
edges. When a trigger fires (an :class:`InvariantChecker` violation,
an SLO page-level burn alert, or a breaker/ejection event),
``snapshot()`` freezes the ring into an *incident bundle*: a plain
dict with a reason, a timestamp and a copy of every entry, serialized
to byte-stable JSON. The chaos harness asserts same-seed bundles are
byte-identical across runs and worker counts.

Bundles are capped (``max_incidents``) so a pathological run cannot
grow the report without bound — further triggers only bump a
``suppressed`` counter. The module reads no ambient time (the
determinism lint bans ``time.*``/``random.*`` here): timestamps come
from the injected clock or the caller.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = ["FlightRecorder"]

# ring entries carry only JSON primitives so bundles serialize
# byte-stably without a custom encoder
_PRIMITIVES = (str, int, float, bool, type(None))


class FlightRecorder:
    """Bounded event ring + byte-stable incident bundles."""

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = 512, max_incidents: int = 16):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_incidents <= 0:
            raise ValueError(
                f"max_incidents must be positive, got {max_incidents}")
        self.clock = clock
        self.capacity = capacity
        self.max_incidents = max_incidents
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self.incidents: List[Dict[str, object]] = []
        self._incident_jsons: List[str] = []
        self.suppressed = 0

    def _now(self, at_s: Optional[float]) -> float:
        if at_s is not None:
            return at_s
        if self.clock is None:
            raise ValueError(
                "FlightRecorder has no clock; pass at_s explicitly")
        return self.clock()

    # -- recording ------------------------------------------------------

    def record(self, kind: str, at_s: Optional[float] = None,
               **data: object) -> Dict[str, object]:
        """Append one ``kind`` entry; extra kwargs must be primitives."""
        for key, value in data.items():
            if key == "seq":
                # would silently overwrite the ring's own sequence
                # number ("at_s"/"kind" collide with named parameters
                # and fail in the call itself)
                raise TypeError(
                    "recorder entry field 'seq' is reserved; "
                    "use e.g. request_seq")
            if not isinstance(value, _PRIMITIVES):
                raise TypeError(
                    f"recorder entry field {key!r} must be a JSON "
                    f"primitive, got {type(value).__name__}")
        now = self._now(at_s)  # resolve first: a failed record
        self._seq += 1         # must not consume a sequence number
        entry: Dict[str, object] = {
            "seq": self._seq,
            "at_s": round(now, 9),
            "kind": kind,
        }
        for key in sorted(data):
            entry[key] = data[key]
        self._ring.append(entry)
        return entry

    def entries(self) -> List[Dict[str, object]]:
        return [dict(entry) for entry in self._ring]

    def __len__(self) -> int:
        return len(self._ring)

    # -- incidents ------------------------------------------------------

    def snapshot(self, reason: str,
                 at_s: Optional[float] = None
                 ) -> Optional[Dict[str, object]]:
        """Freeze the ring into an incident bundle (None if capped)."""
        if len(self.incidents) >= self.max_incidents:
            self.suppressed += 1
            return None
        bundle: Dict[str, object] = {
            "incident": len(self.incidents) + 1,
            "reason": reason,
            "at_s": round(self._now(at_s), 9),
            "entries_recorded": self._seq,
            "entries": self.entries(),
        }
        self.incidents.append(bundle)
        # serialize once at freeze time: bundles are immutable, and
        # reports/digests may render them repeatedly. Compact
        # separators keep this on the C encoder — an incident under
        # load must not stall the request path on pretty-printing.
        self._incident_jsons.append(
            json.dumps(bundle, sort_keys=True,
                       separators=(",", ":")) + "\n")
        return bundle

    def incident_json(self, index: int = -1) -> str:
        """Byte-stable JSON of one incident bundle."""
        return self._incident_jsons[index]

    def incidents_sha256(self) -> str:
        """One digest over every bundle, for compact report embedding."""
        digest = hashlib.sha256()
        for text in self._incident_jsons:
            digest.update(text.encode("utf-8"))
        return digest.hexdigest()

    def summary(self) -> Dict[str, object]:
        return {
            "entries_recorded": self._seq,
            "ring_size": len(self._ring),
            "capacity": self.capacity,
            "incidents": len(self.incidents),
            "suppressed": self.suppressed,
            "reasons": [b["reason"] for b in self.incidents],
            "bundles_sha256": self.incidents_sha256(),
        }
