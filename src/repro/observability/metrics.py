"""Metrics registry: counters, gauges, histograms with labeled families.

A :class:`MetricsRegistry` owns metric *families* (one per metric name);
each family owns labeled *children* (one per label-value combination).
The registry renders a Prometheus-style text exposition (`expose()`)
and a JSON export (`to_json()`), and accepts *collectors* — callables
that build families at scrape time — which is how the pre-existing
``ResilienceStats``/``GovernanceStats`` blocks and ``DapCache`` counters
are bridged into the registry without changing their public APIs (see
:mod:`repro.observability.bridge`).

Everything here is deterministic: families and samples render in sorted
order, and :func:`parse_exposition` both validates the format (metric
name / label name grammar, histogram bucket monotonicity) and
re-renders byte-identically, so ``parse(expose()).render() ==
expose()`` round-trips.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsError",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "Exposition",
    "parse_exposition",
    "exposition_from_dict",
    "histogram_quantile",
    "EmptyQuantile",
    "EMPTY_QUANTILE",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricsError(ValueError):
    """Invalid metric name/labels or malformed exposition text."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(f"invalid metric name: {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label) or label == "le":
            raise MetricsError(f"invalid label name: {label!r}")
    if len(set(names)) != len(names):
        raise MetricsError(f"duplicate label names: {names!r}")
    return names


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\"", r"\"")
            .replace("\n", r"\n"))


def _unescape(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", "\"": "\""}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _fmt_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _fmt_value(bound)


def _sample_line(name: str, labels: Dict[str, str], value: float) -> str:
    if labels:
        body = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()
        )
        return f"{name}{{{body}}} {_fmt_value(value)}"
    return f"{name} {_fmt_value(value)}"


# ---------------------------------------------------------------------------
# Children (one per label-value combination)
# ---------------------------------------------------------------------------

class Counter:
    """Monotonically increasing count."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]):
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise MetricsError("counters can only increase")
        self.value += n


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: Dict[str, str]):
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Fixed-bound bucket histogram with running sum and count."""

    __slots__ = ("labels", "buckets", "bucket_counts", "sum", "count")

    def __init__(self, labels: Dict[str, str],
                 buckets: Tuple[float, ...]):
        self.labels = labels
        self.buckets = buckets
        self.bucket_counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        # counts are stored per-bucket (non-cumulative); samples()
        # cumulates at render time
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break

    def load(self, bucket_counts: Sequence[int], total: int,
             total_sum: float) -> None:
        """Overwrite state from externally-kept counts (bridge use).

        *bucket_counts* are per-bucket (non-cumulative) counts aligned
        with this histogram's bounds.
        """
        if len(bucket_counts) != len(self.buckets):
            raise MetricsError("bucket count mismatch")
        self.bucket_counts = list(bucket_counts)
        self.count = total
        self.sum = total_sum


class EmptyQuantile(float):
    """Typed sentinel for "this histogram has no observations".

    A NaN-valued float singleton: falsy, unequal to everything
    (including itself, per NaN semantics), and loud in reprs — so an
    unguarded caller that arithmetics with it poisons its result
    instead of silently reporting a plausible-looking 0.0 latency.
    """

    _instance: Optional["EmptyQuantile"] = None

    def __new__(cls) -> "EmptyQuantile":
        if cls._instance is None:
            cls._instance = float.__new__(cls, float("nan"))
        return cls._instance

    def __repr__(self) -> str:
        return "EMPTY_QUANTILE"

    def __bool__(self) -> bool:
        return False


EMPTY_QUANTILE = EmptyQuantile()


def histogram_quantile(hist: "Histogram", q: float) -> float:
    """A deterministic upper-bound quantile estimate from bucket counts.

    Returns the smallest bucket upper bound whose cumulative count
    reaches ``ceil(q * count)`` — the conservative (never optimistic)
    read of "q of the observations were at most this much". Values in
    the overflow (+Inf) region clamp to the largest finite bound; a
    histogram with no observations (or no buckets) reports the typed
    :data:`EMPTY_QUANTILE` sentinel rather than an arbitrary bound, so
    callers must decide what "no data" means for them. Because the
    answer depends only on the configured bounds and integer counts,
    two identical workloads report byte-identical percentiles — no
    interpolation, no float drift.
    """
    if not 0.0 < q <= 1.0:
        raise MetricsError(f"quantile must be in (0, 1]: {q!r}")
    if hist.count <= 0 or not hist.buckets:
        return EMPTY_QUANTILE
    # ceil without floats drifting: the rank of the target observation
    rank = -(-hist.count * q // 1)
    cumulative = 0
    for bound, n in zip(hist.buckets, hist.bucket_counts):
        cumulative += n
        if cumulative >= rank:
            return bound
    return hist.buckets[-1]


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------

_KINDS = ("counter", "gauge", "histogram")
_CHILD_TYPES = {"counter": Counter, "gauge": Gauge}


class MetricFamily:
    """All children of one metric name; unlabeled families proxy their
    single implicit child, so ``registry.counter("x").inc()`` works."""

    def __init__(self, name: str, kind: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        if kind not in _KINDS:
            raise MetricsError(f"unknown metric kind: {kind!r}")
        self.name = _check_name(name)
        self.kind = kind
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        if kind == "histogram":
            bounds = tuple(float(b) for b in buckets)
            if not bounds or any(
                    b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                raise MetricsError(
                    f"histogram buckets must be strictly increasing: "
                    f"{buckets!r}")
            if bounds[-1] == float("inf"):
                bounds = bounds[:-1]
            self.buckets = bounds
        else:
            self.buckets = ()
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labelvalues: str):
        """The child for this label-value combination (created lazily)."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected labels {self.labelnames!r}, "
                f"got {tuple(sorted(labelvalues))!r}")
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        child = self._children.get(key)
        if child is None:
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                child = Histogram(labels, self.buckets)
            else:
                child = _CHILD_TYPES[self.kind](labels)
            self._children[key] = child
        return child

    # unlabeled convenience: proxy the () child
    def inc(self, n: float = 1.0) -> None:
        self.labels().inc(n)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def dec(self, n: float = 1.0) -> None:
        self.labels().dec(n)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value

    def children(self) -> List[object]:
        return [self._children[k] for k in sorted(self._children)]

    def samples(self) -> List[Tuple[str, Dict[str, str], float]]:
        """(sample_name, labels, value) triples in deterministic order."""
        out: List[Tuple[str, Dict[str, str], float]] = []
        for child in self.children():
            if self.kind == "histogram":
                cumulative = 0
                for bound, n in zip(child.buckets, child.bucket_counts):
                    cumulative += n
                    labels = dict(child.labels)
                    labels["le"] = _fmt_le(bound)
                    out.append((self.name + "_bucket", labels,
                                float(cumulative)))
                labels = dict(child.labels)
                labels["le"] = "+Inf"
                out.append((self.name + "_bucket", labels,
                            float(child.count)))
                out.append((self.name + "_sum", dict(child.labels),
                            float(child.sum)))
                out.append((self.name + "_count", dict(child.labels),
                            float(child.count)))
            else:
                out.append((self.name, dict(child.labels),
                            float(child.value)))
        return out

    def render(self) -> str:
        lines = []
        if self.help:
            escaped = self.help.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {self.name} {escaped}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for sample_name, labels, value in self.samples():
            lines.append(_sample_line(sample_name, labels, value))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class MetricsRegistry:
    """Owns metric families and scrape-time collectors."""

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], Iterable[MetricFamily]]] = []

    def _register(self, name: str, kind: str, help: str,
                  labelnames: Sequence[str],
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if (existing.kind != kind
                    or existing.labelnames != tuple(labelnames)):
                raise MetricsError(
                    f"metric {name!r} re-registered with a different "
                    f"kind or labelnames")
            return existing
        family = MetricFamily(name, kind, help, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> MetricFamily:
        return self._register(name, "histogram", help, labelnames,
                              buckets)

    def register_collector(
            self, fn: Callable[[], Iterable[MetricFamily]]) -> None:
        """*fn* is called at scrape time and yields fresh families; used
        to bridge stats objects that keep their own counters."""
        self._collectors.append(fn)

    def collect(self) -> List[MetricFamily]:
        families: Dict[str, MetricFamily] = dict(self._families)
        for collector in self._collectors:
            for family in collector():
                if family.name in families:
                    raise MetricsError(
                        f"duplicate metric family: {family.name!r}")
                families[family.name] = family
        return [families[name] for name in sorted(families)]

    def expose(self) -> str:
        """Prometheus-style text exposition (deterministic ordering)."""
        blocks = [family.render() for family in self.collect()]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def to_json(self) -> Dict[str, object]:
        return {
            "families": [
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": [
                        {"name": name, "labels": labels, "value": value}
                        for name, labels, value in family.samples()
                    ],
                }
                for family in self.collect()
            ],
        }

    def dump_json(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, indent=2) + "\n"

    def collect_to_dict(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict scrape keyed by family name, in collect order.

        Round-trips through :func:`exposition_from_dict`::

            exposition_from_dict(r.collect_to_dict()).render() == r.expose()
        """
        out: Dict[str, Dict[str, object]] = {}
        for family in self.collect():
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": [
                    [name, dict(labels), value]
                    for name, labels, value in family.samples()
                ],
            }
        return out


# ---------------------------------------------------------------------------
# Parser (validation + byte-identical re-render)
# ---------------------------------------------------------------------------

class ParsedFamily:
    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help: str = ""):
        self.name = name
        self.kind = kind
        self.help = help
        # (sample_name, labels-dict, value) in input order
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def render(self) -> str:
        lines = []
        if self.help:
            escaped = self.help.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {self.name} {escaped}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for sample_name, labels, value in self.samples:
            lines.append(_sample_line(sample_name, labels, value))
        return "\n".join(lines)


class Exposition:
    """Parsed exposition text: families in input order, validated."""

    def __init__(self, families: List[ParsedFamily]):
        self.families = families

    def family(self, name: str) -> ParsedFamily:
        for fam in self.families:
            if fam.name == name:
                return fam
        raise KeyError(name)

    def render(self) -> str:
        blocks = [fam.render() for fam in self.families]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def validate(self) -> None:
        """Check name/label grammar and histogram bucket monotonicity."""
        for fam in self.families:
            _check_name(fam.name)
            for sample_name, labels, _ in fam.samples:
                _check_name(sample_name)
                for label in labels:
                    if not _LABEL_RE.match(label):
                        raise MetricsError(
                            f"invalid label name: {label!r}")
            if fam.kind == "histogram":
                self._validate_histogram(fam)

    @staticmethod
    def _validate_histogram(fam: ParsedFamily) -> None:
        series: Dict[Tuple[Tuple[str, str], ...],
                     Dict[str, object]] = {}
        for sample_name, labels, value in fam.samples:
            base = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            entry = series.setdefault(
                base, {"buckets": [], "count": None})
            if sample_name == fam.name + "_bucket":
                le = labels.get("le")
                if le is None:
                    raise MetricsError(
                        f"{fam.name}: bucket sample without le label")
                bound = float("inf") if le == "+Inf" else float(le)
                entry["buckets"].append((bound, value))
            elif sample_name == fam.name + "_count":
                entry["count"] = value
        for base, entry in series.items():
            buckets = entry["buckets"]
            if not buckets:
                raise MetricsError(
                    f"{fam.name}: histogram series without buckets")
            bounds = [b for b, _ in buckets]
            if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise MetricsError(
                    f"{fam.name}: bucket bounds not increasing")
            values = [v for _, v in buckets]
            if any(v2 < v1 for v1, v2 in zip(values, values[1:])):
                raise MetricsError(
                    f"{fam.name}: bucket counts not monotonic")
            if bounds[-1] != float("inf"):
                raise MetricsError(f"{fam.name}: missing +Inf bucket")
            if entry["count"] is not None \
                    and values[-1] != entry["count"]:
                raise MetricsError(
                    f"{fam.name}: +Inf bucket != _count")


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq]
        if not _LABEL_RE.match(name) and name != "le":
            raise MetricsError(f"invalid label name: {name!r}")
        if eq + 1 >= len(text) or text[eq + 1] != "\"":
            raise MetricsError(f"expected quoted label value in {text!r}")
        j = eq + 2
        raw = []
        while j < len(text):
            ch = text[j]
            if ch == "\\":
                raw.append(text[j:j + 2])
                j += 2
                continue
            if ch == "\"":
                break
            raw.append(ch)
            j += 1
        else:
            raise MetricsError(f"unterminated label value in {text!r}")
        labels[name] = _unescape("".join(raw))
        i = j + 1
        if i < len(text):
            if text[i] != ",":
                raise MetricsError(f"expected ',' in labels: {text!r}")
            i += 1
    return labels


def _family_for_sample(families: Dict[str, ParsedFamily],
                       sample_name: str) -> Optional[ParsedFamily]:
    fam = families.get(sample_name)
    if fam is not None:
        return fam
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if sample_name.endswith(suffix):
            fam = families.get(sample_name[:-len(suffix)])
            if fam is not None:
                return fam
    return None


def exposition_from_dict(data: Dict[str, Dict[str, object]]) -> Exposition:
    """Rebuild a validated :class:`Exposition` from
    :meth:`MetricsRegistry.collect_to_dict` output (dict insertion
    order is preserved, so the rebuilt text is byte-identical to the
    ``expose()`` the dict came from)."""
    families: List[ParsedFamily] = []
    for name, block in data.items():
        fam = ParsedFamily(_check_name(str(name)), str(block["type"]),
                           str(block.get("help", "")))
        if fam.kind not in _KINDS:
            raise MetricsError(f"unknown metric type {fam.kind!r}")
        for sample in block.get("samples", []):
            sample_name, labels, value = sample
            fam.samples.append(
                (str(sample_name),
                 {str(k): str(v) for k, v in dict(labels).items()},
                 float(value)))
        families.append(fam)
    exposition = Exposition(families)
    exposition.validate()
    return exposition


def parse_exposition(text: str) -> Exposition:
    """Parse + validate exposition text; ``.render()`` round-trips."""
    families: Dict[str, ParsedFamily] = {}
    order: List[ParsedFamily] = []
    pending_help: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            pending_help[name] = (help_text.replace(r"\n", "\n")
                                  .replace(r"\\", "\\"))
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if kind not in _KINDS:
                raise MetricsError(
                    f"line {lineno}: unknown metric type {kind!r}")
            if name in families:
                raise MetricsError(
                    f"line {lineno}: duplicate TYPE for {name!r}")
            fam = ParsedFamily(_check_name(name), kind,
                               pending_help.pop(name, ""))
            families[name] = fam
            order.append(fam)
            continue
        if line.startswith("#"):
            continue
        # sample line
        if "{" in line:
            brace = line.index("{")
            sample_name = line[:brace]
            close = line.rindex("}")
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
            value_text = value_text.strip()
        _check_name(sample_name)
        try:
            value = float(value_text)
        except ValueError:
            raise MetricsError(
                f"line {lineno}: bad sample value {value_text!r}")
        fam = _family_for_sample(families, sample_name)
        if fam is None:
            raise MetricsError(
                f"line {lineno}: sample {sample_name!r} has no "
                f"preceding TYPE declaration")
        fam.samples.append((sample_name, labels, value))
    exposition = Exposition(order)
    exposition.validate()
    return exposition
