"""Declarative SLOs with multi-window burn-rate alerting on virtual time.

The service layers (PR 6-8) answer "what happened" — this module
answers the operator question "is tenant X still within its
objective, and should someone be paged about it?".

An :class:`SLOSpec` declares one objective for one *scope* (a tenant,
an endpoint pool, or the whole service):

- ``latency``      — fraction of completed requests faster than
  ``threshold_s`` must be >= ``target`` (e.g. p95 <= 250 ms).
- ``availability`` — fraction of requests that complete un-degraded
  must be >= ``target``.
- ``staleness``    — fraction of completed requests served stale must
  stay <= ``target`` (a freshness bound).
- ``shed_rate``    — fraction of requests shed by admission control
  must stay <= ``target`` (a shedding ceiling).

Every objective reduces to a good/bad event stream with an *error
budget* (``1 - target`` for latency/availability, ``target`` itself
for the ceiling-style objectives). The :class:`SLOEngine` keeps three
sliding windows per spec (fast/mid/slow — 5 m / 1 h / 6 h by default,
virtual seconds in simulation) and evaluates Google-SRE multi-window
burn rates on every observation:

- **page**   fires when both the fast and mid window burn >=
  ``page_burn`` (default 14.4 — budget exhausted in ~10 h);
- **ticket** fires when both the mid and slow window burn >=
  ``ticket_burn`` (default 3.0).

Alerts are hysteretic: an active alert clears only when both of its
windows drop below ``threshold * clear_ratio``, so a burn hovering at
the threshold does not flap. Every fire/clear edge is a typed
:class:`SLOAlert` appended to ``engine.transitions`` and fanned out to
``engine.on_alert`` subscribers (the flight recorder snapshots on
page-level fires).

Windows are amortized O(1): each is a deque of ``(at_s, bad)`` pairs
with running bad/total counters, evicted from the left as time
advances — no rescans, which is what keeps the engine inside the <5 %
overhead gate of ``bench_slo_overhead.py``.

Determinism: the module never reads ambient time or randomness (the
lint bans ``time.*``/``random.*`` outright); timestamps come from the
caller or an injected clock, so same-seed runs produce byte-identical
:class:`SLOReport` JSON.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .metrics import MetricFamily

__all__ = [
    "OBJECTIVES",
    "SLOAlert",
    "SLOEngine",
    "SLOReport",
    "SLOSpec",
    "SLOWindows",
]

OBJECTIVES = ("availability", "latency", "shed_rate", "staleness")

_SEVERITIES = ("page", "ticket")


@dataclass(frozen=True)
class SLOWindows:
    """Sliding-window spans (seconds) for burn-rate evaluation.

    Defaults are the classic SRE trio — 5 minutes / 1 hour / 6 hours.
    Simulated workloads override them with sub-second *virtual* spans
    (a 200 ms virtual run never fills a 5-minute window).
    """

    fast_s: float = 300.0
    mid_s: float = 3600.0
    slow_s: float = 21600.0

    def __post_init__(self) -> None:
        if not (0 < self.fast_s < self.mid_s < self.slow_s):
            raise ValueError(
                "SLO windows must satisfy 0 < fast < mid < slow, got "
                f"{self.fast_s}/{self.mid_s}/{self.slow_s}")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective for one scope.

    ``scope`` is a free-form routing key — the conventions in this
    repo are ``tenant:<name>``, ``pool:<iri>`` and ``"service"``.
    """

    name: str
    scope: str
    objective: str
    target: float
    threshold_s: Optional[float] = None
    windows: SLOWindows = field(default_factory=SLOWindows)
    page_burn: float = 14.4
    ticket_burn: float = 3.0
    clear_ratio: float = 0.9

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown SLO objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1), got {self.target}")
        if self.objective == "latency":
            if self.threshold_s is None or self.threshold_s <= 0:
                raise ValueError(
                    "latency SLOs need a positive threshold_s")
        elif self.threshold_s is not None:
            raise ValueError(
                f"threshold_s only applies to latency SLOs "
                f"(objective={self.objective!r})")
        if not 0.0 < self.clear_ratio <= 1.0:
            raise ValueError(
                f"clear_ratio must be in (0, 1], got {self.clear_ratio}")
        if self.page_burn <= 0 or self.ticket_burn <= 0:
            raise ValueError("burn thresholds must be positive")

    @property
    def budget(self) -> float:
        """Error budget: the bad-event ratio that exactly meets target."""
        if self.objective in ("latency", "availability"):
            return 1.0 - self.target
        return self.target  # ceiling-style: staleness, shed_rate

    def classify(self, outcome: str, latency_s: Optional[float],
                 degraded: bool, stale: bool) -> Optional[bool]:
        """Map one request event to None (irrelevant) / good / bad."""
        if self.objective == "availability":
            return outcome != "completed" or degraded
        if self.objective == "shed_rate":
            return outcome.startswith("shed")
        if outcome != "completed":
            return None  # latency/staleness judge completed requests only
        if self.objective == "staleness":
            return stale
        if latency_s is None:
            return None
        return latency_s > self.threshold_s

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "scope": self.scope,
            "objective": self.objective,
            "target": self.target,
            "budget": round(self.budget, 9),
            "windows_s": [self.windows.fast_s, self.windows.mid_s,
                          self.windows.slow_s],
            "page_burn": self.page_burn,
            "ticket_burn": self.ticket_burn,
        }
        if self.threshold_s is not None:
            out["threshold_s"] = self.threshold_s
        return out


@dataclass(frozen=True)
class SLOAlert:
    """One typed fire/clear edge of a burn-rate alert."""

    spec: str
    severity: str  # "page" | "ticket"
    edge: str      # "fire" | "clear"
    at_s: float
    burn_fast: float
    burn_mid: float
    burn_slow: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec,
            "severity": self.severity,
            "edge": self.edge,
            "at_s": round(self.at_s, 9),
            "burn_fast": round(self.burn_fast, 6),
            "burn_mid": round(self.burn_mid, 6),
            "burn_slow": round(self.burn_slow, 6),
        }


class _Window:
    """Amortized-O(1) sliding good/bad counter over ``(now-span, now]``."""

    __slots__ = ("span_s", "events", "bad")

    def __init__(self, span_s: float):
        self.span_s = span_s
        self.events: Deque[Tuple[float, bool]] = deque()
        self.bad = 0

    def advance(self, now: float) -> None:
        cutoff = now - self.span_s
        events = self.events
        while events and events[0][0] <= cutoff:
            if events.popleft()[1]:
                self.bad -= 1

    def add(self, at_s: float, bad: bool) -> None:
        self.events.append((at_s, bad))
        if bad:
            self.bad += 1
        self.advance(at_s)

    @property
    def total(self) -> int:
        return len(self.events)

    def ratio(self) -> float:
        return self.bad / self.total if self.events else 0.0


class _SpecState:
    """Mutable per-spec evaluation state inside the engine."""

    __slots__ = ("spec", "fast", "mid", "slow", "good", "bad",
                 "active", "fired", "cleared")

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        self.fast = _Window(spec.windows.fast_s)
        self.mid = _Window(spec.windows.mid_s)
        self.slow = _Window(spec.windows.slow_s)
        self.good = 0
        self.bad = 0
        self.active = {sev: False for sev in _SEVERITIES}
        self.fired = {sev: 0 for sev in _SEVERITIES}
        self.cleared = {sev: 0 for sev in _SEVERITIES}

    def burns(self) -> Tuple[float, float, float]:
        budget = self.spec.budget
        return (self.fast.ratio() / budget,
                self.mid.ratio() / budget,
                self.slow.ratio() / budget)


class SLOReport:
    """Byte-stable JSON view of an engine's specs, burns and alerts."""

    def __init__(self, report: Dict[str, object]):
        self.report = report

    def __getitem__(self, key: str) -> object:
        return self.report[key]

    def to_json(self) -> str:
        return json.dumps(self.report, sort_keys=True, indent=2) + "\n"


class SLOEngine:
    """Registers :class:`SLOSpec` objects and evaluates burn rates.

    ``clock`` is an optional callable returning the current (virtual)
    time; when omitted every ``observe()`` call must pass ``at_s``.
    Observations must arrive in non-decreasing time order per spec —
    true by construction for scheduler-driven workloads.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock
        self.specs: Dict[str, SLOSpec] = {}
        self._states: Dict[str, _SpecState] = {}
        self._by_scope: Dict[str, List[_SpecState]] = {}
        self.transitions: List[SLOAlert] = []
        self.on_alert: List[Callable[[SLOAlert], None]] = []

    # -- registration ---------------------------------------------------

    def register(self, spec: SLOSpec) -> SLOSpec:
        if spec.name in self.specs:
            raise ValueError(f"duplicate SLO spec {spec.name!r}")
        self.specs[spec.name] = spec
        state = _SpecState(spec)
        self._states[spec.name] = state
        self._by_scope.setdefault(spec.scope, []).append(state)
        return spec

    def scoped(self, scope: str) -> List[SLOSpec]:
        return [st.spec for st in self._by_scope.get(scope, [])]

    # -- observation ----------------------------------------------------

    def _now(self, at_s: Optional[float]) -> float:
        if at_s is not None:
            return at_s
        if self.clock is None:
            raise ValueError("SLOEngine has no clock; pass at_s explicitly")
        return self.clock()

    def observe(self, scope: str, *, outcome: str,
                latency_s: Optional[float] = None,
                degraded: bool = False, stale: bool = False,
                at_s: Optional[float] = None) -> None:
        """Feed one finished request into every spec watching ``scope``."""
        states = self._by_scope.get(scope)
        if not states:
            return
        now = self._now(at_s)
        for state in states:
            bad = state.spec.classify(outcome, latency_s, degraded, stale)
            if bad is None:
                continue
            if bad:
                state.bad += 1
            else:
                state.good += 1
            state.fast.add(now, bad)
            state.mid.add(now, bad)
            state.slow.add(now, bad)
            self._evaluate(state, now)

    def evaluate(self, at_s: Optional[float] = None) -> None:
        """Advance all windows to ``at_s`` and re-check alert edges.

        Lets quiet periods clear alerts — windows otherwise only move
        when the scope sees traffic.
        """
        now = self._now(at_s)
        for name in self._states:
            state = self._states[name]
            state.fast.advance(now)
            state.mid.advance(now)
            state.slow.advance(now)
            self._evaluate(state, now)

    def latency_breach(self, scope: str, latency_s: float) -> bool:
        """True when ``latency_s`` violates any latency SLO on ``scope``."""
        for state in self._by_scope.get(scope, []):
            spec = state.spec
            if spec.objective == "latency" and latency_s > spec.threshold_s:
                return True
        return False

    # -- alerting -------------------------------------------------------

    def _evaluate(self, state: _SpecState, now: float) -> None:
        spec = state.spec
        # Both gates include the mid window (page = fast AND mid,
        # ticket = mid AND slow), so with nothing bad in mid and no
        # alert to clear, no edge can move — skip the burn math. This
        # keeps the healthy-path cost of observe() near zero.
        if state.mid.bad == 0 and not state.active["page"] \
                and not state.active["ticket"]:
            return
        burn_fast, burn_mid, burn_slow = state.burns()
        for severity, short, long_, threshold in (
                ("page", burn_fast, burn_mid, spec.page_burn),
                ("ticket", burn_mid, burn_slow, spec.ticket_burn)):
            active = state.active[severity]
            if not active:
                if short >= threshold and long_ >= threshold:
                    self._transition(state, severity, "fire", now,
                                     burn_fast, burn_mid, burn_slow)
            else:
                clear_at = threshold * spec.clear_ratio
                if short < clear_at and long_ < clear_at:
                    self._transition(state, severity, "clear", now,
                                     burn_fast, burn_mid, burn_slow)

    def _transition(self, state: _SpecState, severity: str, edge: str,
                    now: float, burn_fast: float, burn_mid: float,
                    burn_slow: float) -> None:
        firing = edge == "fire"
        state.active[severity] = firing
        if firing:
            state.fired[severity] += 1
        else:
            state.cleared[severity] += 1
        alert = SLOAlert(spec=state.spec.name, severity=severity, edge=edge,
                         at_s=now, burn_fast=burn_fast, burn_mid=burn_mid,
                         burn_slow=burn_slow)
        self.transitions.append(alert)
        for callback in self.on_alert:
            callback(alert)

    def alert_active(self, name: str, severity: str = "page") -> bool:
        return self._states[name].active[severity]

    def active_alerts(self) -> List[str]:
        out = []
        for name in sorted(self._states):
            state = self._states[name]
            for severity in _SEVERITIES:
                if state.active[severity]:
                    out.append(f"{name}:{severity}")
        return out

    # -- reporting ------------------------------------------------------

    def report(self) -> SLOReport:
        specs: Dict[str, object] = {}
        for name in sorted(self._states):
            state = self._states[name]
            burn_fast, burn_mid, burn_slow = state.burns()
            specs[name] = {
                "spec": state.spec.as_dict(),
                "events": {"good": state.good, "bad": state.bad},
                "burn": {
                    "fast": round(burn_fast, 6),
                    "mid": round(burn_mid, 6),
                    "slow": round(burn_slow, 6),
                },
                "alerts": {
                    severity: {
                        "active": state.active[severity],
                        "fired": state.fired[severity],
                        "cleared": state.cleared[severity],
                    }
                    for severity in _SEVERITIES
                },
            }
        return SLOReport({
            "specs": specs,
            "transitions": [a.as_dict() for a in self.transitions],
            "active_alerts": self.active_alerts(),
        })

    def summary(self) -> Dict[str, object]:
        """Small rollup for envelopes and workload reports."""
        pages = sum(st.fired["page"] for st in self._states.values())
        tickets = sum(st.fired["ticket"] for st in self._states.values())
        return {
            "specs": len(self.specs),
            "active_alerts": self.active_alerts(),
            "pages_fired": pages,
            "tickets_fired": tickets,
            "transitions": len(self.transitions),
        }

    # -- metrics bridge -------------------------------------------------

    def metric_families(self) -> List[MetricFamily]:
        """Fresh ``slo_*`` families (scrape-time collector contract)."""
        events = MetricFamily("slo_events_total", "counter",
                              "SLO-relevant events by spec and class.",
                              ("kind", "spec"))
        burn = MetricFamily("slo_burn_rate", "gauge",
                            "Current burn rate by spec and window.",
                            ("spec", "window"))
        active = MetricFamily("slo_alert_active", "gauge",
                              "1 when the alert is currently firing.",
                              ("severity", "spec"))
        fired = MetricFamily("slo_alerts_total", "counter",
                             "Alert edges by spec, severity and edge.",
                             ("edge", "severity", "spec"))
        for name in sorted(self._states):
            state = self._states[name]
            events.labels(kind="good", spec=name).inc(float(state.good))
            events.labels(kind="bad", spec=name).inc(float(state.bad))
            burn_fast, burn_mid, burn_slow = state.burns()
            for window, value in (("fast", burn_fast), ("mid", burn_mid),
                                  ("slow", burn_slow)):
                burn.labels(spec=name, window=window).set(round(value, 6))
            for severity in _SEVERITIES:
                active.labels(severity=severity, spec=name).set(
                    1.0 if state.active[severity] else 0.0)
                fired.labels(edge="fire", severity=severity, spec=name).inc(
                    float(state.fired[severity]))
                fired.labels(edge="clear", severity=severity, spec=name).inc(
                    float(state.cleared[severity]))
        return [events, burn, active, fired]
