"""Unified observability: cross-layer tracing, metrics, profiles.

Three pieces, one import surface:

- :mod:`~repro.observability.trace` — ``Tracer``/``Span`` with an
  injectable monotonic clock, threaded through every layer of the data
  path so one query yields one trace tree mirroring its EXPLAIN plan;
- :mod:`~repro.observability.metrics` — ``MetricsRegistry`` with
  counter/gauge/histogram families, Prometheus-style text exposition
  and JSON export, plus a validating parser;
- :mod:`~repro.observability.bridge` — scrape-time collectors exposing
  the pre-existing ``ResilienceStats``/``GovernanceStats``/``DapCache``
  counters through the registry without changing their APIs.

Query-level profiles (``SPARQLResult.profile()``) are built on the
trace/plan mirroring here; see ``repro.sparql.results``.
"""

from .bridge import (
    register_dap_cache,
    register_endpoint_pool,
    register_governance,
    register_resilience,
)
from .labeled import LabeledCounters
from .metrics import (
    DEFAULT_BUCKETS,
    Exposition,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
    histogram_quantile,
    parse_exposition,
)
from .trace import (
    PlanTrace,
    Span,
    Tracer,
    dump_trace,
    export_trace,
    render_trace,
    top_spans,
    trace_plan,
)

__all__ = [
    "Tracer",
    "Span",
    "PlanTrace",
    "trace_plan",
    "render_trace",
    "export_trace",
    "dump_trace",
    "top_spans",
    "MetricsRegistry",
    "MetricFamily",
    "MetricsError",
    "Exposition",
    "parse_exposition",
    "histogram_quantile",
    "DEFAULT_BUCKETS",
    "LabeledCounters",
    "register_resilience",
    "register_governance",
    "register_dap_cache",
    "register_endpoint_pool",
]
