"""Unified observability: tracing, metrics, profiles, SLOs, forensics.

Six pieces, one import surface:

- :mod:`~repro.observability.trace` — ``Tracer``/``Span`` with an
  injectable monotonic clock, threaded through every layer of the data
  path so one query yields one trace tree mirroring its EXPLAIN plan;
- :mod:`~repro.observability.metrics` — ``MetricsRegistry`` with
  counter/gauge/histogram families, Prometheus-style text exposition
  and JSON export, plus a validating parser;
- :mod:`~repro.observability.bridge` — scrape-time collectors exposing
  the pre-existing ``ResilienceStats``/``GovernanceStats``/``DapCache``
  /``StatsStore`` counters through the registry without changing their
  APIs;
- :mod:`~repro.observability.slo` — declarative per-tenant / per-pool
  ``SLOSpec`` objectives evaluated over sliding windows with
  multi-window burn-rate alerting (Google-SRE style) on virtual time;
- :mod:`~repro.observability.qlog` — a structured query log with
  deterministic tail sampling (100 % of errors / degraded /
  SLO-breaching / slowest-decile queries, seeded hash sample of the
  rest);
- :mod:`~repro.observability.recorder` — an always-on flight recorder
  ring that snapshots byte-stable incident bundles when an invariant,
  a page-level burn alert, or a pool ejection fires.

Query-level profiles (``SPARQLResult.profile()``) are built on the
trace/plan mirroring here; see ``repro.sparql.results``.
"""

from .bridge import (
    register_dap_cache,
    register_endpoint_pool,
    register_governance,
    register_resilience,
    register_slo,
    register_stats_store,
)
from .labeled import LabeledCounters
from .metrics import (
    DEFAULT_BUCKETS,
    EMPTY_QUANTILE,
    EmptyQuantile,
    Exposition,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
    exposition_from_dict,
    histogram_quantile,
    parse_exposition,
)
from .qlog import KEEP_REASONS, QueryLog, QueryLogRecord
from .recorder import FlightRecorder
from .slo import (
    OBJECTIVES,
    SLOAlert,
    SLOEngine,
    SLOReport,
    SLOSpec,
    SLOWindows,
)
from .trace import (
    PlanTrace,
    Span,
    Tracer,
    dump_trace,
    export_trace,
    render_trace,
    top_spans,
    trace_plan,
)

__all__ = [
    "Tracer",
    "Span",
    "PlanTrace",
    "trace_plan",
    "render_trace",
    "export_trace",
    "dump_trace",
    "top_spans",
    "MetricsRegistry",
    "MetricFamily",
    "MetricsError",
    "Exposition",
    "parse_exposition",
    "exposition_from_dict",
    "histogram_quantile",
    "EmptyQuantile",
    "EMPTY_QUANTILE",
    "DEFAULT_BUCKETS",
    "LabeledCounters",
    "register_resilience",
    "register_governance",
    "register_dap_cache",
    "register_endpoint_pool",
    "register_stats_store",
    "register_slo",
    "OBJECTIVES",
    "SLOSpec",
    "SLOWindows",
    "SLOAlert",
    "SLOEngine",
    "SLOReport",
    "KEEP_REASONS",
    "QueryLog",
    "QueryLogRecord",
    "FlightRecorder",
]
