"""Structured query log with deterministic tail sampling.

Every request the service finishes — completed, shed, failed or
budget-killed — is offered to the :class:`QueryLog` as a
:class:`QueryLogRecord` carrying the provenance an operator greps for
after an incident: tenant, template hash, plan signature and
stats_version, estimated-vs-actual rows, replans, the degraded block,
budget spend, outcome and trace id.

Keeping every record at production rates is a memory bill nobody
pays, so the log *samples into* a bounded ring with a fixed keep
priority:

1. ``error``    — any record that did not complete, or carries a
   typed error payload (kept 100 %);
2. ``degraded`` — completed but with a degraded block (kept 100 %);
3. ``slo``      — completed but breaching a latency SLO on its tenant
   scope (kept 100 %);
4. ``slow``     — in the slowest decile of latencies seen so far,
   judged against a running histogram p90 *before* the new value is
   folded in (kept 100 % after a small warm-up);
5. ``hash``     — everything else is sampled at ``sample_ratio`` by a
   seeded ``crc32`` over ``(seed, seq, tenant, template)``.

There is no ``random`` anywhere (the determinism lint bans it for
this module): the hash sample is a pure function of the seed and the
record identity, so two same-seed runs keep byte-identical record
sets. ``qlog_sampled_total{reason}`` / ``qlog_dropped_total`` mirror
the decisions into a :class:`~repro.observability.MetricsRegistry`
when one is attached.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from collections import deque

from .metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
)

__all__ = [
    "KEEP_REASONS",
    "QueryLog",
    "QueryLogRecord",
]

KEEP_REASONS = ("error", "degraded", "slo", "slow", "hash")

# crc32 sampling resolution: keep when hash % _SAMPLE_MOD < ratio * _SAMPLE_MOD
_SAMPLE_MOD = 1_000_000


@dataclass
class QueryLogRecord:
    """One finished request, with enough provenance to debug it."""

    seq: int
    tenant: str
    template: str
    outcome: str
    at_s: float
    latency_s: Optional[float] = None
    trace_id: Optional[str] = None
    plan_signature: Optional[str] = None
    stats_version: Optional[int] = None
    est_rows: Optional[float] = None
    actual_rows: Optional[int] = None
    replans: int = 0
    degraded: Optional[Dict[str, object]] = None
    budget: Optional[Dict[str, object]] = None
    error_code: Optional[str] = None
    slo_breach: bool = False
    sampled: Optional[str] = field(default=None, compare=False)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "tenant": self.tenant,
            "template": self.template,
            "outcome": self.outcome,
            "at_s": round(self.at_s, 9),
            "replans": self.replans,
            "slo_breach": self.slo_breach,
            "sampled": self.sampled,
        }
        if self.latency_s is not None:
            out["latency_s"] = round(self.latency_s, 9)
        for key in ("trace_id", "plan_signature", "stats_version",
                    "est_rows", "actual_rows", "degraded", "budget",
                    "error_code"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


class QueryLog:
    """Bounded ring of sampled :class:`QueryLogRecord` objects."""

    def __init__(self, capacity: int = 4096, seed: int = 0,
                 sample_ratio: float = 0.05,
                 slow_quantile: float = 0.90,
                 min_latency_samples: int = 16,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                 metrics: Optional[MetricsRegistry] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 <= sample_ratio <= 1.0:
            raise ValueError(
                f"sample_ratio must be in [0, 1], got {sample_ratio}")
        self.capacity = capacity
        self.seed = seed
        self.sample_ratio = sample_ratio
        self.slow_quantile = slow_quantile
        self.min_latency_samples = min_latency_samples
        self._ring: deque = deque(maxlen=capacity)
        self._hist = Histogram({}, tuple(float(b) for b in buckets))
        self._threshold = int(sample_ratio * _SAMPLE_MOD)
        self.offered = 0
        self.dropped = 0
        self.evicted = 0
        self.kept: Dict[str, int] = {reason: 0 for reason in KEEP_REASONS}
        self._sampled_total = self._dropped_total = None
        if metrics is not None:
            self._sampled_total = metrics.counter(
                "qlog_sampled_total",
                "Query-log records kept, by sampling reason.",
                ("reason",))
            self._dropped_total = metrics.counter(
                "qlog_dropped_total",
                "Query-log records not sampled into the ring.")

    # -- sampling -------------------------------------------------------

    def _hash_keep(self, record: QueryLogRecord) -> bool:
        if self._threshold <= 0:
            return False
        key = f"{self.seed}:{record.seq}:{record.tenant}:{record.template}"
        return (zlib.crc32(key.encode("utf-8")) % _SAMPLE_MOD
                < self._threshold)

    def _is_slow(self, latency_s: Optional[float]) -> bool:
        if latency_s is None or self._hist.count < self.min_latency_samples:
            return False
        # judged against the distribution *before* this observation, so
        # the decision never depends on the record it is deciding about;
        # strictly above the p90 bucket bound, so a flat distribution
        # (everything in one bucket) has no slow decile
        return latency_s > histogram_quantile(self._hist,
                                              self.slow_quantile)

    def _classify(self, record: QueryLogRecord) -> Optional[str]:
        if record.outcome != "completed" or record.error_code is not None:
            return "error"
        if record.degraded is not None:
            return "degraded"
        if record.slo_breach:
            return "slo"
        if self._is_slow(record.latency_s):
            return "slow"
        if self._hash_keep(record):
            return "hash"
        return None

    def offer(self, record: QueryLogRecord) -> Optional[str]:
        """Classify *record*; keep it in the ring or count the drop.

        Returns the keep reason, or None when the record was dropped.
        """
        self.offered += 1
        reason = self._classify(record)
        if record.latency_s is not None:
            self._hist.observe(record.latency_s)
        if reason is None:
            self.dropped += 1
            if self._dropped_total is not None:
                self._dropped_total.inc()
            return None
        record.sampled = reason
        self.kept[reason] += 1
        if self._sampled_total is not None:
            self._sampled_total.labels(reason=reason).inc()
        if len(self._ring) == self.capacity:
            self.evicted += 1
        self._ring.append(record)
        return reason

    # -- inspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> List[QueryLogRecord]:
        return list(self._ring)

    def grep(self, predicate: Optional[
            Callable[[QueryLogRecord], bool]] = None,
            **filters: object) -> List[QueryLogRecord]:
        """Records matching every ``field=value`` filter (and predicate).

        ``query_log.grep(tenant="batch", outcome="failed")``
        """
        for key in filters:
            if not hasattr(QueryLogRecord, "__dataclass_fields__") or \
                    key not in QueryLogRecord.__dataclass_fields__:
                raise KeyError(f"unknown query-log field {key!r}")
        out = []
        for record in self._ring:
            if any(getattr(record, k) != v for k, v in filters.items()):
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def dump(self) -> List[Dict[str, object]]:
        return [record.as_dict() for record in self._ring]

    def dump_json(self) -> str:
        return json.dumps(self.dump(), sort_keys=True, indent=2) + "\n"

    def summary(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "kept": dict(self.kept),
            "dropped": self.dropped,
            "evicted": self.evicted,
            "size": len(self._ring),
            "capacity": self.capacity,
            "sample_ratio": self.sample_ratio,
        }
