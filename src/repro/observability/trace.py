"""Span tracing with an injectable monotonic clock.

One :class:`Tracer` is threaded through a whole request: every layer
that does work opens a :class:`Span` under the currently-active span,
so a single federated query yields one trace tree — SPARQL operators,
federation dispatches, OPeNDAP fetches, retry attempts and cache
decisions all hang off the same root.

Two disciplines keep traces cheap and deterministic:

- **injectable clock** — the tracer never reads an ambient clock; it
  calls the ``clock`` it was constructed with (``time.monotonic`` by
  default, a fake in tests), which is what makes trace trees
  byte-identical across runs under a fake clock;
- **activation accounting** — a span's duration is the *accumulated*
  time between ``enter()``/``exit()`` pairs, so a streaming operator
  that is entered once per pulled row is charged only for the time its
  own ``next()`` calls took, not for the consumer's time between rows.

Because child activations always nest inside a parent activation,
``self_time_s`` (duration minus direct children's durations) telescopes:
summed over a whole tree it equals the root span's duration exactly.

:func:`trace_plan` mirrors a physical-plan tree
(:class:`~repro.sparql.plan.PlanNode`) into spans, one per plan node,
so profile rows and EXPLAIN output share node ids.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "PlanTrace",
    "trace_plan",
    "render_trace",
    "export_trace",
    "dump_trace",
    "top_spans",
]

_UNSET = object()


class Span:
    """One timed unit of work; durations accumulate over activations."""

    __slots__ = ("tracer", "span_id", "name", "parent", "children",
                 "attributes", "counters", "start_s", "end_s",
                 "_acc", "_t0", "_depth")

    def __init__(self, tracer: "Tracer", span_id: int, name: str,
                 parent: Optional["Span"],
                 attributes: Optional[Dict[str, object]] = None):
        self.tracer = tracer
        self.span_id = span_id
        self.name = name
        self.parent = parent
        self.children: List[Span] = []
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.counters: Dict[str, int] = {}
        self.start_s: Optional[float] = None
        self.end_s: Optional[float] = None
        self._acc = 0.0
        self._t0: Optional[float] = None
        self._depth = 0

    # -- activation --------------------------------------------------------
    def enter(self) -> "Span":
        """Activate: start charging time here, become the current span."""
        if self._depth == 0:
            self._t0 = self.tracer.clock()
            if self.start_s is None:
                self.start_s = self._t0
        self._depth += 1
        self.tracer._stack.append(self)
        return self

    def exit(self) -> None:
        """Deactivate: stop the charge opened by the matching enter()."""
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # defensive repair: drop the deepest occurrence of self
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is self:
                    del stack[i]
                    break
        self._depth -= 1
        if self._depth == 0 and self._t0 is not None:
            now = self.tracer.clock()
            self._acc += now - self._t0
            self.end_s = now
            self._t0 = None

    # -- recording ---------------------------------------------------------
    def record(self, key: str, n: int = 1) -> None:
        """Bump a named counter on this span (cache hits, fetches...)."""
        self.counters[key] = self.counters.get(key, 0) + n

    # -- derived timings ---------------------------------------------------
    @property
    def duration_s(self) -> float:
        """Accumulated active time (including a live activation)."""
        if self._t0 is not None:
            return self._acc + (self.tracer.clock() - self._t0)
        return self._acc

    @property
    def self_time_s(self) -> float:
        """Own time: duration minus the direct children's durations."""
        return self.duration_s - sum(c.duration_s for c in self.children)

    def walk(self) -> Iterable["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"<Span #{self.span_id} {self.name} "
                f"{self.duration_s * 1e3:.3f}ms>")


class Tracer:
    """Creates spans, tracks the active-span stack, owns the clock.

    Span ids are sequential in creation order, so two runs that create
    spans in the same order produce identical trees — the determinism
    the trace tests pin down under a fake clock.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self.clock = clock
        self._stack: List[Span] = []
        self._next_id = 1
        self.roots: List[Span] = []
        self.spans: List[Span] = []

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, parent=_UNSET,
                   **attributes) -> Span:
        """Create a span (not yet active) under *parent* (default: the
        currently active span; pass ``parent=None`` for a root)."""
        if parent is _UNSET:
            parent = self.current
        span = Span(self, self._next_id, name, parent, attributes)
        self._next_id += 1
        self.spans.append(span)
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes):
        """``with tracer.span("dap.fetch", url=...):`` — one activation."""
        span = self.start_span(name, **attributes)
        span.enter()
        try:
            yield span
        finally:
            span.exit()

    def count(self, key: str, n: int = 1) -> None:
        """Bump a counter on the current span (no-op when none active)."""
        current = self.current
        if current is not None:
            current.record(key, n)

    def adopt(self, span: Span, parent=_UNSET) -> Span:
        """Graft a finished span tree from another tracer under *parent*
        (default: the currently active span).

        This is how parallel task spans join the request trace: each
        worker records into a private tracer (threads never share the
        active-span stack), and the pool adopts the finished trees in
        task order. Adopted spans are renumbered in walk order from this
        tracer's id counter, so the merged tree's ids depend only on
        adoption order — deterministic for a deterministic task list.
        """
        if parent is _UNSET:
            parent = self.current
        for s in span.walk():
            s.tracer = self
            s.span_id = self._next_id
            self._next_id += 1
            self.spans.append(s)
        span.parent = parent
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        return span


# ---------------------------------------------------------------------------
# Plan mirroring: one span per PlanNode, ids shared with EXPLAIN
# ---------------------------------------------------------------------------

class PlanTrace:
    """Spans mirroring a plan tree; operators charge time via
    :meth:`span_for`.

    Works on anything shaped like a PlanNode (``label``, ``detail``,
    ``id``, ``children``), so there is no import of the SPARQL layer
    here. ``root_span`` corresponds to the plan root; the executor
    activates it around the whole pull, and :meth:`finish` copies every
    span's accumulated duration back onto its plan node (``time_s``),
    which is what ``SPARQLResult.profile()`` reads.
    """

    def __init__(self, tracer: Tracer, plan_root):
        self.tracer = tracer
        self._spans: Dict[int, tuple] = {}  # id(node) -> (node, span)
        self.root_span = self._build(plan_root, tracer.current)

    def _build(self, node, parent) -> Span:
        span = self.tracer.start_span(
            _plan_span_name(node), parent=parent,
            node_id=getattr(node, "id", None), op=node.label,
        )
        self._spans[id(node)] = (node, span)
        for child in node.children:
            self._build(child, span)
        return span

    @property
    def clock(self) -> Callable[[], float]:
        return self.tracer.clock

    def span_for(self, node) -> Span:
        """The span mirroring *node*; created lazily (under the current
        span) for nodes planned after the trace started, e.g. the
        per-row sub-plans of EXISTS filters."""
        entry = self._spans.get(id(node))
        if entry is None:
            span = self.tracer.start_span(
                _plan_span_name(node),
                node_id=getattr(node, "id", None), op=node.label,
            )
            self._spans[id(node)] = (node, span)
            return span
        return entry[1]

    def finish(self) -> None:
        """Copy span durations onto the plan (``PlanNode.time_s``)."""
        for node, span in self._spans.values():
            node.time_s = span.duration_s


def trace_plan(tracer: Tracer, plan_root) -> PlanTrace:
    """Mirror *plan_root* into spans under the tracer's current span."""
    return PlanTrace(tracer, plan_root)


def _plan_span_name(node) -> str:
    node_id = getattr(node, "id", None)
    if node_id is None:
        return node.label
    return f"{node.label}#{node_id}"


# ---------------------------------------------------------------------------
# Rendering and export
# ---------------------------------------------------------------------------

def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def render_trace(span: Span) -> str:
    """ASCII tree of a trace: durations, self-times, counters."""
    lines: List[str] = []

    def visit(s: Span, depth: int) -> None:
        head = "  " * depth + s.name
        timing = f"[{_fmt_ms(s.duration_s)} self={_fmt_ms(s.self_time_s)}]"
        extra = ""
        if s.counters:
            extra = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(s.counters.items())
            )
        lines.append(f"{head}  {timing}{extra}")
        for child in s.children:
            visit(child, depth + 1)

    visit(span, 0)
    return "\n".join(lines)


def export_trace(span: Span) -> Dict[str, object]:
    """A JSON-serializable dict of the whole subtree under *span*."""
    return {
        "span_id": span.span_id,
        "name": span.name,
        "attributes": dict(span.attributes),
        "counters": dict(span.counters),
        "start_s": span.start_s,
        "duration_s": span.duration_s,
        "self_time_s": span.self_time_s,
        "children": [export_trace(c) for c in span.children],
    }


def dump_trace(span: Span) -> str:
    """Deterministic JSON text for a trace (sorted keys, 2-space)."""
    return json.dumps(export_trace(span), sort_keys=True, indent=2) + "\n"


def top_spans(span: Span, n: int = 5) -> List[Span]:
    """The *n* spans with the largest self-time (ties: creation order)."""
    ranked = sorted(span.walk(),
                    key=lambda s: (-s.self_time_s, s.span_id))
    return ranked[:n]
