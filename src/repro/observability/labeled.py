"""Per-label counter blocks shared by the stats classes.

``ResilienceStats`` and ``GovernanceStats`` predate the metrics
registry and are mutated with plain ``stats.attempts += 1`` statements
all over the data path. :class:`LabeledCounters` keeps that API intact
while fixing its blind spot: when one block (one ``RetryPolicy``, one
``FederationEngine``) serves several endpoints, the per-instance
counters conflated them — and code that defensively merged a shared
block into itself double-counted.

The model: a block holds its *own* counts plus labeled child blocks
(``stats.labeled(endpoint=iri)``). Reading a field returns the total
(own + all descendants), so existing callers see the numbers they
always saw; writing a field adjusts the block's own count by the delta,
so ``child.attempts += 1`` lands on the child and shows up in the
parent's total without being stored twice. ``merge`` is a no-op on
self-merge — the double-count fix.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

__all__ = ["LabeledCounters"]


def _make_field(field: str) -> property:
    def getter(self):
        return self._total(field)

    def setter(self, value):
        self._own[field] += value - self._total(field)

    return property(getter, setter)


class LabeledCounters:
    """Base for counter blocks with per-label child blocks.

    Subclasses declare ``FIELDS``; each field becomes a property whose
    getter returns own + descendant counts and whose setter adjusts the
    own count by the delta (keeping ``stats.field += 1`` working).
    """

    FIELDS: Tuple[str, ...] = ()

    def __init__(self, _labels: Optional[Dict[str, str]] = None) -> None:
        self._labels: Dict[str, str] = dict(_labels or {})
        self._own: Dict[str, int] = {f: 0 for f in self.FIELDS}
        self._children: Dict[Tuple[Tuple[str, str], ...],
                             "LabeledCounters"] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        for field in cls.FIELDS:
            setattr(cls, field, _make_field(field))

    # -- labeling ----------------------------------------------------------
    def labeled(self, **labels: str) -> "LabeledCounters":
        """The child block for this label combination (created lazily).

        Counts recorded on the child are included in this block's
        totals, so components that share one stats block can attribute
        work per endpoint/dataset without double counting.
        """
        if not labels:
            return self
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self._children.get(key)
        if child is None:
            child = type(self)(_labels=dict(key))
            self._children[key] = child
        return child

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self._labels)

    def children(self) -> Iterable["LabeledCounters"]:
        return [self._children[k] for k in sorted(self._children)]

    def walk(self, _base: Optional[Dict[str, str]] = None
             ) -> Iterator[Tuple[Dict[str, str], "LabeledCounters"]]:
        """Yield ``(accumulated labels, block)`` for self and
        descendants, parents first, children in sorted label order."""
        labels = dict(_base or {})
        labels.update(self._labels)
        yield labels, self
        for child in self.children():
            yield from child.walk(labels)

    # -- counts ------------------------------------------------------------
    def _total(self, field: str) -> int:
        total = self._own[field]
        # list() snapshots the child map: a parallel dispatch may be
        # creating a sibling label while a scrape walks the totals.
        for child in list(self._children.values()):
            total += child._total(field)
        return total

    def own_as_dict(self) -> Dict[str, int]:
        """This block's own counts, excluding children."""
        return dict(self._own)

    def as_dict(self) -> Dict[str, int]:
        return {field: self._total(field) for field in self.FIELDS}

    def reset(self) -> None:
        for field in self.FIELDS:
            self._own[field] = 0
        for child in self._children.values():
            child.reset()

    def merge(self, other: "LabeledCounters") -> "LabeledCounters":
        """Add *other*'s totals into this block's own counts (returns
        self). Merging a block into itself is a no-op: the old
        implementation silently doubled every counter when a shared
        stats block reached a report through two paths."""
        if other is self:
            return self
        for field in self.FIELDS:
            self._own[field] += other._total(field)
        return self

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{field}={self._total(field)}" for field in self.FIELDS
        )
        return f"<{type(self).__name__} {inner}>"
