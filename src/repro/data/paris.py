"""Synthetic-but-plausible Paris datasets for the case study.

The paper's Section 4 case study ("the greenness of Paris") combines
five datasets: LAI observations (Copernicus global land), CORINE land
cover (pan-European), Urban Atlas (local), OpenStreetMap parks/POIs and
GADM administrative areas. We cannot ship the real extracts, so this
module builds geometrically plausible equivalents around real Paris
coordinates: the Bois de Boulogne sits west, the Bois de Vincennes
east, arrondissements tile the city ellipse, industrial zones sit on
the north-east/south-east edges, and the Seine crosses the middle.

Everything is deterministic, so tests and benchmarks are reproducible.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from ..geometry import (
    Feature,
    FeatureCollection,
    LineString,
    Point,
    Polygon,
    STRtree,
)
from ..geometry import ops as geo_ops

PARIS_CENTER = (2.3488, 48.8534)
PARIS_RADII = (0.068, 0.045)  # lon/lat half-axes of the city ellipse


# ---------------------------------------------------------------------------
# Administrative areas (GADM-like)
# ---------------------------------------------------------------------------

def city_boundary(segments: int = 48) -> Polygon:
    """The Paris city limit as an ellipse approximation."""
    cx, cy = PARIS_CENTER
    rx, ry = PARIS_RADII
    pts = [
        (cx + rx * math.cos(2 * math.pi * k / segments),
         cy + ry * math.sin(2 * math.pi * k / segments))
        for k in range(segments)
    ]
    return Polygon(pts + [pts[0]])


def arrondissements() -> FeatureCollection:
    """Twenty wedge/ring sectors standing in for the arrondissements.

    1-4 form the inner ring, 5-12 the middle, 13-20 the outer — so
    queries like "LAI per administrative area" get 20 disjoint polygons
    tiling the city ellipse.
    """
    cx, cy = PARIS_CENTER
    rx, ry = PARIS_RADII
    fc = FeatureCollection()
    rings = [(0.0, 0.35, 4), (0.35, 0.7, 8), (0.7, 1.0, 8)]
    number = 1
    for inner, outer, count in rings:
        for k in range(count):
            a0 = 2 * math.pi * k / count
            a1 = 2 * math.pi * (k + 1) / count
            pts: List[Tuple[float, float]] = []
            steps = 6
            for s in range(steps + 1):
                a = a0 + (a1 - a0) * s / steps
                pts.append((cx + outer * rx * math.cos(a),
                            cy + outer * ry * math.sin(a)))
            if inner == 0.0:
                pts.append((cx, cy))
            else:
                for s in range(steps, -1, -1):
                    a = a0 + (a1 - a0) * s / steps
                    pts.append((cx + inner * rx * math.cos(a),
                                cy + inner * ry * math.sin(a)))
            fc.append(
                Feature(
                    Polygon(pts + [pts[0]]),
                    {
                        "name": f"Paris {number}e",
                        "arrondissement": number,
                        "level": 4,
                    },
                    feature_id=f"gadm-paris-{number}",
                )
            )
            number += 1
    return fc


def gadm_hierarchy() -> FeatureCollection:
    """Country → region → city administrative hierarchy."""
    fc = FeatureCollection()
    fc.append(
        Feature(Polygon.box(-4.8, 42.3, 8.2, 51.1),
                {"name": "France", "level": 0}, "gadm-france")
    )
    fc.append(
        Feature(Polygon.box(1.45, 48.1, 3.55, 49.25),
                {"name": "Île-de-France", "level": 1}, "gadm-idf")
    )
    fc.append(
        Feature(city_boundary(), {"name": "Paris", "level": 2},
                "gadm-paris")
    )
    return fc


# ---------------------------------------------------------------------------
# Parks and POIs (OpenStreetMap-like)
# ---------------------------------------------------------------------------

_PARKS: Dict[str, Tuple[float, float, float, float]] = {
    "Bois de Boulogne": (2.225, 48.852, 2.270, 48.878),
    "Bois de Vincennes": (2.408, 48.820, 2.470, 48.847),
    "Parc des Buttes-Chaumont": (2.380, 48.876, 2.390, 48.882),
    "Parc Monceau": (2.306, 48.877, 2.312, 48.881),
    "Jardin du Luxembourg": (2.332, 48.843, 2.340, 48.850),
    "Parc Montsouris": (2.336, 48.820, 2.345, 48.826),
    "Champ de Mars": (2.292, 48.853, 2.300, 48.859),
    "Jardin des Tuileries": (2.324, 48.862, 2.333, 48.866),
}

_POIS: Dict[str, Tuple[float, float, str]] = {
    "Tour Eiffel": (2.2945, 48.8584, "landmark"),
    "Louvre": (2.3376, 48.8606, "museum"),
    "Notre-Dame": (2.3499, 48.8530, "landmark"),
    "Sacré-Cœur": (2.3431, 48.8867, "landmark"),
    "Stade Charléty": (2.3460, 48.8190, "stadium"),
    "Piscine Joséphine Baker": (2.3755, 48.8370, "sports_centre"),
    "Gare du Nord": (2.3553, 48.8809, "station"),
    "Usine de Javel": (2.2770, 48.8430, "industrial"),
    "Entrepôts de Bercy": (2.3870, 48.8330, "industrial"),
}


def osm_parks() -> FeatureCollection:
    fc = FeatureCollection()
    for i, (name, box) in enumerate(sorted(_PARKS.items())):
        fc.append(
            Feature(
                Polygon.box(*box),
                {"name": name, "poiType": "park"},
                feature_id=f"osm-park-{i}",
            )
        )
    return fc


def osm_pois() -> FeatureCollection:
    fc = FeatureCollection()
    for i, (name, (lon, lat, kind)) in enumerate(sorted(_POIS.items())):
        fc.append(
            Feature(
                Point(lon, lat),
                {"name": name, "poiType": kind},
                feature_id=f"osm-poi-{i}",
            )
        )
    return fc


def seine() -> Feature:
    """The river as a line feature crossing the city."""
    return Feature(
        LineString(
            [
                (2.27, 48.845), (2.30, 48.855), (2.335, 48.862),
                (2.355, 48.852), (2.375, 48.838), (2.40, 48.828),
            ]
        ),
        {"name": "La Seine", "poiType": "river"},
        feature_id="osm-seine",
    )


# ---------------------------------------------------------------------------
# CORINE land cover (pan-European component)
# ---------------------------------------------------------------------------

#: CLC class codes used here (level-3 of the 44-class nomenclature).
CLC_CLASSES = {
    "111": "Continuous urban fabric",
    "112": "Discontinuous urban fabric",
    "121": "Industrial or commercial units",
    "141": "Green urban areas",
    "511": "Water courses",
}

_INDUSTRIAL_ZONES = [
    (2.455, 48.895, 2.53, 48.93),   # north-east (Saint-Denis-ish)
    (2.39, 48.80, 2.46, 48.825),    # south-east (Ivry-ish)
]


def corine_land_cover() -> FeatureCollection:
    """CORINE polygons: urban fabric rings, green areas, industry, water."""
    fc = FeatureCollection()
    cx, cy = PARIS_CENTER
    rx, ry = PARIS_RADII
    counter = 0

    def add(geom, code, year=2012):
        nonlocal counter
        fc.append(
            Feature(
                geom,
                {
                    "code": code,
                    "label": CLC_CLASSES[code],
                    "year": year,
                },
                feature_id=f"clc-{counter}",
            )
        )
        counter += 1

    # green urban areas: the parks themselves (slightly inflated)
    for name, (minx, miny, maxx, maxy) in sorted(_PARKS.items()):
        add(Polygon.box(minx - 0.002, miny - 0.002,
                        maxx + 0.002, maxy + 0.002), "141")
    # continuous urban fabric: inner ellipse
    inner = [
        (cx + 0.55 * rx * math.cos(2 * math.pi * k / 36),
         cy + 0.55 * ry * math.sin(2 * math.pi * k / 36))
        for k in range(36)
    ]
    add(Polygon(inner + [inner[0]]), "111")
    # discontinuous urban fabric: a frame around the city
    add(Polygon.box(2.15, 48.75, 2.55, 48.95), "112")
    # industry
    for zone in _INDUSTRIAL_ZONES:
        add(Polygon.box(*zone), "121")
    # the Seine as a thin water polygon
    add(Polygon.box(2.27, 48.84, 2.41, 48.866), "511")
    return fc


# ---------------------------------------------------------------------------
# Urban Atlas (local component)
# ---------------------------------------------------------------------------

UA_CLASSES = {
    "11100": "Continuous urban fabric (S.L. > 80%)",
    "12100": "Industrial, commercial, public, military and private units",
    "14100": "Green urban areas",
    "14200": "Sports and leisure facilities",
    "12210": "Fast transit roads and associated land",
}


def urban_atlas() -> FeatureCollection:
    """Urban Atlas polygons: finer-grained, urban-area-focused classes."""
    fc = FeatureCollection()
    counter = 0

    def add(geom, code):
        nonlocal counter
        fc.append(
            Feature(
                geom,
                {"code": code, "label": UA_CLASSES[code], "year": 2012},
                feature_id=f"ua-{counter}",
            )
        )
        counter += 1

    for name, box in sorted(_PARKS.items()):
        add(Polygon.box(*box), "14100")
    add(Polygon.box(2.341, 48.816, 2.351, 48.822), "14200")  # Charléty
    add(Polygon.box(2.33, 48.845, 2.37, 48.875), "11100")    # centre slab
    for zone in _INDUSTRIAL_ZONES:
        add(Polygon.box(*zone), "12100")
    add(Polygon.box(2.15, 48.835, 2.55, 48.842), "12210")    # périph-ish
    return fc


# ---------------------------------------------------------------------------
# Greenness field for the product generator
# ---------------------------------------------------------------------------

def paris_greenness() -> Callable[[float, float], float]:
    """A greenness(lon, lat) function consistent with the land cover.

    Parks ≈ 0.9, industrial ≈ 0.05, dense centre ≈ 0.15, default
    suburban fabric ≈ 0.3 — so LAI/NDVI rasters generated with it show
    exactly the contrast Figure 4 visualizes.
    """
    parks = [Polygon.box(*box) for __, box in sorted(_PARKS.items())]
    industrial = [Polygon.box(*zone) for zone in _INDUSTRIAL_ZONES]
    centre = city_boundary()
    park_tree = STRtree(parks)
    industrial_tree = STRtree(industrial)

    def greenness(lon: float, lat: float) -> float:
        point = Point(lon, lat)
        for candidate in park_tree.query_geom(point):
            if geo_ops.intersects(candidate, point):
                return 0.9
        for candidate in industrial_tree.query_geom(point):
            if geo_ops.intersects(candidate, point):
                return 0.05
        if geo_ops.intersects(centre, point):
            return 0.15
        return 0.3

    return greenness
