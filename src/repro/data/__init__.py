"""Synthetic datasets: the Paris scenario and workload generators."""

from .generators import DEFAULT_REGION, WorkloadGenerator
from .paris import (
    CLC_CLASSES,
    PARIS_CENTER,
    UA_CLASSES,
    arrondissements,
    city_boundary,
    corine_land_cover,
    gadm_hierarchy,
    osm_parks,
    osm_pois,
    paris_greenness,
    seine,
    urban_atlas,
)

__all__ = [
    "CLC_CLASSES",
    "DEFAULT_REGION",
    "PARIS_CENTER",
    "UA_CLASSES",
    "WorkloadGenerator",
    "arrondissements",
    "city_boundary",
    "corine_land_cover",
    "gadm_hierarchy",
    "osm_parks",
    "osm_pois",
    "paris_greenness",
    "seine",
    "urban_atlas",
]
