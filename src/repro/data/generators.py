"""Seeded random geometry/workload generators (Geographica & ER benches)."""

from __future__ import annotations

import random
import string
from typing import List, Optional, Tuple

from ..geometry import Feature, FeatureCollection, LineString, Point, Polygon

BBox = Tuple[float, float, float, float]

DEFAULT_REGION: BBox = (20.0, 34.0, 28.0, 42.0)  # Greece-ish (Geographica)


class WorkloadGenerator:
    """Deterministic random features for synthetic workloads."""

    def __init__(self, seed: int = 42, region: BBox = DEFAULT_REGION):
        self.rng = random.Random(seed)
        self.region = region

    # -- primitives --------------------------------------------------------
    def point(self) -> Point:
        minx, miny, maxx, maxy = self.region
        return Point(self.rng.uniform(minx, maxx),
                     self.rng.uniform(miny, maxy))

    def box(self, max_size: float = 0.2) -> Polygon:
        minx, miny, maxx, maxy = self.region
        x = self.rng.uniform(minx, maxx - max_size)
        y = self.rng.uniform(miny, maxy - max_size)
        w = self.rng.uniform(max_size / 10, max_size)
        h = self.rng.uniform(max_size / 10, max_size)
        return Polygon.box(x, y, x + w, y + h)

    def polygon(self, vertices: int = 12, radius: float = 0.1) -> Polygon:
        """A star-convex polygon around a random centre."""
        import math

        centre = self.point()
        pts = []
        for k in range(vertices):
            angle = 2 * math.pi * k / vertices
            r = radius * self.rng.uniform(0.5, 1.0)
            pts.append(
                (centre.x + r * math.cos(angle),
                 centre.y + r * math.sin(angle))
            )
        return Polygon(pts + [pts[0]])

    def linestring(self, vertices: int = 5,
                   step: float = 0.05) -> LineString:
        start = self.point()
        pts = [(start.x, start.y)]
        for __ in range(vertices - 1):
            x, y = pts[-1]
            pts.append(
                (x + self.rng.uniform(-step, step),
                 y + self.rng.uniform(-step, step))
            )
        return LineString(pts)

    def name(self, length: int = 8) -> str:
        return "".join(
            self.rng.choice(string.ascii_lowercase) for __ in range(length)
        )

    # -- feature collections --------------------------------------------------
    def feature_collection(self, count: int, kind: str = "box",
                           classes: Optional[List[str]] = None
                           ) -> FeatureCollection:
        maker = {
            "point": self.point,
            "box": self.box,
            "polygon": self.polygon,
            "linestring": self.linestring,
        }[kind]
        fc = FeatureCollection()
        for i in range(count):
            properties = {"name": self.name(), "index": i}
            if classes:
                properties["class"] = self.rng.choice(classes)
            fc.append(Feature(maker(), properties, feature_id=str(i)))
        return fc
