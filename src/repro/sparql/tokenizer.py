"""SPARQL tokenizer.

Produces a flat token stream for the recursive-descent parser in
:mod:`repro.sparql.parser`. Keywords are case-insensitive and reported
with a canonical upper-case value.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from ..errors import ParseError


class Token(NamedTuple):
    kind: str
    value: str
    pos: int


class SparqlSyntaxError(SyntaxError, ParseError):
    """Raised on malformed SPARQL input.

    Doubles as a :class:`repro.errors.ParseError` so SPARQL text can be
    guarded by the same except clause as the WKT and Turtle parsers;
    ``position`` carries the character offset when known.
    """

    def __init__(self, message: str, position: Optional[int] = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        SyntaxError.__init__(self, message)
        self.position = position


KEYWORDS = {
    "SELECT", "DISTINCT", "REDUCED", "WHERE", "FILTER", "OPTIONAL", "UNION",
    "BIND", "VALUES", "AS", "PREFIX", "BASE", "ASK", "CONSTRUCT", "DESCRIBE",
    "FROM", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
    "OFFSET", "TRUE", "FALSE", "NOT", "IN", "EXISTS", "SERVICE", "MINUS",
    "UNDEF", "INSERT", "DELETE", "DATA", "CLEAR", "ALL", "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT",
    "SEPARATOR", "REGEX", "BOUND", "STR", "LANG", "DATATYPE", "IF",
    "COALESCE", "CONCAT", "CONTAINS", "STRSTARTS", "STRENDS", "STRLEN",
    "SUBSTR", "UCASE", "LCASE", "ABS", "CEIL", "FLOOR", "ROUND", "YEAR",
    "MONTH", "DAY", "HOURS", "MINUTES", "SECONDS", "NOW", "ISIRI",
    "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC", "LANGMATCHES", "IRI",
    "URI", "BNODE", "STRDT", "STRLANG", "REPLACE", "GRAPH",
}

_TOKEN_SPEC = [
    ("WS", r"[ \t\r\n]+"),
    ("COMMENT", r"#[^\n]*"),
    ("IRIREF", r"<[^<>\"{}|^`\\\x00-\x20]*>"),
    ("VAR", r"[?$][A-Za-z_][\w]*"),
    ("LANGTAG", r"@[A-Za-z]+(?:-[A-Za-z0-9]+)*"),
    ("DOUBLE_CARET", r"\^\^"),
    ("STRING_LONG", r'"""(?:[^"\\]|\\.|"(?!""))*"""' + r"|'''(?:[^'\\]|\\.|'(?!''))*'''"),
    ("STRING", r'"(?:[^"\\\n]|\\.)*"' + r"|'(?:[^'\\\n]|\\.)*'"),
    ("NUMBER", r"[-+]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?"),
    ("BNODE_LABEL", r"_:[\w.-]+"),
    ("PNAME", r"[A-Za-z_][\w-]*:[\w.%-]*|:[\w.%-]+"),
    ("WORD", r"[A-Za-z_][\w]*"),
    ("NEQ", r"!="),
    ("LE", r"<="),
    ("GE", r">="),
    ("OROR", r"\|\|"),
    ("ANDAND", r"&&"),
    ("PUNCT", r"[{}()\[\];,.=<>!+\-*/|]"),
]

_MASTER = re.compile("|".join(f"(?P<{k}>{p})" for k, p in _TOKEN_SPEC))


def tokenize(text: str) -> List[Token]:
    """Tokenize SPARQL *text*; raises :class:`SparqlSyntaxError` on junk."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        m = _MASTER.match(text, pos)
        if not m:
            snippet = text[pos: pos + 30]
            raise SparqlSyntaxError(f"cannot tokenize at {snippet!r}",
                                    position=pos)
        kind = m.lastgroup
        value = m.group(0)
        if kind in ("WS", "COMMENT"):
            pos = m.end()
            continue
        if kind == "WORD":
            upper = value.upper()
            if value == "a":
                tokens.append(Token("A", "a", pos))
            elif upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, pos))
            else:
                raise SparqlSyntaxError(f"unknown keyword {value!r}",
                                        position=pos)
        elif kind == "STRING_LONG":
            tokens.append(Token("STRING", value[3:-3], pos))
        elif kind == "STRING":
            tokens.append(Token("STRING", value[1:-1], pos))
        elif kind == "IRIREF":
            tokens.append(Token("IRIREF", value[1:-1], pos))
        elif kind == "NUMBER":
            # '-' and '+' belong to the number only when not preceded by
            # an operand (otherwise "?a-1" would eat the minus).
            if value[0] in "+-" and tokens and tokens[-1].kind in (
                "VAR", "NUMBER", "IRIREF", "PNAME", "STRING"
            ) and tokens[-1].kind != "PUNCT":
                tokens.append(Token("PUNCT", value[0], pos))
                tokens.append(Token("NUMBER", value[1:], pos + 1))
            else:
                tokens.append(Token("NUMBER", value, pos))
        elif kind in ("NEQ", "LE", "GE", "OROR", "ANDAND", "DOUBLE_CARET"):
            tokens.append(Token("PUNCT", value, pos))
        else:
            tokens.append(Token(kind, value, pos))
        pos = m.end()
    tokens.append(Token("EOF", "", len(text)))
    return tokens
