"""SPARQL 1.1 Update (the subset a store product needs).

Supported forms:

- ``INSERT DATA { ... }`` / ``DELETE DATA { ... }`` — ground triples;
- ``DELETE WHERE { ... }`` — pattern-driven deletion;
- ``DELETE { t } INSERT { t } WHERE { ... }`` — the modify form (either
  template optional);
- ``CLEAR ALL`` / ``CLEAR DEFAULT``.

Multiple operations may be separated by ``;``. Evaluated against any
:class:`repro.rdf.Graph` (including Strabon stores, which keep their
spatial index in sync through ``add``/``remove``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rdf.graph import Graph
from ..rdf.namespace import NamespaceManager
from ..rdf.terms import BNode, Literal, Triple
from .ast import GroupGraphPattern, TriplePattern, Var
from .evaluator import Context, eval_group
from .parser import Parser
from .tokenizer import SparqlSyntaxError


@dataclass
class UpdateResult:
    inserted: int = 0
    deleted: int = 0

    def __repr__(self) -> str:
        return f"<UpdateResult +{self.inserted} -{self.deleted}>"


@dataclass
class _Operation:
    kind: str  # insert_data | delete_data | delete_where | modify | clear
    delete_template: List[TriplePattern] = field(default_factory=list)
    insert_template: List[TriplePattern] = field(default_factory=list)
    where: Optional[GroupGraphPattern] = None


class _UpdateParser(Parser):
    """Extends the query parser with the update grammar."""

    def parse_update(self) -> List[_Operation]:
        self._prologue()
        operations = [self._operation()]
        while self.accept("PUNCT", ";"):
            if self.peek().kind == "EOF":
                break
            self._prologue()
            operations.append(self._operation())
        self.expect("EOF")
        return operations

    def _operation(self) -> _Operation:
        tok = self.peek()
        if tok.kind == "KEYWORD" and tok.value == "INSERT":
            self.next()
            if self.accept("KEYWORD", "DATA"):
                return _Operation("insert_data",
                                  insert_template=self._template())
            insert = self._template()
            self.expect("KEYWORD", "WHERE")
            return _Operation("modify", insert_template=insert,
                              where=self._group_graph_pattern())
        if tok.kind == "KEYWORD" and tok.value == "DELETE":
            self.next()
            if self.accept("KEYWORD", "DATA"):
                return _Operation("delete_data",
                                  delete_template=self._template())
            if self.accept("KEYWORD", "WHERE"):
                template = self._template()
                group = GroupGraphPattern()
                from .ast import BGP

                group.elements.append(BGP(list(template)))
                return _Operation("delete_where",
                                  delete_template=template, where=group)
            delete = self._template()
            insert: List[TriplePattern] = []
            if self.accept("KEYWORD", "INSERT"):
                insert = self._template()
            self.expect("KEYWORD", "WHERE")
            return _Operation("modify", delete_template=delete,
                              insert_template=insert,
                              where=self._group_graph_pattern())
        if tok.kind == "KEYWORD" and tok.value == "CLEAR":
            self.next()
            target = self.peek()
            if target.kind == "KEYWORD" and target.value in ("ALL",
                                                             "DEFAULT"):
                self.next()
            return _Operation("clear")
        raise SparqlSyntaxError(
            f"expected update operation, got {tok.value!r}"
        )

    def _template(self) -> List[TriplePattern]:
        self.expect("PUNCT", "{")
        patterns = self._triples_block(stop="}")
        self.expect("PUNCT", "}")
        return patterns


def _ground(pattern: TriplePattern) -> Triple:
    for node in (pattern.s, pattern.p, pattern.o):
        if isinstance(node, Var):
            raise SparqlSyntaxError(
                "DATA blocks must not contain variables"
            )
    return Triple(pattern.s, pattern.p, pattern.o)


def _instantiate(template: List[TriplePattern], row,
                 bnode_map: Dict[str, BNode]) -> List[Triple]:
    out = []
    for pattern in template:
        def resolve(node):
            if isinstance(node, Var):
                return row.get(node.name)
            if isinstance(node, BNode):
                if node not in bnode_map:
                    bnode_map[node] = BNode()
                return bnode_map[node]
            return node

        s, p, o = resolve(pattern.s), resolve(pattern.p), resolve(pattern.o)
        if s is None or p is None or o is None or isinstance(s, Literal):
            continue
        out.append(Triple(s, p, o))
    return out


def update(graph: Graph, text: str) -> UpdateResult:
    """Execute a SPARQL Update request against *graph*."""
    parser = _UpdateParser(text, namespaces=graph.namespaces)
    operations = parser.parse_update()
    result = UpdateResult()
    for op in operations:
        if op.kind == "clear":
            result.deleted += len(graph)
            graph.remove(None, None, None)
            continue
        if op.kind == "insert_data":
            for pattern in op.insert_template:
                triple = _ground(pattern)
                if triple not in graph:
                    graph.add(triple)
                    result.inserted += 1
            continue
        if op.kind == "delete_data":
            for pattern in op.delete_template:
                triple = _ground(pattern)
                if triple in graph:
                    graph.remove(triple)
                    result.deleted += 1
            continue
        # delete_where / modify: evaluate WHERE, then delete + insert
        rows = eval_group(op.where, [{}], Context(graph))
        to_delete: List[Triple] = []
        to_insert: List[Triple] = []
        for row in rows:
            to_delete.extend(_instantiate(op.delete_template, row, {}))
            bnodes: Dict[str, BNode] = {}
            to_insert.extend(
                _instantiate(op.insert_template, row, bnodes)
            )
        for triple in to_delete:
            if triple in graph:
                graph.remove(triple)
                result.deleted += 1
        for triple in to_insert:
            if triple not in graph:
                graph.add(triple)
                result.inserted += 1
    return result
