"""Recursive-descent parser for the SPARQL subset.

Grammar coverage: PREFIX/BASE headers; SELECT (DISTINCT, expressions with
AS, *), ASK, CONSTRUCT, DESCRIBE; group graph patterns with triple blocks
(``;`` / ``,`` lists, ``a``, anonymous ``[]`` nodes), FILTER, OPTIONAL,
UNION, MINUS, BIND, VALUES, SERVICE and sub-SELECT; expressions with the
standard operators, builtin functions, aggregates, IN / NOT IN and
(NOT) EXISTS; GROUP BY / HAVING / ORDER BY / LIMIT / OFFSET.
"""

from __future__ import annotations

from typing import List, Optional

from ..rdf.namespace import NamespaceManager, RDF, XSD
from ..rdf.ntriples import unescape
from ..rdf.terms import BNode, IRI, Literal
from .ast import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryExpr,
    Bind,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expr,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    InlineValues,
    MinusPattern,
    OptionalPattern,
    OrderCondition,
    Projection,
    Query,
    SelectQuery,
    ServicePattern,
    SubSelect,
    TermExpr,
    TriplePattern,
    UnaryExpr,
    UnionPattern,
    Var,
    VarExpr,
)
from .tokenizer import SparqlSyntaxError, Token, tokenize

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "GROUP_CONCAT"}

_BUILTIN_FUNCS = {
    "STR", "LANG", "DATATYPE", "BOUND", "REGEX", "IF", "COALESCE",
    "CONCAT", "CONTAINS", "STRSTARTS", "STRENDS", "STRLEN", "SUBSTR",
    "UCASE", "LCASE", "ABS", "CEIL", "FLOOR", "ROUND", "YEAR", "MONTH",
    "DAY", "HOURS", "MINUTES", "SECONDS", "NOW", "ISIRI", "ISURI",
    "ISBLANK", "ISLITERAL", "ISNUMERIC", "LANGMATCHES", "IRI", "URI",
    "BNODE", "STRDT", "STRLANG", "REPLACE",
}


class Parser:
    def __init__(self, text: str,
                 namespaces: Optional[NamespaceManager] = None):
        self.tokens = tokenize(text)
        self.idx = 0
        self.ns = namespaces or NamespaceManager()
        self.base = ""
        self._path_counter = 0

    # -- token helpers --------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.idx + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.idx]
        if tok.kind != "EOF":
            self.idx += 1
        return tok

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = self.peek()
            want = value or kind
            raise SparqlSyntaxError(
                f"expected {want!r}, got {got.value!r} at offset {got.pos}"
            )
        return tok

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == "KEYWORD" and tok.value in words

    # -- entry ----------------------------------------------------------------
    def parse(self) -> Query:
        self._prologue()
        if self.at_keyword("SELECT"):
            query = self._select_query()
        elif self.at_keyword("ASK"):
            query = self._ask_query()
        elif self.at_keyword("CONSTRUCT"):
            query = self._construct_query()
        elif self.at_keyword("DESCRIBE"):
            query = self._describe_query()
        else:
            tok = self.peek()
            raise SparqlSyntaxError(
                f"expected query form, got {tok.value!r}"
            )
        self.expect("EOF")
        return query

    def _prologue(self) -> None:
        while True:
            if self.accept("KEYWORD", "PREFIX"):
                pname = self.expect("PNAME")
                prefix = pname.value.split(":", 1)[0]
                iri = self.expect("IRIREF")
                self.ns.bind(prefix, self._resolve_iri(iri.value))
            elif self.accept("KEYWORD", "BASE"):
                iri = self.expect("IRIREF")
                self.base = iri.value
            else:
                return

    def _resolve_iri(self, raw: str) -> str:
        import re

        text = unescape(raw)
        if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", text):
            return self.base + text
        return text

    # -- query forms --------------------------------------------------------
    def _select_query(self) -> SelectQuery:
        self.expect("KEYWORD", "SELECT")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        self.accept("KEYWORD", "REDUCED")
        projections: List[Projection] = []
        if not self.accept("PUNCT", "*"):
            while True:
                tok = self.peek()
                if tok.kind == "VAR":
                    self.next()
                    projections.append(Projection(Var(tok.value[1:])))
                elif tok.kind == "PUNCT" and tok.value == "(":
                    self.next()
                    expr = self._expression()
                    self.expect("KEYWORD", "AS")
                    var_tok = self.expect("VAR")
                    self.expect("PUNCT", ")")
                    projections.append(
                        Projection(Var(var_tok.value[1:]), expr)
                    )
                else:
                    break
            if not projections:
                raise SparqlSyntaxError("SELECT requires projections or *")
        self.accept("KEYWORD", "WHERE")
        where = self._group_graph_pattern()
        query = SelectQuery(projections=projections, where=where,
                            distinct=distinct)
        self._solution_modifiers(query)
        return query

    def _ask_query(self) -> AskQuery:
        self.expect("KEYWORD", "ASK")
        self.accept("KEYWORD", "WHERE")
        return AskQuery(where=self._group_graph_pattern())

    def _construct_query(self) -> ConstructQuery:
        self.expect("KEYWORD", "CONSTRUCT")
        self.expect("PUNCT", "{")
        template = self._triples_block(stop="}")
        self.expect("PUNCT", "}")
        self.expect("KEYWORD", "WHERE")
        where = self._group_graph_pattern()
        limit = None
        if self.accept("KEYWORD", "LIMIT"):
            limit = int(self.expect("NUMBER").value)
        return ConstructQuery(template=template, where=where, limit=limit)

    def _describe_query(self) -> DescribeQuery:
        self.expect("KEYWORD", "DESCRIBE")
        terms = []
        while True:
            tok = self.peek()
            if tok.kind == "VAR":
                self.next()
                terms.append(Var(tok.value[1:]))
            elif tok.kind in ("IRIREF", "PNAME"):
                terms.append(self._iri_term())
            else:
                break
        where = None
        if self.at_keyword("WHERE") or (
            self.peek().kind == "PUNCT" and self.peek().value == "{"
        ):
            self.accept("KEYWORD", "WHERE")
            where = self._group_graph_pattern()
        return DescribeQuery(terms=terms, where=where)

    def _solution_modifiers(self, query: SelectQuery) -> None:
        if self.accept("KEYWORD", "GROUP"):
            self.expect("KEYWORD", "BY")
            while True:
                tok = self.peek()
                if tok.kind == "VAR":
                    self.next()
                    query.group_by.append(VarExpr(Var(tok.value[1:])))
                elif tok.kind == "PUNCT" and tok.value == "(":
                    self.next()
                    query.group_by.append(self._expression())
                    self.expect("PUNCT", ")")
                else:
                    break
            if not query.group_by:
                raise SparqlSyntaxError("GROUP BY requires conditions")
        if self.accept("KEYWORD", "HAVING"):
            while self.peek().kind == "PUNCT" and self.peek().value == "(":
                self.next()
                query.having.append(self._expression())
                self.expect("PUNCT", ")")
            if not query.having:
                raise SparqlSyntaxError("HAVING requires conditions")
        if self.accept("KEYWORD", "ORDER"):
            self.expect("KEYWORD", "BY")
            while True:
                if self.accept("KEYWORD", "ASC"):
                    self.expect("PUNCT", "(")
                    query.order_by.append(OrderCondition(self._expression()))
                    self.expect("PUNCT", ")")
                elif self.accept("KEYWORD", "DESC"):
                    self.expect("PUNCT", "(")
                    query.order_by.append(
                        OrderCondition(self._expression(), descending=True)
                    )
                    self.expect("PUNCT", ")")
                elif self.peek().kind == "VAR":
                    tok = self.next()
                    query.order_by.append(
                        OrderCondition(VarExpr(Var(tok.value[1:])))
                    )
                elif self.peek().kind == "PUNCT" and self.peek().value == "(":
                    self.next()
                    query.order_by.append(OrderCondition(self._expression()))
                    self.expect("PUNCT", ")")
                else:
                    break
            if not query.order_by:
                raise SparqlSyntaxError("ORDER BY requires conditions")
        # LIMIT/OFFSET in either order
        for __ in range(2):
            if self.accept("KEYWORD", "LIMIT"):
                query.limit = int(self.expect("NUMBER").value)
            elif self.accept("KEYWORD", "OFFSET"):
                query.offset = int(self.expect("NUMBER").value)

    # -- graph patterns ---------------------------------------------------------
    def _group_graph_pattern(self) -> GroupGraphPattern:
        self.expect("PUNCT", "{")
        group = GroupGraphPattern()
        while True:
            tok = self.peek()
            if tok.kind == "PUNCT" and tok.value == "}":
                self.next()
                return group
            if tok.kind == "EOF":
                raise SparqlSyntaxError("unterminated group graph pattern")
            if self.at_keyword("FILTER"):
                self.next()
                group.elements.append(Filter(self._constraint()))
            elif self.at_keyword("OPTIONAL"):
                self.next()
                group.elements.append(
                    OptionalPattern(self._group_graph_pattern())
                )
            elif self.at_keyword("MINUS"):
                self.next()
                group.elements.append(
                    MinusPattern(self._group_graph_pattern())
                )
            elif self.at_keyword("BIND"):
                self.next()
                self.expect("PUNCT", "(")
                expr = self._expression()
                self.expect("KEYWORD", "AS")
                var_tok = self.expect("VAR")
                self.expect("PUNCT", ")")
                group.elements.append(Bind(expr, Var(var_tok.value[1:])))
            elif self.at_keyword("VALUES"):
                self.next()
                group.elements.append(self._values_clause())
            elif self.at_keyword("SERVICE"):
                self.next()
                silent = False
                endpoint = self._iri_term()
                inner = self._group_graph_pattern()
                group.elements.append(
                    ServicePattern(endpoint, inner, silent=silent)
                )
            elif tok.kind == "PUNCT" and tok.value == "{":
                # sub-group or UNION chain or sub-select
                if self._lookahead_subselect():
                    self.next()
                    sub = self._select_query()
                    self.expect("PUNCT", "}")
                    group.elements.append(SubSelect(sub))
                else:
                    first = self._group_graph_pattern()
                    alternatives = [first]
                    while self.accept("KEYWORD", "UNION"):
                        alternatives.append(self._group_graph_pattern())
                    if len(alternatives) > 1:
                        group.elements.append(UnionPattern(alternatives))
                    else:
                        group.elements.extend(first.elements)
            else:
                patterns = self._triples_block(stop="}")
                if patterns:
                    group.elements.append(BGP(patterns))
                else:
                    raise SparqlSyntaxError(
                        f"unexpected token {tok.value!r} in group pattern"
                    )
            self.accept("PUNCT", ".")

    def _lookahead_subselect(self) -> bool:
        return (
            self.peek().kind == "PUNCT"
            and self.peek().value == "{"
            and self.peek(1).kind == "KEYWORD"
            and self.peek(1).value == "SELECT"
        )

    def _values_clause(self) -> InlineValues:
        variables: List[Var] = []
        if self.accept("PUNCT", "("):
            while self.peek().kind == "VAR":
                variables.append(Var(self.next().value[1:]))
            self.expect("PUNCT", ")")
            self.expect("PUNCT", "{")
            rows = []
            while self.accept("PUNCT", "("):
                row = []
                while not (
                    self.peek().kind == "PUNCT" and self.peek().value == ")"
                ):
                    row.append(self._values_term())
                self.expect("PUNCT", ")")
                if len(row) != len(variables):
                    raise SparqlSyntaxError("VALUES row arity mismatch")
                rows.append(row)
            self.expect("PUNCT", "}")
            return InlineValues(variables, rows)
        # single-variable form: VALUES ?x { v1 v2 }
        var_tok = self.expect("VAR")
        variables = [Var(var_tok.value[1:])]
        self.expect("PUNCT", "{")
        rows = []
        while not (self.peek().kind == "PUNCT" and self.peek().value == "}"):
            rows.append([self._values_term()])
        self.expect("PUNCT", "}")
        return InlineValues(variables, rows)

    def _values_term(self):
        if self.accept("KEYWORD", "UNDEF"):
            return None
        return self._term_node(allow_var=False)

    # -- triples -------------------------------------------------------------
    def _triples_block(self, stop: str) -> List[TriplePattern]:
        patterns: List[TriplePattern] = []
        while True:
            tok = self.peek()
            if tok.kind == "PUNCT" and tok.value in (stop, "}", "{"):
                # "{" starts a sub-group / UNION chain — back to the group
                return patterns
            if tok.kind == "KEYWORD" and tok.value in (
                "FILTER", "OPTIONAL", "BIND", "VALUES", "MINUS", "SERVICE",
            ):
                return patterns
            if tok.kind == "EOF":
                return patterns
            subject = self._term_node(allow_var=True, allow_bnode_props=True,
                                      patterns=patterns)
            self._predicate_object_list(subject, patterns)
            if not self.accept("PUNCT", "."):
                return patterns

    def _predicate_object_list(self, subject, patterns) -> None:
        while True:
            path = self._verb_path()
            while True:
                obj = self._term_node(
                    allow_var=True, allow_bnode_props=True, patterns=patterns
                )
                self._emit_path(subject, path, obj, patterns)
                if not self.accept("PUNCT", ","):
                    break
            if not self.accept("PUNCT", ";"):
                return
            nxt = self.peek()
            if nxt.kind == "PUNCT" and nxt.value in (".", "}", "]"):
                return

    def _emit_path(self, subject, path, obj, patterns) -> None:
        """Expand a sequence property path into chained patterns."""
        if len(path) == 1:
            patterns.append(TriplePattern(subject, path[0], obj))
            return
        current = subject
        for i, step in enumerate(path):
            if i == len(path) - 1:
                patterns.append(TriplePattern(current, step, obj))
            else:
                hop = Var(f"__path{self._path_counter}")
                self._path_counter += 1
                patterns.append(TriplePattern(current, step, hop))
                current = hop

    def _verb_path(self):
        """A predicate or a ``p1/p2/...`` sequence property path."""
        steps = [self._verb()]
        while self.accept("PUNCT", "/"):
            steps.append(self._verb())
        return steps

    def _verb(self):
        if self.accept("A"):
            return RDF.type
        tok = self.peek()
        if tok.kind == "VAR":
            self.next()
            return Var(tok.value[1:])
        return self._iri_term()

    def _iri_term(self) -> IRI:
        tok = self.peek()
        if tok.kind == "IRIREF":
            self.next()
            return IRI(self._resolve_iri(tok.value))
        if tok.kind == "PNAME":
            self.next()
            try:
                return self.ns.expand(tok.value)
            except ValueError as exc:
                raise SparqlSyntaxError(str(exc)) from None
        raise SparqlSyntaxError(
            f"expected IRI, got {tok.value!r} at offset {tok.pos}"
        )

    def _term_node(self, allow_var: bool, allow_bnode_props: bool = False,
                   patterns: Optional[list] = None):
        tok = self.peek()
        if tok.kind == "VAR":
            if not allow_var:
                raise SparqlSyntaxError("variable not allowed here")
            self.next()
            return Var(tok.value[1:])
        if tok.kind == "IRIREF" or tok.kind == "PNAME":
            return self._iri_term()
        if tok.kind == "BNODE_LABEL":
            self.next()
            return BNode(tok.value[2:])
        if tok.kind == "STRING":
            return self._literal_tail(self.next().value)
        if tok.kind == "NUMBER":
            self.next()
            return _number_literal(tok.value)
        if tok.kind == "KEYWORD" and tok.value in ("TRUE", "FALSE"):
            self.next()
            return Literal(tok.value == "TRUE")
        if tok.kind == "PUNCT" and tok.value == "[" and allow_bnode_props:
            self.next()
            node = BNode()
            if not (self.peek().kind == "PUNCT" and self.peek().value == "]"):
                if patterns is None:
                    raise SparqlSyntaxError("bnode property list not allowed")
                self._predicate_object_list(node, patterns)
            self.expect("PUNCT", "]")
            return node
        raise SparqlSyntaxError(
            f"expected term, got {tok.value!r} at offset {tok.pos}"
        )

    def _literal_tail(self, raw: str) -> Literal:
        lexical = unescape(raw)
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.value == "^^":
            self.next()
            dt = self._iri_term()
            return Literal(lexical, datatype=dt)
        if tok.kind == "LANGTAG":
            self.next()
            return Literal(lexical, lang=tok.value[1:])
        return Literal(lexical)

    # -- expressions ---------------------------------------------------------
    def _constraint(self) -> Expr:
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.value == "(":
            self.next()
            expr = self._expression()
            self.expect("PUNCT", ")")
            return expr
        return self._primary_expression()

    def _expression(self) -> Expr:
        return self._or_expression()

    def _or_expression(self) -> Expr:
        left = self._and_expression()
        while self.accept("PUNCT", "||"):
            left = BinaryExpr("||", left, self._and_expression())
        return left

    def _and_expression(self) -> Expr:
        left = self._relational_expression()
        while self.accept("PUNCT", "&&"):
            left = BinaryExpr("&&", left, self._relational_expression())
        return left

    def _relational_expression(self) -> Expr:
        left = self._additive_expression()
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.value in (
            "=", "!=", "<", ">", "<=", ">=",
        ):
            self.next()
            return BinaryExpr(tok.value, left, self._additive_expression())
        if self.at_keyword("IN"):
            self.next()
            return InExpr(left, tuple(self._expression_list()))
        if self.at_keyword("NOT") and self.peek(1).value == "IN":
            self.next()
            self.next()
            return InExpr(left, tuple(self._expression_list()), negated=True)
        return left

    def _expression_list(self):
        self.expect("PUNCT", "(")
        items = [self._expression()]
        while self.accept("PUNCT", ","):
            items.append(self._expression())
        self.expect("PUNCT", ")")
        return items

    def _additive_expression(self) -> Expr:
        left = self._multiplicative_expression()
        while True:
            tok = self.peek()
            if tok.kind == "PUNCT" and tok.value in ("+", "-"):
                self.next()
                left = BinaryExpr(
                    tok.value, left, self._multiplicative_expression()
                )
            else:
                return left

    def _multiplicative_expression(self) -> Expr:
        left = self._unary_expression()
        while True:
            tok = self.peek()
            if tok.kind == "PUNCT" and tok.value in ("*", "/"):
                self.next()
                left = BinaryExpr(tok.value, left, self._unary_expression())
            else:
                return left

    def _unary_expression(self) -> Expr:
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.value == "!":
            self.next()
            return UnaryExpr("!", self._unary_expression())
        if tok.kind == "PUNCT" and tok.value == "-":
            self.next()
            return UnaryExpr("-", self._unary_expression())
        if tok.kind == "PUNCT" and tok.value == "+":
            self.next()
            return self._unary_expression()
        return self._primary_expression()

    def _primary_expression(self) -> Expr:
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.value == "(":
            self.next()
            expr = self._expression()
            self.expect("PUNCT", ")")
            return expr
        if tok.kind == "VAR":
            self.next()
            return VarExpr(Var(tok.value[1:]))
        if tok.kind == "NUMBER":
            self.next()
            return TermExpr(_number_literal(tok.value))
        if tok.kind == "STRING":
            self.next()
            return TermExpr(self._literal_tail(tok.value))
        if tok.kind == "KEYWORD":
            if tok.value in ("TRUE", "FALSE"):
                self.next()
                return TermExpr(Literal(tok.value == "TRUE"))
            if tok.value in _AGGREGATES:
                return self._aggregate()
            if tok.value == "EXISTS":
                self.next()
                return ExistsExpr(self._group_graph_pattern())
            if tok.value == "NOT":
                self.next()
                self.expect("KEYWORD", "EXISTS")
                return ExistsExpr(self._group_graph_pattern(), negated=True)
            if tok.value in _BUILTIN_FUNCS:
                self.next()
                args = self._call_args()
                return FunctionCall(tok.value, tuple(args))
            raise SparqlSyntaxError(
                f"unexpected keyword {tok.value!r} in expression"
            )
        if tok.kind in ("IRIREF", "PNAME"):
            iri = self._iri_term()
            if self.peek().kind == "PUNCT" and self.peek().value == "(":
                args = self._call_args()
                return FunctionCall(str(iri), tuple(args))
            return TermExpr(iri)
        raise SparqlSyntaxError(
            f"unexpected token {tok.value!r} in expression at {tok.pos}"
        )

    def _call_args(self) -> List[Expr]:
        self.expect("PUNCT", "(")
        args: List[Expr] = []
        if not (self.peek().kind == "PUNCT" and self.peek().value == ")"):
            args.append(self._expression())
            while self.accept("PUNCT", ","):
                args.append(self._expression())
        self.expect("PUNCT", ")")
        return args

    def _aggregate(self) -> Aggregate:
        name = self.next().value
        self.expect("PUNCT", "(")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        separator = " "
        if self.accept("PUNCT", "*"):
            expr = None
        else:
            expr = self._expression()
        if name == "GROUP_CONCAT" and self.accept("PUNCT", ";"):
            self.expect("KEYWORD", "SEPARATOR")
            self.expect("PUNCT", "=")
            separator = unescape(self.expect("STRING").value)
        self.expect("PUNCT", ")")
        return Aggregate(name, expr, distinct=distinct, separator=separator)


def _number_literal(token: str) -> Literal:
    if "e" in token.lower():
        return Literal(token, datatype=XSD.double)
    if "." in token:
        return Literal(token, datatype=XSD.decimal)
    return Literal(int(token))


def parse_query(text: str,
                namespaces: Optional[NamespaceManager] = None) -> Query:
    """Parse SPARQL *text* into a query AST.

    Malformed text raises :class:`SparqlSyntaxError` (also a
    :class:`repro.errors.ParseError`) — internal ``ValueError`` /
    ``IndexError`` never escape to the caller.
    """
    try:
        return Parser(text, namespaces).parse()
    except SparqlSyntaxError:
        raise
    except (ValueError, IndexError, RecursionError) as exc:
        raise SparqlSyntaxError(f"malformed SPARQL: {exc}") from None
