"""Streaming physical operators for the SPARQL engine.

Each operator pulls solution rows from its source operator, transforms
them lazily, and counts every emitted row on its
:class:`~repro.sparql.plan.PlanNode` (the EXPLAIN "actual rows").
Because the pipeline is pull-based, a downstream ``Slice`` that stops
pulling terminates the scans underneath it — LIMIT-k queries never
enumerate the whole graph.

The BGP operator is an index-nested-loop join working at the
dictionary-id level: incoming bindings and pattern constants are
encoded once, the per-pattern probes and the join equality checks all
compare ints against the graph's id indexes, and terms are decoded
only when a fully-joined row is emitted. Graphs that do not expose the
id protocol (e.g. the federation view) fall back to an equivalent
term-level matcher.

Budget charging happens at exactly two operator boundaries:
:func:`charge_scan` (per triple a scan enumerates) here, and the
result-row charge in the executor. Nothing else touches the budget,
apart from the deadline tick every operator applies per input row.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..rdf.shards import DEFAULT_BATCH_SIZE
from ..rdf.terms import literal_cmp_key, Literal
from .ast import (
    Bind,
    InlineValues,
    OrderCondition,
    SelectQuery,
    ServicePattern,
    TriplePattern,
    Var,
)
from .functions import SparqlValueError, effective_boolean_value
from .results import Solution


def charge_scan(ctx) -> None:
    """The single operator-boundary budget hook for index scans."""
    if ctx.budget is not None:
        ctx.budget.charge_triples()


def _tick(ctx) -> None:
    if ctx.budget is not None:
        ctx.budget.check_deadline()


class Operator:
    """Base streaming operator: pull rows, count emissions on the plan."""

    def __init__(self, node, source: Optional["Operator"] = None):
        self.node = node
        self.source = source

    def rows(self, ctx) -> Iterator[Solution]:
        raise NotImplementedError

    def stream(self, ctx) -> Iterator[Solution]:
        """``rows()``, timed when the context carries a trace.

        Operators pull from each other through this method; without a
        trace it is exactly ``rows()`` (zero overhead on the untraced
        hot path). With one, each ``next()`` activates the operator's
        plan-mirrored span, so inclusive time nests the way the
        pipeline does and lower layers (federation dispatches, DAP
        fetches, retry attempts) parent under the operator that pulled
        them.
        """
        trace = getattr(ctx, "trace", None)
        if trace is None:
            return self.rows(ctx)
        return self._traced_rows(ctx, trace)

    def _traced_rows(self, ctx, trace) -> Iterator[Solution]:
        span = trace.span_for(self.node)
        iterator = self.rows(ctx)
        while True:
            span.enter()
            try:
                row = next(iterator)
            except StopIteration:
                span.exit()
                return
            except BaseException:
                span.exit()
                raise
            span.exit()
            yield row

    def _emit(self, row: Solution) -> Solution:
        node = self.node
        node.actual_rows = (node.actual_rows or 0) + 1
        return row


class SubPlan:
    """A compiled pipeline that can be reseeded and re-run.

    ``seed`` is the pipeline's leaf; correlated operators (OPTIONAL's
    left join) reset ``seed.seed`` per outer row and pull ``top``
    again. ``root`` is the plan node to show for the whole pipeline
    (defaults to the top operator's node).
    """

    __slots__ = ("seed", "top", "root")

    def __init__(self, seed: "SeedOp", top: Operator, root=None):
        self.seed = seed
        self.top = top
        self.root = root if root is not None else top.node

    def run(self, ctx, seed_rows: List[Solution]) -> Iterator[Solution]:
        self.seed.seed = seed_rows
        return self.top.stream(ctx)


class SeedOp(Operator):
    """Pipeline leaf: emits the seed solutions (usually ``[{}]``)."""

    def __init__(self, node):
        super().__init__(node)
        self.seed: List[Solution] = [{}]

    def rows(self, ctx) -> Iterator[Solution]:
        for row in self.seed:
            yield self._emit(row)


# ---------------------------------------------------------------------------
# BGP: index-nested-loop join over dictionary ids
# ---------------------------------------------------------------------------

def _substitute(pattern: TriplePattern, solution: Solution):
    def resolve(node):
        if isinstance(node, Var):
            return solution.get(node.name)
        return node

    return resolve(pattern.s), resolve(pattern.p), resolve(pattern.o)


def _extend_terms(pattern: TriplePattern, triple,
                  solution: Solution) -> Optional[Solution]:
    out = dict(solution)
    for node, value in ((pattern.s, triple.s), (pattern.p, triple.p),
                        (pattern.o, triple.o)):
        if isinstance(node, Var):
            existing = out.get(node.name)
            if existing is None:
                out[node.name] = value
            elif existing != value:
                return None
    return out


#: Block rows sampled per remaining pattern when re-estimating a
#: suffix mid-query (each sample is an O(1) index-cardinality probe).
REPLAN_SAMPLE = 8


class BGPOp(Operator):
    """Index-nested-loop join of a basic graph pattern.

    *patterns* arrive in the planner's join order; *scan_nodes* are the
    per-pattern plan leaves whose "actual rows" count enumerated
    triples (what the scan budget is charged for) and whose ``probes``
    count input bindings, so ``actual_rows / probes`` is directly
    comparable with the planner's per-probe estimate.

    When the context carries a ``replan_ratio`` and the graph speaks
    the id protocol, execution switches to a staged (block) strategy
    that can *re-order the remaining pattern suffix mid-query* — see
    :meth:`_match_ids_adaptive`. With no re-plan triggered the staged
    strategy enumerates exactly the triples backtracking would, in the
    same emission order.
    """

    def __init__(self, node, source, patterns: List[TriplePattern],
                 restrictions: Dict[str, object], scan_nodes,
                 signatures: Optional[List[str]] = None):
        super().__init__(node, source)
        self.patterns = patterns
        self.restrictions = restrictions
        self.scan_nodes = scan_nodes
        self.signatures = signatures or [None] * len(patterns)

    def rows(self, ctx) -> Iterator[Solution]:
        graph = ctx.graph
        id_mode = (hasattr(graph, "triples_ids")
                   and hasattr(graph, "dictionary"))
        specs = self._resolve_specs(graph) if id_mode else None
        adaptive = (id_mode
                    and len(self.patterns) >= 2
                    and getattr(ctx, "replan_ratio", None) is not None)
        # Batched (vectorized) evaluation pulls fixed-size flat id
        # batches instead of tuple-at-a-time probes. It engages on any
        # sharded graph (where scans also fan out across shards, on
        # ctx.pool when one is set) and whenever the context pins an
        # explicit batch size; the adaptive strategy keeps its own
        # staged path, which re-plans between stages.
        batch_size = getattr(ctx, "batch_size", None)
        if batch_size is None and getattr(graph, "shard_count", 1) > 1:
            batch_size = DEFAULT_BATCH_SIZE
        batched = (id_mode and not adaptive and batch_size is not None
                   and hasattr(graph, "scan_batches"))
        for row in self.source.stream(ctx):
            _tick(ctx)
            self.node.probes += 1
            if id_mode:
                if specs is None:
                    continue  # a constant term is absent from the graph
                if adaptive:
                    matches = self._match_ids_adaptive(specs, row, ctx)
                elif batched:
                    matches = self._match_ids_batched(specs, row, ctx,
                                                      batch_size)
                else:
                    matches = self._match_ids(specs, row, ctx)
            else:
                matches = self._solve_terms(0, row, ctx)
            for out in matches:
                yield self._emit(out)

    # -- id-level matching -------------------------------------------------
    def _resolve_specs(self, graph):
        """Encode pattern constants: str = var name, int = term id."""
        lookup = graph.dictionary.lookup
        specs = []
        for pattern in self.patterns:
            spec = []
            for node in (pattern.s, pattern.p, pattern.o):
                if isinstance(node, Var):
                    spec.append(node.name)
                else:
                    term_id = lookup(node)
                    if term_id is None:
                        return None
                    spec.append(term_id)
            specs.append(tuple(spec))
        return specs

    def _match_ids(self, specs, row: Solution, ctx) -> Iterator[Solution]:
        graph = ctx.graph
        lookup = graph.dictionary.lookup
        env: Dict[str, int] = {}
        for pattern in self.patterns:
            for var in pattern.variables():
                name = var.name
                if name in row and name not in env:
                    term_id = lookup(row[name])
                    if term_id is None:
                        return  # bound term unknown to this graph
                    env[name] = term_id
        # Backtracking over one mutable env with undo (no dict copies
        # on the hot path); hoisted locals are deliberate — this loop
        # runs once per enumerated triple.
        decode = graph.dictionary.decode
        budget = ctx.budget
        n = len(specs)

        def emit() -> Solution:
            out = dict(row)
            for name, term_id in env.items():
                if name not in out:
                    out[name] = decode(term_id)
            return out

        def solve(i: int) -> Iterator[Solution]:
            if i == n:
                yield emit()
                return
            last = i + 1 == n
            spec = specs[i]
            pattern = self.patterns[i]
            scan_node = self.scan_nodes[i]
            scan_node.probes += 1
            s = spec[0] if isinstance(spec[0], int) else env.get(spec[0])
            p = spec[1] if isinstance(spec[1], int) else env.get(spec[1])
            o = spec[2] if isinstance(spec[2], int) else env.get(spec[2])
            if (
                o is None
                and s is None
                and isinstance(pattern.o, Var)
                and pattern.o.name in self.restrictions
                and hasattr(graph, "spatial_candidates")
            ):
                probes = self._spatial_probes(graph, s, p, pattern,
                                              scan_node, ctx)
                pre_charged = True
            else:
                probes = graph.triples_ids((s, p, o))
                pre_charged = False
            for triple in probes:
                if not pre_charged:
                    if budget is not None:
                        budget.charge_triples()
                    scan_node.actual_rows = (scan_node.actual_rows or 0) + 1
                added = None
                conflict = False
                for pos_spec, term_id in zip(spec, triple):
                    if isinstance(pos_spec, str):
                        current = env.get(pos_spec)
                        if current is None:
                            env[pos_spec] = term_id
                            if added is None:
                                added = [pos_spec]
                            else:
                                added.append(pos_spec)
                        elif current != term_id:
                            conflict = True
                            break
                if not conflict:
                    if last:  # no generator frame per output row
                        yield emit()
                    else:
                        yield from solve(i + 1)
                if added:
                    for name in added:
                        del env[name]

        yield from solve(0)

    def _spatial_probes(self, graph, s, p, pattern, scan_node, ctx):
        """Candidate triples via the R-tree spatial leaf."""
        restriction = self.restrictions[pattern.o.name]
        bounds = restriction.geometry.bounds
        if ctx.budget is not None and getattr(graph, "budget_aware", False):
            candidates = graph.spatial_candidates(bounds, budget=ctx.budget)
        else:
            candidates = graph.spatial_candidates(bounds)
        lookup = graph.dictionary.lookup
        for candidate in candidates:
            cand_id = lookup(candidate)
            if cand_id is None:
                continue
            for triple in graph.triples_ids((s, p, cand_id)):
                charge_scan(ctx)
                scan_node.actual_rows = (scan_node.actual_rows or 0) + 1
                yield triple

    # -- batched (vectorized) id-level matching -----------------------------
    def _match_ids_batched(self, specs, row: Solution, ctx,
                           batch_size: int) -> Iterator[Solution]:
        """Staged block evaluation over flat id batches.

        Patterns run stage-by-stage over a materialized block of
        partial envs; each probe pulls fixed-size flat
        ``[s,p,o, s,p,o, ...]`` int batches from
        ``graph.scan_batches`` — which on a sharded graph scans the
        shards concurrently (on ``ctx.pool``) and merges canonically —
        and the budget is charged per batch instead of per triple.
        Stage order preserves the depth-first emission order of
        :meth:`_match_ids`, and the batch size never affects which
        rows come out, only how many ids move per pull.
        """
        graph = ctx.graph
        lookup = graph.dictionary.lookup
        env0: Dict[str, int] = {}
        for pattern in self.patterns:
            for var in pattern.variables():
                name = var.name
                if name in row and name not in env0:
                    term_id = lookup(row[name])
                    if term_id is None:
                        return  # bound term unknown to this graph
                    env0[name] = term_id
        budget = ctx.budget
        pool = getattr(ctx, "pool", None)
        merge = self._merge_env
        block: List[Dict[str, int]] = [env0]
        for i, spec in enumerate(specs):
            pattern = self.patterns[i]
            scan_node = self.scan_nodes[i]
            out: List[Dict[str, int]] = []
            for env in block:
                scan_node.probes += 1
                s = spec[0] if isinstance(spec[0], int) else env.get(spec[0])
                p = spec[1] if isinstance(spec[1], int) else env.get(spec[1])
                o = spec[2] if isinstance(spec[2], int) else env.get(spec[2])
                if (
                    o is None
                    and s is None
                    and isinstance(pattern.o, Var)
                    and pattern.o.name in self.restrictions
                    and hasattr(graph, "spatial_candidates")
                ):
                    # spatial leaves stay tuple-at-a-time: the R-tree
                    # candidate walk is already the narrow path
                    for triple in self._spatial_probes(graph, s, p, pattern,
                                                       scan_node, ctx):
                        merged = merge(spec, triple, env)
                        if merged is not None:
                            out.append(merged)
                    continue
                for flat in graph.scan_batches((s, p, o), batch_size,
                                               pool=pool):
                    n = len(flat) // 3
                    if budget is not None:
                        budget.charge_triples(n)
                    scan_node.actual_rows = (scan_node.actual_rows or 0) + n
                    for j in range(0, len(flat), 3):
                        merged = merge(
                            spec, (flat[j], flat[j + 1], flat[j + 2]), env)
                        if merged is not None:
                            out.append(merged)
            block = out
            if not block:
                return
        decode = graph.dictionary.decode
        for env in block:
            out_row = dict(row)
            for name, term_id in env.items():
                if name not in out_row:
                    out_row[name] = decode(term_id)
            yield out_row

    # -- adaptive (staged) id-level matching --------------------------------
    def _match_ids_adaptive(self, specs, row: Solution,
                            ctx) -> Iterator[Solution]:
        """Staged block evaluation with mid-query suffix re-planning.

        Instead of backtracking, the BGP runs pattern-by-pattern over a
        materialized block of partial envs. With the planner's order
        unchanged this enumerates the same triples in the same emission
        order as :meth:`_match_ids`; what the staging buys is a safe
        checkpoint between (and inside) stages where actual per-probe
        rows can be compared against the planner's estimate. When they
        diverge past ``ctx.replan_ratio``, the *remaining* pattern
        suffix is re-ordered from deterministic sampled re-estimates —
        ``pattern_cardinality`` probed with the actual bound ids of the
        first :data:`REPLAN_SAMPLE` block rows — and, if a stage blows
        up mid-flight while a cheaper remaining pattern exists, the
        stage is abandoned (its input block is intact) and re-entered
        under the new order. Every re-plan is counted on the plan node,
        kept as a ``replan_events`` entry, and traced as a
        ``bgp.replan`` span.

        Decisions depend only on plan estimates and live index
        counters, so same-seed runs with a frozen stats snapshot make
        identical choices; results are the same solution bag as the
        static strategy in every case.
        """
        graph = ctx.graph
        lookup = graph.dictionary.lookup
        env0: Dict[str, int] = {}
        for pattern in self.patterns:
            for var in pattern.variables():
                name = var.name
                if name in row and name not in env0:
                    term_id = lookup(row[name])
                    if term_id is None:
                        return  # bound term unknown to this graph
                    env0[name] = term_id
        remaining = list(range(len(specs)))
        aborted: set = set()
        block: List[Dict[str, int]] = [env0]
        ratio = ctx.replan_ratio
        while remaining and block:
            idx = remaining[0]
            out, new_order = self._run_stage(idx, block, specs, remaining,
                                             aborted, ctx, ratio)
            if new_order is not None:  # stage aborted mid-flight
                aborted.add(idx)
                self._note_replan(ctx, idx, new_order)
                remaining = new_order
                continue
            remaining.pop(0)
            block = out
            if (block and len(remaining) >= 2
                    and self._stage_diverged(idx, ratio)):
                reordered = self._sampled_order(remaining, block, specs,
                                                graph)
                if reordered != remaining:
                    self._note_replan(ctx, idx, reordered)
                    remaining = reordered
        decode = graph.dictionary.decode
        for env in block:
            out_row = dict(row)
            for name, term_id in env.items():
                if name not in out_row:
                    out_row[name] = decode(term_id)
            yield out_row

    def _run_stage(self, idx: int, block, specs, remaining, aborted,
                   ctx, ratio):
        """One pattern over one block; returns ``(out_block, None)`` or
        ``(None, new_order)`` when the stage aborted for a re-plan."""
        graph = ctx.graph
        budget = ctx.budget
        spec = specs[idx]
        pattern = self.patterns[idx]
        scan_node = self.scan_nodes[idx]
        est = scan_node.est_rows if scan_node.est_rows else 1.0
        # A pattern may abort at most once (else a stubborn sample
        # could ping-pong), and only while an alternative exists.
        can_abort = idx not in aborted and len(remaining) >= 2
        out: List[Dict[str, int]] = []
        produced = 0
        for probe_i, env in enumerate(block):
            scan_node.probes += 1
            s = spec[0] if isinstance(spec[0], int) else env.get(spec[0])
            p = spec[1] if isinstance(spec[1], int) else env.get(spec[1])
            o = spec[2] if isinstance(spec[2], int) else env.get(spec[2])
            if (
                o is None
                and s is None
                and isinstance(pattern.o, Var)
                and pattern.o.name in self.restrictions
                and hasattr(graph, "spatial_candidates")
            ):
                probes = self._spatial_probes(graph, s, p, pattern,
                                              scan_node, ctx)
                pre_charged = True
            else:
                probes = graph.triples_ids((s, p, o))
                pre_charged = False
            for triple in probes:
                if not pre_charged:
                    if budget is not None:
                        budget.charge_triples()
                    scan_node.actual_rows = (scan_node.actual_rows or 0) + 1
                produced += 1
                merged = self._merge_env(spec, triple, env)
                if merged is not None:
                    out.append(merged)
            if can_abort and \
                    (produced + 1.0) / ((probe_i + 1) * est + 1.0) >= ratio:
                reordered = self._sampled_order(remaining, block, specs,
                                                graph)
                if reordered[0] != idx:
                    return None, reordered
                can_abort = False  # cheapest anyway: run to completion
        return out, None

    @staticmethod
    def _merge_env(spec, triple, env: Dict[str, int]
                   ) -> Optional[Dict[str, int]]:
        out = dict(env)
        for pos_spec, term_id in zip(spec, triple):
            if isinstance(pos_spec, str):
                current = out.get(pos_spec)
                if current is None:
                    out[pos_spec] = term_id
                elif current != term_id:
                    return None
        return out

    def _stage_diverged(self, idx: int, ratio: float) -> bool:
        scan_node = self.scan_nodes[idx]
        probes = scan_node.probes
        if not probes:
            return False
        mean = (scan_node.actual_rows or 0) / probes
        est = scan_node.est_rows if scan_node.est_rows else 1.0
        hi, lo = (mean, est) if mean >= est else (est, mean)
        return (hi + 1.0) / (lo + 1.0) >= ratio

    @staticmethod
    def _sampled_order(remaining, block, specs, graph) -> List[int]:
        """Remaining patterns ordered by sampled per-probe cardinality.

        Each sample resolves the pattern's positions against an actual
        block env (unresolved variables stay wildcards) and reads the
        exact index cardinality — O(1) per probe. Ties keep the current
        order; the whole computation is a pure function of the block,
        hence deterministic.
        """
        sampled = []
        for pos, idx in enumerate(remaining):
            spec = specs[idx]
            total = 0.0
            n = 0
            for env in block[:REPLAN_SAMPLE]:
                ids = tuple(part if isinstance(part, int) else env.get(part)
                            for part in spec)
                total += graph.pattern_cardinality(ids)
                n += 1
            sampled.append((total / n if n else 0.0, pos, idx))
        sampled.sort(key=lambda item: (item[0], item[1]))
        return [idx for __, __, idx in sampled]

    def _note_replan(self, ctx, stage_idx: int, new_order) -> None:
        node = self.node
        node.replans += 1
        if len(node.replan_events) < 16:
            node.replan_events.append({
                "diverged": self.scan_nodes[stage_idx].detail,
                "order": [self.scan_nodes[i].detail for i in new_order],
            })
        trace = getattr(ctx, "trace", None)
        if trace is not None:
            with trace.tracer.span(
                "bgp.replan",
                node_id=node.id,
                diverged=self.scan_nodes[stage_idx].detail,
            ) as span:
                span.record("replans")

    # -- term-level fallback (graphs without the id protocol) ----------------
    def _solve_terms(self, i: int, solution: Solution,
                     ctx) -> Iterator[Solution]:
        if i == len(self.patterns):
            yield solution
            return
        pattern = self.patterns[i]
        scan_node = self.scan_nodes[i]
        scan_node.probes += 1
        graph = ctx.graph
        s, p, o = _substitute(pattern, solution)

        if (
            o is None
            and s is None
            and isinstance(pattern.o, Var)
            and pattern.o.name in self.restrictions
            and hasattr(graph, "spatial_candidates")
        ):
            restriction = self.restrictions[pattern.o.name]
            bounds = restriction.geometry.bounds
            if (ctx.budget is not None
                    and getattr(graph, "budget_aware", False)):
                candidates = graph.spatial_candidates(bounds,
                                                      budget=ctx.budget)
            else:
                candidates = graph.spatial_candidates(bounds)
            for candidate in candidates:
                for triple in graph.triples((s, p, candidate)):
                    charge_scan(ctx)
                    scan_node.actual_rows = (scan_node.actual_rows or 0) + 1
                    extended = _extend_terms(pattern, triple, solution)
                    if extended is not None:
                        yield from self._solve_terms(i + 1, extended, ctx)
            return

        for triple in graph.triples((s, p, o)):
            charge_scan(ctx)
            scan_node.actual_rows = (scan_node.actual_rows or 0) + 1
            extended = _extend_terms(pattern, triple, solution)
            if extended is not None:
                yield from self._solve_terms(i + 1, extended, ctx)


# ---------------------------------------------------------------------------
# Row-at-a-time operators
# ---------------------------------------------------------------------------

class FilterOp(Operator):
    def __init__(self, node, source, expr):
        super().__init__(node, source)
        self.expr = expr

    def rows(self, ctx) -> Iterator[Solution]:
        from .evaluator import eval_expr

        for row in self.source.stream(ctx):
            try:
                if effective_boolean_value(eval_expr(self.expr, row, ctx)):
                    yield self._emit(row)
            except SparqlValueError:
                continue  # evaluation error drops the row


class BindOp(Operator):
    def __init__(self, node, source, bind: Bind):
        super().__init__(node, source)
        self.bind = bind

    def rows(self, ctx) -> Iterator[Solution]:
        from .evaluator import eval_expr

        for row in self.source.stream(ctx):
            row = dict(row)
            try:
                row[self.bind.var.name] = eval_expr(self.bind.expr, row, ctx)
            except SparqlValueError:
                pass  # BIND error leaves the variable unbound
            yield self._emit(row)


class LeftJoinOp(Operator):
    """OPTIONAL: per-row correlated evaluation of the sub-pipeline."""

    def __init__(self, node, source, sub: SubPlan):
        super().__init__(node, source)
        self.sub = sub

    def rows(self, ctx) -> Iterator[Solution]:
        for row in self.source.stream(ctx):
            _tick(ctx)
            matched = False
            for out in self.sub.run(ctx, [dict(row)]):
                matched = True
                yield self._emit(out)
            if not matched:
                yield self._emit(row)


class UnionOp(Operator):
    def __init__(self, node, source, subs: List[SubPlan]):
        super().__init__(node, source)
        self.subs = subs

    def rows(self, ctx) -> Iterator[Solution]:
        _tick(ctx)
        input_rows = list(self.source.stream(ctx))
        for sub in self.subs:
            seeded = [dict(r) for r in input_rows]
            for out in sub.run(ctx, seeded):
                yield self._emit(out)


class MinusOp(Operator):
    def __init__(self, node, source, sub: SubPlan):
        super().__init__(node, source)
        self.sub = sub

    def rows(self, ctx) -> Iterator[Solution]:
        exclusions = None
        for row in self.source.stream(ctx):
            _tick(ctx)
            if exclusions is None:
                exclusions = list(self.sub.run(ctx, [{}]))
            excluded = False
            for exc in exclusions:
                shared = set(row) & set(exc)
                if shared and all(row[v] == exc[v] for v in shared):
                    excluded = True
                    break
            if not excluded:
                yield self._emit(row)


class _HashJoiner:
    """Hash join against a materialized right side.

    Right rows are grouped by their variable-set signature (bindings
    from VALUES/SERVICE/sub-SELECT need not be uniform); per signature
    a hash index keyed on the shared variables of the probing row is
    built lazily. Matches are replayed in original right-side order so
    the join is order-deterministic.
    """

    def __init__(self, right_rows: List[Solution]):
        self._by_sig: Dict[frozenset, List[Tuple[int, Solution]]] = {}
        for idx, row in enumerate(right_rows):
            self._by_sig.setdefault(frozenset(row), []).append((idx, row))
        self._indexes: Dict[Tuple, Dict] = {}

    def matches(self, left: Solution) -> Iterator[Solution]:
        left_keys = set(left)
        hits: List[Tuple[int, Solution]] = []
        for sig, entries in self._by_sig.items():
            shared = tuple(sorted(left_keys & sig))
            index = self._indexes.get((sig, shared))
            if index is None:
                index = {}
                for idx, row in entries:
                    key = tuple(row[v] for v in shared)
                    index.setdefault(key, []).append((idx, row))
                self._indexes[(sig, shared)] = index
            key = tuple(left[v] for v in shared)
            hits.extend(index.get(key, ()))
        hits.sort(key=lambda entry: entry[0])
        for __, row in hits:
            merged = dict(left)
            merged.update(row)
            yield merged


def _build_joiner(ctx, node, join_key, right_rows):
    """The hash joiner for a materialized build side.

    Returns ``(joiner, spill_joiner)``: the in-memory
    :class:`_HashJoiner` when no spill threshold is armed on the
    context, else a :class:`~repro.sparql.spill.SpillHashJoin` keyed on
    the plan-time *join_key* whose in-memory build side is bounded at
    ``ctx.spill_threshold`` rows (``spill_joiner`` must be closed by
    the caller — operators do so in a ``finally``). Both joiners
    produce byte-identical output for the same inputs.
    """
    threshold = getattr(ctx, "spill_threshold", None)
    if threshold is None:
        return _HashJoiner(right_rows), None
    from .spill import DEFAULT_SPILL_DIR, SpillHashJoin

    spill_dir = getattr(ctx, "spill_dir", None) or DEFAULT_SPILL_DIR
    tag = f"{(node.label or 'join').lower()}-n{node.id or 0}"
    joiner = SpillHashJoin(join_key or (), max_build_rows=threshold,
                           spill_dir=spill_dir, tag=tag, budget=ctx.budget)
    joiner.build(right_rows)
    return joiner, joiner


def _finish_spill(node, spill_joiner) -> None:
    if spill_joiner is not None:
        stats = spill_joiner.close()
        node.spill = stats["spilled_rows"]


class ValuesOp(Operator):
    def __init__(self, node, source, values: InlineValues, join_key=()):
        super().__init__(node, source)
        self.join_key = tuple(join_key)
        self._rows = []
        for row in values.rows:
            self._rows.append({
                var.name: term
                for var, term in zip(values.variables, row)
                if term is not None
            })
        self._mem_joiner = None

    def rows(self, ctx) -> Iterator[Solution]:
        joiner, spill = _build_joiner(ctx, self.node, self.join_key,
                                      self._rows)
        if spill is None:
            # cache the in-memory joiner: VALUES rows never change, so
            # re-runs (e.g. under OPTIONAL) reuse the lazy indexes
            if self._mem_joiner is None:
                self._mem_joiner = joiner
            joiner = self._mem_joiner
        try:
            for row in self.source.stream(ctx):
                _tick(ctx)
                for out in joiner.matches(row):
                    yield self._emit(out)
        finally:
            _finish_spill(self.node, spill)


class SubSelectOp(Operator):
    def __init__(self, node, source, query: SelectQuery, join_key=()):
        super().__init__(node, source)
        self.query = query
        self.join_key = tuple(join_key)

    def rows(self, ctx) -> Iterator[Solution]:
        from .evaluator import eval_query

        joiner = None
        spill = None
        try:
            for row in self.source.stream(ctx):
                _tick(ctx)
                if joiner is None:
                    sub_result = eval_query(self.query, ctx)
                    joiner, spill = _build_joiner(ctx, self.node,
                                                  self.join_key,
                                                  sub_result.rows)
                for out in joiner.matches(row):
                    yield self._emit(out)
        finally:
            _finish_spill(self.node, spill)


class ServiceOp(Operator):
    """Exchange operator: ships the group to a remote endpoint once and
    hash-joins the returned bindings into the local stream."""

    def __init__(self, node, source, element: ServicePattern, join_key=()):
        super().__init__(node, source)
        self.element = element
        self.join_key = tuple(join_key)

    def rows(self, ctx) -> Iterator[Solution]:
        from .evaluator import EvaluationError

        joiner = None
        spill = None
        try:
            for row in self.source.stream(ctx):
                _tick(ctx)
                self.node.probes += 1
                if joiner is None:
                    if ctx.service_resolver is None:
                        raise EvaluationError(
                            "SERVICE pattern requires a service resolver"
                            " (federation)"
                        )
                    remote_rows = ctx.service_resolver(
                        str(self.element.endpoint), self.element.group
                    )
                    joiner, spill = _build_joiner(ctx, self.node,
                                                  self.join_key,
                                                  remote_rows)
                for out in joiner.matches(row):
                    yield self._emit(out)
        finally:
            _finish_spill(self.node, spill)


# ---------------------------------------------------------------------------
# Solution modifiers
# ---------------------------------------------------------------------------

class AggregateOp(Operator):
    """GROUP BY + aggregate projection (blocking)."""

    def __init__(self, node, source, query: SelectQuery):
        super().__init__(node, source)
        self.query = query

    def rows(self, ctx) -> Iterator[Solution]:
        from .evaluator import _group_and_aggregate

        input_rows = list(self.source.stream(ctx))
        for row in _group_and_aggregate(self.query, input_rows, ctx):
            yield self._emit(row)


def _order_key(cond: OrderCondition, row: Solution, ctx):
    from .evaluator import eval_expr

    try:
        term = eval_expr(cond.expr, row, ctx)
    except SparqlValueError:
        return ((-1, 0.0), "")
    if isinstance(term, Literal):
        return (literal_cmp_key(term), "")
    return ((4, 0.0), str(term))


class OrderByOp(Operator):
    """Full blocking sort (ORDER BY without a LIMIT to bound it)."""

    def __init__(self, node, source, conditions: List[OrderCondition]):
        super().__init__(node, source)
        self.conditions = conditions

    def rows(self, ctx) -> Iterator[Solution]:
        input_rows = list(self.source.stream(ctx))
        # Stable multi-key sort: right-to-left so the leftmost ORDER BY
        # condition dominates.
        for cond in reversed(self.conditions):
            input_rows.sort(
                key=lambda row, cond=cond: _order_key(cond, row, ctx),
                reverse=cond.descending,
            )
        for row in input_rows:
            yield self._emit(row)


class _TopKEntry:
    """Comparator wrapper giving heapq the ORDER BY total order.

    The input index tiebreak makes the order identical to the stable
    full sort, so TopK(k) emits exactly the first k rows OrderBy would.
    """

    __slots__ = ("row", "keys", "index")

    def __init__(self, row, keys, index):
        self.row = row
        self.keys = keys
        self.index = index

    def __lt__(self, other: "_TopKEntry") -> bool:
        for (key, descending), (other_key, __) in zip(self.keys, other.keys):
            if key == other_key:
                continue
            if descending:
                return key > other_key
            return key < other_key
        return self.index < other.index


class TopKOp(Operator):
    """ORDER BY + LIMIT as a bounded heap: O(n log k), never sorts n."""

    def __init__(self, node, source, conditions: List[OrderCondition],
                 k: int):
        super().__init__(node, source)
        self.conditions = conditions
        self.k = k

    def rows(self, ctx) -> Iterator[Solution]:
        conds = self.conditions
        directions = {cond.descending for cond in conds}
        if len(directions) == 1:
            # Uniform direction: heapq can compare plain key tuples in
            # C. nsmallest/nlargest are documented as equivalent to the
            # stable sorted(...)[:k], so ties keep input order exactly
            # like the full sort (and like the mixed-direction path).
            keyed = (
                (tuple(_order_key(cond, row, ctx) for cond in conds), row)
                for row in self.source.stream(ctx)
            )
            pick = (heapq.nlargest if directions == {True}
                    else heapq.nsmallest)
            for __, row in pick(self.k, keyed, key=lambda kr: kr[0]):
                yield self._emit(row)
            return
        entries = (
            _TopKEntry(
                row,
                [(_order_key(cond, row, ctx), cond.descending)
                 for cond in conds],
                index,
            )
            for index, row in enumerate(self.source.stream(ctx))
        )
        for entry in heapq.nsmallest(self.k, entries):
            yield self._emit(entry.row)


class ProjectOp(Operator):
    def __init__(self, node, source, query: SelectQuery):
        super().__init__(node, source)
        self.query = query

    def rows(self, ctx) -> Iterator[Solution]:
        from .evaluator import eval_expr

        for row in self.source.stream(ctx):
            out: Solution = {}
            for proj in self.query.projections:
                if proj.expr is None:
                    if proj.var.name in row:
                        out[proj.var.name] = row[proj.var.name]
                else:
                    try:
                        out[proj.var.name] = eval_expr(proj.expr, row, ctx)
                    except SparqlValueError:
                        pass
            yield self._emit(out)


class DistinctOp(Operator):
    def __init__(self, node, source):
        super().__init__(node, source)

    def rows(self, ctx) -> Iterator[Solution]:
        seen: Set[Tuple] = set()
        for row in self.source.stream(ctx):
            key = tuple(
                (v, row[v].n3() if hasattr(row[v], "n3") else str(row[v]))
                for v in sorted(row)
            )
            if key not in seen:
                seen.add(key)
                yield self._emit(row)


class SliceOp(Operator):
    """OFFSET/LIMIT; stops pulling its source once the limit is hit."""

    def __init__(self, node, source, limit: Optional[int], offset: int):
        super().__init__(node, source)
        self.limit = limit
        self.offset = offset

    def rows(self, ctx) -> Iterator[Solution]:
        emitted = 0
        skipped = 0
        for row in self.source.stream(ctx):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and emitted >= self.limit:
                return
            emitted += 1
            yield self._emit(row)
            if self.limit is not None and emitted >= self.limit:
                return
