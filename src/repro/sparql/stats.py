"""Operator-level cardinality/timing feedback: the adaptive StatsStore.

PR 4 made every executed query emit per-operator estimate-vs-actual
rows keyed to EXPLAIN ids; this module is what finally consumes them.
A :class:`StatsStore` persists per-operator feedback keyed by *stable
plan-node signatures* — a signature encodes the pattern shape plus the
bound-variable mask (``?b`` for a variable already bound when the scan
probes, ``?f`` for a free one), never the variable names, so the same
scan shape in two different queries shares one feedback record:

    scan(?f <http://ex/follows> ?f)     # both vars free
    scan(?b <http://ex/follows> ?f)     # subject bound by the join

All estimates are stored *per probe* (mean enumerated rows per input
binding), which is exactly the unit
:func:`repro.sparql.plan.estimate_pattern` produces — a recorded mean
is directly substitutable for an index estimate.

Signatures are also **shard-invariant by design**: a sharded graph
(``Graph(shards=N)``) reports per-probe actuals that are global sums
over its shards — per-shard cardinalities stay inside the graph layer
(``Graph.shard_cardinalities``), where they prune empty shards from
the batched scan fan-out — so feedback learned while running at one
shard count is directly reusable at any other, and frozen-snapshot
replays stay byte-identical when the shard count changes underneath.

The store is deliberately boring about time: it holds no clocks and
draws no randomness (the determinism lint enforces a total ban for
this module). Records update by EWMA; ``stats_version`` bumps
monotonically, but only on a *material* change — a new signature, or a
drift of the smoothed mean past ``drift_ratio`` — so the plan caches
keyed on the version are not invalidated by measurement noise.
``freeze()`` turns every ingestion into a no-op, which is what makes
same-seed runs against a fixed snapshot byte-identical.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, Optional, Set

from .ast import TriplePattern, Var

__all__ = [
    "FeedbackRecord",
    "StatsStore",
    "pattern_signature",
    "bgp_signature",
    "service_signature",
    "federation_signature",
]

#: Signature atoms for variable positions: bound-by-join vs free.
BOUND_MARK = "?b"
FREE_MARK = "?f"


def _term_text(node) -> str:
    n3 = getattr(node, "n3", None)
    return n3() if n3 else str(node)


def pattern_signature(pattern: TriplePattern, bound: Set[str],
                      spatial: bool = False) -> str:
    """Stable signature of one scan: pattern shape + bound-var mask.

    Constants keep their N3 text; variables collapse to ``?b``/``?f``
    depending on whether the join has bound them by the time this scan
    probes. ``spatial`` marks R-tree-assisted scans, whose per-probe
    actuals are not comparable with plain index scans of the same shape.
    """
    parts = []
    for node in (pattern.s, pattern.p, pattern.o):
        if isinstance(node, Var):
            parts.append(BOUND_MARK if node.name in bound else FREE_MARK)
        else:
            parts.append(_term_text(node))
    sig = "scan(" + " ".join(parts) + ")"
    return sig + "@spatial" if spatial else sig


def bgp_signature(scan_signatures: Iterable[str]) -> str:
    """Signature of a whole BGP: the sorted multiset of its scans.

    Sorted, not join-ordered — the signature identifies the *pattern
    set*, so feedback recorded under one join order still keys the
    output-cardinality estimate of a re-ordered plan for the same BGP.
    """
    return "bgp(" + " & ".join(sorted(scan_signatures)) + ")"


def service_signature(endpoint) -> str:
    """Signature of a SERVICE exchange with one remote endpoint."""
    return f"service({endpoint})"


def federation_signature(endpoint_iri: str, s, p, o) -> str:
    """Signature of a federated per-endpoint scan.

    The predicate keeps its identity (it drives source selection); the
    subject/object positions collapse to a bound/free mask, mirroring
    what the planner can know at estimation time.
    """
    parts = [
        BOUND_MARK if s is not None else FREE_MARK,
        _term_text(p) if p is not None else FREE_MARK,
        BOUND_MARK if o is not None else FREE_MARK,
    ]
    return f"fed({endpoint_iri} " + " ".join(parts) + ")"


class FeedbackRecord:
    """EWMA-smoothed feedback for one signature (rows/time per probe)."""

    __slots__ = ("signature", "observations", "mean_rows", "last_rows",
                 "mean_time_s")

    def __init__(self, signature: str, mean_rows: float,
                 mean_time_s: float = 0.0, observations: int = 1,
                 last_rows: Optional[float] = None):
        self.signature = signature
        self.observations = observations
        self.mean_rows = mean_rows
        self.last_rows = mean_rows if last_rows is None else last_rows
        self.mean_time_s = mean_time_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "observations": self.observations,
            "mean_rows": self.mean_rows,
            "last_rows": self.last_rows,
            "mean_time_s": self.mean_time_s,
        }

    @classmethod
    def from_dict(cls, signature: str,
                  data: Dict[str, object]) -> "FeedbackRecord":
        return cls(
            signature,
            float(data["mean_rows"]),
            mean_time_s=float(data.get("mean_time_s", 0.0)),
            observations=int(data.get("observations", 1)),
            last_rows=float(data.get("last_rows", data["mean_rows"])),
        )

    def __repr__(self) -> str:
        return (f"<FeedbackRecord {self.signature!r} "
                f"mean_rows={self.mean_rows:.3f} "
                f"n={self.observations}>")


class StatsStore:
    """Thread-safe store of per-signature cardinality/timing feedback.

    ``version`` (the *stats version*) starts at 1 and bumps
    monotonically whenever ingestion materially changes what the
    planner would see. Consumers that cache plans record the version
    they planned under and re-plan when it moves
    (:class:`~repro.service.plancache.PlanCache`).
    """

    def __init__(self, ewma_alpha: float = 0.5, drift_ratio: float = 2.0):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if drift_ratio <= 1.0:
            raise ValueError("drift_ratio must be > 1")
        self.ewma_alpha = ewma_alpha
        self.drift_ratio = drift_ratio
        self.frozen = False
        self._records: Dict[str, FeedbackRecord] = {}
        self._version = 1
        self._lock = threading.Lock()

    # -- reading -----------------------------------------------------------
    @property
    def version(self) -> int:
        return self._version

    def estimate(self, signature: Optional[str]) -> Optional[float]:
        """Mean rows-per-probe recorded for *signature*, or ``None``."""
        if signature is None:
            return None
        record = self._records.get(signature)
        return None if record is None else record.mean_rows

    def timing(self, signature: Optional[str]) -> Optional[float]:
        """Mean seconds-per-probe recorded for *signature*, or ``None``."""
        if signature is None:
            return None
        record = self._records.get(signature)
        return None if record is None else record.mean_time_s

    def record_for(self, signature: str) -> Optional[FeedbackRecord]:
        return self._records.get(signature)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, signature: str) -> bool:
        return signature in self._records

    # -- freezing ----------------------------------------------------------
    def freeze(self) -> "StatsStore":
        """Make every ingestion a no-op (fixed-snapshot replay mode)."""
        self.frozen = True
        return self

    def thaw(self) -> "StatsStore":
        self.frozen = False
        return self

    # -- ingestion ---------------------------------------------------------
    def _ingest(self, signature: str, mean_rows: float,
                mean_time_s: float) -> bool:
        """Fold one observation in; returns True on a material change."""
        record = self._records.get(signature)
        if record is None:
            self._records[signature] = FeedbackRecord(
                signature, mean_rows, mean_time_s)
            return True
        old = record.mean_rows
        alpha = self.ewma_alpha
        record.mean_rows = (1.0 - alpha) * old + alpha * mean_rows
        record.mean_time_s = ((1.0 - alpha) * record.mean_time_s
                              + alpha * mean_time_s)
        record.last_rows = mean_rows
        record.observations += 1
        hi, lo = ((record.mean_rows, old) if record.mean_rows >= old
                  else (old, record.mean_rows))
        return (hi + 1.0) / (lo + 1.0) >= self.drift_ratio

    def record(self, signature: str, mean_rows: float,
               mean_time_s: float = 0.0) -> bool:
        """Ingest one observation; bumps the version if material."""
        if self.frozen:
            return False
        with self._lock:
            material = self._ingest(signature, float(mean_rows),
                                    float(mean_time_s))
            if material:
                self._version += 1
            return material

    def observe_plan(self, plan_root) -> bool:
        """Ingest an executed plan tree (one batched version bump).

        Walks the tree for nodes that carry a signature and actually
        probed (``probes > 0``; never-executed display-only subtrees
        keep ``actual_rows=None`` and are skipped). Zero-row operators
        are *not* skipped: an empty scan is exactly the feedback that
        corrects a wild overestimate.
        """
        if self.frozen:
            return False
        material = False
        with self._lock:
            for node in plan_root.walk():
                signature = getattr(node, "signature", None)
                if signature is None or node.actual_rows is None:
                    continue
                probes = getattr(node, "probes", 0)
                if not probes:
                    continue
                mean_rows = node.actual_rows / probes
                mean_time_s = node.time_s / probes
                if self._ingest(signature, mean_rows, mean_time_s):
                    material = True
            if material:
                self._version += 1
        return material

    def observe_profile(self, profile) -> bool:
        """Ingest :meth:`SPARQLResult.profile` rows (one version bump).

        Accepts any iterable of profile-row dicts carrying
        ``signature``/``probes``/``rows_out``/``time_s``. This is the
        post-query feedback path the executor drives.
        """
        if self.frozen:
            return False
        material = False
        with self._lock:
            for row in profile:
                signature = row.get("signature")
                probes = row.get("probes") or 0
                rows_out = row.get("rows_out")
                if signature is None or rows_out is None or not probes:
                    continue
                mean_rows = rows_out / probes
                mean_time_s = (row.get("time_s") or 0.0) / probes
                if self._ingest(signature, mean_rows, mean_time_s):
                    material = True
            if material:
                self._version += 1
        return material

    # -- persistence -------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable state (sorted for byte-stable dumps)."""
        with self._lock:
            return {
                "stats_version": self._version,
                "ewma_alpha": self.ewma_alpha,
                "drift_ratio": self.drift_ratio,
                "records": {
                    sig: self._records[sig].to_dict()
                    for sig in sorted(self._records)
                },
            }

    def load_snapshot(self, data: Dict[str, object]) -> "StatsStore":
        """Replace the store's contents from a :meth:`snapshot` dict."""
        with self._lock:
            self._records = {
                sig: FeedbackRecord.from_dict(sig, rec)
                for sig, rec in data.get("records", {}).items()
            }
            self._version = int(data.get("stats_version", 1))
        return self

    def save(self, path) -> None:
        """Persist the snapshot as deterministic JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path, ewma_alpha: float = 0.5,
             drift_ratio: float = 2.0) -> "StatsStore":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        store = cls(ewma_alpha=float(data.get("ewma_alpha", ewma_alpha)),
                    drift_ratio=float(data.get("drift_ratio", drift_ratio)))
        return store.load_snapshot(data)

    # -- reporting ---------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "stats_version": self._version,
                "signatures": len(self._records),
                "frozen": self.frozen,
            }

    def __repr__(self) -> str:
        return (f"<StatsStore v{self._version} "
                f"{len(self._records)} signatures"
                f"{' frozen' if self.frozen else ''}>")
