"""Query planning: AST -> tree of streaming physical operators.

The planner compiles a parsed query into the operators of
:mod:`repro.sparql.operators`, making the cost-based decisions up
front so execution is a pure pull of iterators:

- **join ordering** inside each BGP — greedy smallest-estimate-first,
  with exact cardinalities from the graph's id indexes
  (:meth:`~repro.rdf.graph.Graph.pattern_cardinality`) divided by
  distinct-term counts for already-bound variable positions;
- **filter pushdown** — each FILTER is placed directly after the last
  group element that can still bind one of its variables (EXISTS
  filters stay at the end of the group), so rows are dropped as early
  as the SPARQL semantics allow;
- **spatial pushdown** — ``FILTER(geof:sfX(?var, <const>))`` marks the
  scan of ``?var`` as a spatial-index leaf (Strabon's R-tree) and
  discounts its cost estimate;
- **top-k short-circuit** — ORDER BY + LIMIT (without DISTINCT)
  becomes a bounded-heap TopK instead of a full sort.

Every operator carries a :class:`PlanNode`; the tree doubles as the
EXPLAIN output, showing estimated next to actual per-operator rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .ast import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryExpr,
    Bind,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expr,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    InlineValues,
    MinusPattern,
    OptionalPattern,
    Query,
    SelectQuery,
    ServicePattern,
    SubSelect,
    TriplePattern,
    UnaryExpr,
    UnionPattern,
    Var,
    VarExpr,
)
from . import operators as ops
from . import stats as stats_mod


class PlanNode:
    """One operator in a physical plan, with estimate vs actual rows.

    ``actual_rows`` is ``None`` until the plan is executed (rendered as
    ``-``); the executor zeroes the whole tree when it starts pulling,
    and each operator increments its node as rows stream through.
    ``display_only`` subtrees (e.g. the sub-SELECT child shown for
    context under a HashJoin) are *never* zeroed — their actuals stay
    ``None`` and EXPLAIN prints ``rows=-`` explicitly, so profile rows
    can tell "executed, matched nothing" (0) from "never ran" (``-``).

    ``id`` is the node's position in a pre-order walk of its tree
    (assigned by :meth:`assign_ids`, 1-based). Because planning is
    deterministic, the same query always yields the same ids, and the
    executor mirrors them onto trace spans — so the ``#n`` EXPLAIN
    prints is the same ``#n`` a profile row or trace span carries.
    ``time_s`` is the operator's inclusive wall time, copied from its
    span when the query ran under a tracer (else 0).

    ``est_source`` records where ``est_rows`` came from (``index`` |
    ``feedback`` | ``default``; derived nodes combine their inputs) and
    ``signature`` is the stable feedback key the
    :class:`~repro.sparql.stats.StatsStore` stores this operator's
    actuals under. ``probes`` counts input bindings the operator was
    probed with (so ``actual_rows / probes`` is the per-probe mean the
    estimate predicts) and ``replans`` counts mid-query join re-orders
    the adaptive executor performed under this node.
    """

    __slots__ = ("label", "detail", "est_rows", "actual_rows", "children",
                 "id", "time_s", "est_source", "signature", "probes",
                 "replans", "replan_events", "display_only", "access",
                 "spill")

    def __init__(self, label: str, detail: str = "",
                 est_rows: Optional[float] = None,
                 children: Optional[List["PlanNode"]] = None):
        self.label = label
        self.detail = detail
        self.est_rows = est_rows
        self.actual_rows: Optional[int] = None
        self.children: List[PlanNode] = children or []
        self.id: Optional[int] = None
        self.time_s: float = 0.0
        self.est_source: Optional[str] = None
        self.signature: Optional[str] = None
        self.probes: int = 0
        self.replans: int = 0
        self.replan_events: List[Dict[str, object]] = []
        self.display_only: bool = False
        #: Physical access annotation for scans on the sharded data
        #: plane (``"shards=N batch=K"``); ``None`` on the legacy
        #: tuple-at-a-time path, so plain-graph EXPLAIN is unchanged.
        self.access: Optional[str] = None
        #: Spilled build rows for spill-armed hash joins: 0 when armed
        #: at plan time, the actual count after execution, ``None``
        #: (not printed) when spilling is off.
        self.spill: Optional[int] = None

    def assign_ids(self) -> None:
        """Number the tree pre-order, 1-based (stable across re-plans)."""
        for i, node in enumerate(self.walk(), 1):
            node.id = i

    def mark_executed(self) -> None:
        """Zero actual counters tree-wide (operators count from here).

        Display-only subtrees are skipped: they never execute, so their
        actuals must stay ``None`` (EXPLAIN's explicit ``rows=-``), not
        a misleading zero.
        """
        if self.display_only:
            return
        self.actual_rows = 0
        self.time_s = 0.0
        self.probes = 0
        self.replans = 0
        self.replan_events = []
        if self.spill is not None:
            self.spill = 0
        for child in self.children:
            child.mark_executed()

    def walk(self) -> Iterable["PlanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def _fmt(self) -> str:
        est = "-" if self.est_rows is None else str(int(round(self.est_rows)))
        actual = "-" if self.actual_rows is None else str(self.actual_rows)
        head = self.label if not self.detail else f"{self.label}({self.detail})"
        node_id = "" if self.id is None else f"#{self.id} "
        src = "" if self.est_source is None else f" src={self.est_source}"
        replans = f" replans={self.replans}" if self.replans else ""
        access = f" {self.access}" if self.access else ""
        spill = f" spill={self.spill}" if self.spill is not None else ""
        return (f"{node_id}{head}  "
                f"[est={est}{src} rows={actual}{replans}{access}{spill}]")

    def render(self, indent: int = 0) -> str:
        if indent == 0 and self.id is None:
            self.assign_ids()
        lines = ["  " * indent + self._fmt()]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "label": self.label,
            "detail": self.detail,
            "est_rows": self.est_rows,
            "est_source": self.est_source,
            "signature": self.signature,
            "actual_rows": self.actual_rows,
            "probes": self.probes,
            "time_s": self.time_s,
            "replans": self.replans,
            "replan_events": list(self.replan_events),
            "display_only": self.display_only,
            "access": self.access,
            "spill": self.spill,
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:
        return f"<PlanNode {self._fmt()}>"


# ---------------------------------------------------------------------------
# Expression / pattern analysis helpers
# ---------------------------------------------------------------------------

def expr_variables(expr: Optional[Expr]) -> Set[str]:
    """Variable names mentioned anywhere in an expression."""
    out: Set[str] = set()
    if expr is None:
        return out
    if isinstance(expr, VarExpr):
        out.add(expr.var.name)
    elif isinstance(expr, UnaryExpr):
        out |= expr_variables(expr.operand)
    elif isinstance(expr, BinaryExpr):
        out |= expr_variables(expr.left) | expr_variables(expr.right)
    elif isinstance(expr, FunctionCall):
        for a in expr.args:
            out |= expr_variables(a)
    elif isinstance(expr, InExpr):
        out |= expr_variables(expr.value)
        for a in expr.options:
            out |= expr_variables(a)
    elif isinstance(expr, ExistsExpr):
        out |= group_binding_vars(expr.group)
    elif isinstance(expr, Aggregate):
        out |= expr_variables(expr.expr)
    return out


def _expr_has_exists(expr: Optional[Expr]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, ExistsExpr):
        return True
    if isinstance(expr, UnaryExpr):
        return _expr_has_exists(expr.operand)
    if isinstance(expr, BinaryExpr):
        return _expr_has_exists(expr.left) or _expr_has_exists(expr.right)
    if isinstance(expr, FunctionCall):
        return any(_expr_has_exists(a) for a in expr.args)
    if isinstance(expr, InExpr):
        return _expr_has_exists(expr.value) or any(
            _expr_has_exists(a) for a in expr.options
        )
    return False


def element_binding_vars(element) -> Set[str]:
    """Variables a group element may (re)bind in passing rows."""
    if isinstance(element, BGP):
        return {v.name for p in element.patterns for v in p.variables()}
    if isinstance(element, (OptionalPattern, MinusPattern)):
        # MINUS never extends rows, but be conservative for OPTIONAL
        if isinstance(element, MinusPattern):
            return set()
        return group_binding_vars(element.group)
    if isinstance(element, UnionPattern):
        out: Set[str] = set()
        for alt in element.alternatives:
            out |= group_binding_vars(alt)
        return out
    if isinstance(element, Bind):
        return {element.var.name}
    if isinstance(element, InlineValues):
        return {v.name for v in element.variables}
    if isinstance(element, SubSelect):
        sub = element.query
        if sub.projections:
            return {p.var.name for p in sub.projections}
        return group_binding_vars(sub.where)
    if isinstance(element, ServicePattern):
        return group_binding_vars(element.group)
    return set()


def group_binding_vars(group: GroupGraphPattern) -> Set[str]:
    out: Set[str] = set()
    for element in group.elements:
        out |= element_binding_vars(element)
    return out


def _node_text(node) -> str:
    if isinstance(node, Var):
        return f"?{node.name}"
    n3 = getattr(node, "n3", None)
    return n3() if n3 else str(node)


def pattern_text(pattern: TriplePattern) -> str:
    return " ".join(_node_text(t) for t in (pattern.s, pattern.p, pattern.o))


# ---------------------------------------------------------------------------
# Cardinality estimation + BGP join ordering
# ---------------------------------------------------------------------------

#: Selectivity guesses used where no exact statistic exists.
FILTER_SELECTIVITY = 0.5
SPATIAL_DISCOUNT = 0.1
TERM_MODE_BOUND_FACTOR = 10.0

#: Where an estimate came from (printed by EXPLAIN as ``src=``).
SOURCE_INDEX = "index"
SOURCE_FEEDBACK = "feedback"
SOURCE_DEFAULT = "default"


def _pattern_is_spatial(pattern: TriplePattern, bound: Set[str], graph,
                        restrictions) -> bool:
    return (
        isinstance(pattern.o, Var)
        and pattern.o.name not in bound
        and pattern.o.name in restrictions
        and hasattr(graph, "spatial_candidates")
    )


def estimate_pattern_detail(
    pattern: TriplePattern, bound: Set[str], graph, restrictions,
    stats=None,
) -> Tuple[float, str, str]:
    """Estimated matches for one probe of *pattern*, with provenance.

    Returns ``(est, source, signature)``. Recorded feedback for the
    pattern's signature wins over everything (it is the measured
    per-probe mean for exactly this shape + bound mask); with an
    id-indexed graph the constants-only cardinality is otherwise exact
    (``index``), each bound-variable position dividing it by the
    distinct-term count for that position; graphs without the id
    protocol fall back to size-based guessing (``default``), unless
    they expose their own ``feedback_estimate`` (the federation view's
    harvest-fed source-selection estimates). Spatially-restricted
    unbound object variables get the R-tree discount — except under
    feedback, whose recorded actuals already include it.
    """
    positions = (pattern.s, pattern.p, pattern.o)
    spatial = _pattern_is_spatial(pattern, bound, graph, restrictions)
    signature = stats_mod.pattern_signature(pattern, bound, spatial=spatial)
    if stats is not None:
        feedback = stats.estimate(signature)
        if feedback is not None:
            return feedback, SOURCE_FEEDBACK, signature

    dictionary = getattr(graph, "dictionary", None)
    if dictionary is not None and hasattr(graph, "pattern_cardinality"):
        consts = []
        est = None
        for node in positions:
            if isinstance(node, Var):
                consts.append(None)
            else:
                term_id = dictionary.lookup(node)
                if term_id is None:
                    est = 0.0  # constant absent: exact index knowledge
                    break
                consts.append(term_id)
        if est is None:
            est = float(graph.pattern_cardinality(tuple(consts)))
            distinct = graph.distinct_counts
            for i, node in enumerate(positions):
                if isinstance(node, Var) and node.name in bound:
                    est /= max(1, distinct[i])
        source = SOURCE_INDEX
    else:
        feedback_fn = getattr(graph, "feedback_estimate", None)
        est = feedback_fn(pattern, bound) if feedback_fn is not None else None
        if est is not None:
            return est, SOURCE_FEEDBACK, signature
        try:
            est = float(len(graph))
        except TypeError:
            est = 1000.0
        for node in positions:
            if not isinstance(node, Var) or node.name in bound:
                est /= TERM_MODE_BOUND_FACTOR
        source = SOURCE_DEFAULT
    if spatial:
        est *= SPATIAL_DISCOUNT
    return est, source, signature


def estimate_pattern(pattern: TriplePattern, bound: Set[str], graph,
                     restrictions, stats=None) -> float:
    """Estimated matches for one probe of *pattern* (see
    :func:`estimate_pattern_detail` for the provenance-carrying form)."""
    est, __, __ = estimate_pattern_detail(pattern, bound, graph,
                                          restrictions, stats=stats)
    return est


def order_patterns(patterns: Sequence[TriplePattern], bound: Set[str],
                   graph, restrictions, stats=None
                   ) -> List[Tuple[TriplePattern, float, str, str]]:
    """Greedy cardinality-based join order.

    Repeatedly picks the pattern with the smallest estimated match
    count given the variables bound so far; ties break on original
    pattern order, keeping plans deterministic. Each entry is
    ``(pattern, est, source, signature)``.
    """
    bound = set(bound)
    remaining = list(enumerate(patterns))
    ordered: List[Tuple[TriplePattern, float, str, str]] = []
    while remaining:
        best_i, best = 0, None
        for i, (orig, pat) in enumerate(remaining):
            detail = estimate_pattern_detail(pat, bound, graph,
                                             restrictions, stats=stats)
            if best is None or detail[0] < best[0]:
                best_i, best = i, detail
        __, pattern = remaining.pop(best_i)
        ordered.append((pattern,) + best)
        for var in pattern.variables():
            bound.add(var.name)
    return ordered


def _combine_sources(sources: Iterable[Optional[str]]) -> str:
    """Provenance of a derived estimate: feedback-touched wins;
    otherwise any guessed input taints the combination to default."""
    seen = {s for s in sources if s is not None}
    if SOURCE_FEEDBACK in seen:
        return SOURCE_FEEDBACK
    if SOURCE_DEFAULT in seen or not seen:
        return SOURCE_DEFAULT
    return SOURCE_INDEX


def _fill_sources(node: PlanNode) -> None:
    """Bottom-up ``est_source`` for nodes the compiler left unset."""
    for child in node.children:
        _fill_sources(child)
    if node.est_source is None:
        node.est_source = _combine_sources(
            c.est_source for c in node.children)


# ---------------------------------------------------------------------------
# Group compilation
# ---------------------------------------------------------------------------

def _place_filters(elements) -> List:
    """Reorder group elements so filters run as early as allowed.

    A filter moves directly after the last element that can bind one of
    its variables; filters containing (NOT) EXISTS keep SPARQL's
    end-of-group evaluation point. Relative order of non-filter
    elements is untouched.
    """
    non_filters = [e for e in elements if not isinstance(e, Filter)]
    placed: Dict[int, List[Filter]] = {}
    tail: List[Filter] = []
    for el in elements:
        if not isinstance(el, Filter):
            continue
        if _expr_has_exists(el.expr):
            tail.append(el)
            continue
        mentioned = expr_variables(el.expr)
        position = 0
        for i, other in enumerate(non_filters):
            if element_binding_vars(other) & mentioned:
                position = i + 1
        placed.setdefault(position, []).append(el)
    out: List = []
    out.extend(placed.get(0, []))
    for i, el in enumerate(non_filters):
        out.append(el)
        out.extend(placed.get(i + 1, []))
    out.extend(tail)
    return out


def compile_group(group: GroupGraphPattern, ctx, source: "ops.Operator",
                  bound: Set[str]) -> "ops.Operator":
    """Compile a group graph pattern on top of *source*.

    Returns the top operator of the chain; *bound* is the set of
    variable names known to be bound in incoming rows (used for join
    ordering) and is updated in place as elements bind more.
    """
    from .evaluator import _extract_spatial_restrictions

    restrictions = _extract_spatial_restrictions(group.elements, ctx)
    top = source
    for element in _place_filters(group.elements):
        in_est = top.node.est_rows or 1.0
        if isinstance(element, Filter):
            node = PlanNode("Filter", _filter_detail(element, restrictions),
                            est_rows=in_est * FILTER_SELECTIVITY)
            node.children.append(top.node)
            top = ops.FilterOp(node, top, element.expr)
        elif isinstance(element, BGP):
            top = _compile_bgp(element, ctx, top, bound, restrictions)
        elif isinstance(element, OptionalPattern):
            sub = compile_subplan(element.group, ctx, set(bound))
            node = PlanNode("LeftJoin", "optional",
                            est_rows=max(in_est,
                                         in_est * (sub.top.node.est_rows
                                                   or 1.0)))
            node.children.extend([top.node, sub.top.node])
            top = ops.LeftJoinOp(node, top, sub)
            bound |= group_binding_vars(element.group)
        elif isinstance(element, UnionPattern):
            subs = [compile_subplan(alt, ctx, set(bound))
                    for alt in element.alternatives]
            node = PlanNode(
                "Union", f"{len(subs)} alternatives",
                est_rows=sum(s.top.node.est_rows or 1.0 for s in subs),
            )
            node.children.append(top.node)
            node.children.extend(s.top.node for s in subs)
            top = ops.UnionOp(node, top, subs)
            bound |= element_binding_vars(element)
        elif isinstance(element, MinusPattern):
            sub = compile_subplan(element.group, ctx, set())
            node = PlanNode("Minus", est_rows=in_est)
            node.children.extend([top.node, sub.top.node])
            top = ops.MinusOp(node, top, sub)
        elif isinstance(element, Bind):
            node = PlanNode("Bind", f"?{element.var.name}", est_rows=in_est)
            node.children.append(top.node)
            top = ops.BindOp(node, top, element)
            bound.add(element.var.name)
        elif isinstance(element, InlineValues):
            node = PlanNode(
                "HashJoin",
                f"VALUES {len(element.rows)} rows",
                est_rows=in_est * max(1, len(element.rows)),
            )
            node.children.append(top.node)
            join_key = _static_join_key(bound, element)
            _arm_spill(node, ctx)
            top = ops.ValuesOp(node, top, element, join_key=join_key)
            bound |= element_binding_vars(element)
        elif isinstance(element, SubSelect):
            node = PlanNode("HashJoin", "subselect", est_rows=in_est)
            node.children.append(top.node)
            # Display-only: the sub-query is re-planned at execution,
            # so this child shows estimates with an explicit
            # ``rows=-`` (mark_executed never zeroes the subtree).
            display = plan_select(element.query, ctx).root
            display.display_only = True
            node.children.append(display)
            join_key = _static_join_key(bound, element)
            _arm_spill(node, ctx)
            top = ops.SubSelectOp(node, top, element.query,
                                  join_key=join_key)
            bound |= element_binding_vars(element)
        elif isinstance(element, ServicePattern):
            node = PlanNode(
                "ServiceExchange", str(element.endpoint), est_rows=in_est
            )
            node.signature = stats_mod.service_signature(element.endpoint)
            stats = getattr(ctx, "stats", None)
            remote_mean = (stats.estimate(node.signature)
                           if stats is not None else None)
            if remote_mean is not None:
                node.est_rows = in_est * remote_mean
                node.est_source = SOURCE_FEEDBACK
            node.children.append(top.node)
            join_key = _static_join_key(bound, element)
            _arm_spill(node, ctx)
            top = ops.ServiceOp(node, top, element, join_key=join_key)
            bound |= element_binding_vars(element)
        else:  # pragma: no cover - parser prevents this
            from .evaluator import EvaluationError

            raise EvaluationError(
                f"unknown element {type(element).__name__}"
            )
    return top


def _static_join_key(bound: Set[str], element) -> Tuple[str, ...]:
    """Plan-time join key for a hash join against *element*.

    The variables already bound upstream that the build side may also
    bind — the equality columns every probing row is guaranteed to
    share with key-complete build rows. The spill path partitions its
    build side by a stable hash of exactly these columns.
    """
    return tuple(sorted(bound & element_binding_vars(element)))


def _arm_spill(node: PlanNode, ctx) -> None:
    """Show ``spill=0`` on join nodes when a spill threshold is set."""
    if getattr(ctx, "spill_threshold", None) is not None:
        node.spill = 0


def _filter_detail(element: Filter, restrictions) -> str:
    mentioned = expr_variables(element.expr)
    pushed = sorted(v for v in mentioned if v in restrictions)
    if pushed:
        return "spatial on ?" + " ?".join(pushed)
    if _expr_has_exists(element.expr):
        return "exists"
    return "expr"


def compile_subplan(group: GroupGraphPattern, ctx,
                    bound: Set[str]) -> "ops.SubPlan":
    """A reseedable pipeline for OPTIONAL/UNION/MINUS sub-groups."""
    seed = ops.SeedOp(PlanNode("Seed", est_rows=1.0))
    top = compile_group(group, ctx, seed, bound)
    return ops.SubPlan(seed, top)


def _compile_bgp(bgp: BGP, ctx, source: "ops.Operator", bound: Set[str],
                 restrictions) -> "ops.Operator":
    graph = ctx.graph
    stats = getattr(ctx, "stats", None)
    ordered = order_patterns(bgp.patterns, bound, graph, restrictions,
                             stats=stats)
    in_est = source.node.est_rows or 1.0
    scan_nodes: List[PlanNode] = []
    signatures: List[str] = []
    out_est = in_est
    # Mirror BGPOp's batched-path dispatch so EXPLAIN shows the access
    # method execution will actually use: batched scans print
    # ``shards=N batch=K``; the legacy tuple-at-a-time and adaptive
    # paths print nothing extra (plain-graph EXPLAIN is unchanged).
    shard_count = getattr(graph, "shard_count", 1)
    batch_size = getattr(ctx, "batch_size", None)
    if batch_size is None and shard_count > 1:
        batch_size = ops.DEFAULT_BATCH_SIZE
    adaptive = (len(bgp.patterns) >= 2
                and getattr(ctx, "replan_ratio", None) is not None)
    batched = (not adaptive and batch_size is not None
               and hasattr(graph, "scan_batches"))
    for pattern, est, est_source, signature in ordered:
        spatial = (
            isinstance(pattern.o, Var)
            and pattern.o.name in restrictions
            and hasattr(graph, "spatial_candidates")
        )
        label = "SpatialIndexScan" if spatial else "IndexScan"
        detail = pattern_text(pattern)
        if spatial:
            detail += f" [rtree:{restrictions[pattern.o.name].relation}]"
        scan_node = PlanNode(label, detail, est_rows=est)
        scan_node.est_source = est_source
        scan_node.signature = signature
        if batched:
            scan_node.access = f"shards={shard_count} batch={batch_size}"
        scan_nodes.append(scan_node)
        signatures.append(signature)
        out_est *= max(est, 0.0)
        bound.update(v.name for v in pattern.variables())
    node = PlanNode(
        "IndexNestedLoopJoin",
        f"{len(ordered)} patterns",
        est_rows=out_est,
    )
    node.signature = stats_mod.bgp_signature(signatures)
    # Measured output-per-input for the whole pattern set (any join
    # order) trumps the product of per-scan estimates.
    bgp_feedback = stats.estimate(node.signature) if stats is not None \
        else None
    if bgp_feedback is not None:
        node.est_rows = in_est * bgp_feedback
        node.est_source = SOURCE_FEEDBACK
    else:
        node.est_source = _combine_sources(
            [source.node.est_source]
            + [s.est_source for s in scan_nodes])
    node.children.append(source.node)
    node.children.extend(scan_nodes)
    return ops.BGPOp(node, source, [entry[0] for entry in ordered],
                     restrictions, scan_nodes, signatures=signatures)


# ---------------------------------------------------------------------------
# Query-level planning
# ---------------------------------------------------------------------------

def plan_group(group: GroupGraphPattern, ctx,
               bound: Optional[Set[str]] = None) -> "ops.SubPlan":
    """Compile a bare group (the eval_group facade's entry point)."""
    seed = ops.SeedOp(PlanNode("Seed", est_rows=1.0))
    top = compile_group(group, ctx, seed, set(bound or ()))
    _fill_sources(top.node)
    return ops.SubPlan(seed, top)


def plan_select(query: SelectQuery, ctx) -> "ops.SubPlan":
    from .evaluator import _projection_has_aggregate

    seed = ops.SeedOp(PlanNode("Seed", est_rows=1.0))
    top = compile_group(query.where, ctx, seed, set())

    needs_grouping = bool(query.group_by) or _projection_has_aggregate(query)
    in_est = top.node.est_rows or 1.0
    if needs_grouping:
        est = max(1.0, in_est / 4.0) if query.group_by else 1.0
        detail = (f"group by {len(query.group_by)} keys"
                  if query.group_by else "implicit group")
        node = PlanNode("Aggregate", detail, est_rows=est)
        node.children.append(top.node)
        top = ops.AggregateOp(node, top, query)

    if query.order_by:
        sort_est = top.node.est_rows or 1.0
        use_topk = query.limit is not None and not query.distinct
        if use_topk:
            k = query.limit + query.offset
            node = PlanNode("TopK", f"k={k}", est_rows=min(float(k), sort_est))
            node.children.append(top.node)
            top = ops.TopKOp(node, top, query.order_by, k)
        else:
            node = PlanNode(
                "OrderBy", f"{len(query.order_by)} keys", est_rows=sort_est
            )
            node.children.append(top.node)
            top = ops.OrderByOp(node, top, query.order_by)

    if not needs_grouping and query.projections:
        names = " ".join(f"?{p.var.name}" for p in query.projections)
        node = PlanNode("Project", names, est_rows=top.node.est_rows)
        node.children.append(top.node)
        top = ops.ProjectOp(node, top, query)

    if query.distinct:
        node = PlanNode("Distinct", est_rows=top.node.est_rows)
        node.children.append(top.node)
        top = ops.DistinctOp(node, top)

    if query.offset or query.limit is not None:
        detail = []
        if query.limit is not None:
            detail.append(f"limit={query.limit}")
        if query.offset:
            detail.append(f"offset={query.offset}")
        prev_est = top.node.est_rows or 1.0
        est = prev_est - query.offset
        if query.limit is not None:
            est = min(float(query.limit), est)
        node = PlanNode("Slice", " ".join(detail), est_rows=max(0.0, est))
        node.children.append(top.node)
        top = ops.SliceOp(node, top, query.limit, query.offset)

    root = PlanNode("Select",
                    "distinct" if query.distinct else "",
                    est_rows=top.node.est_rows)
    root.children.append(top.node)
    _fill_sources(root)
    return ops.SubPlan(seed, top, root=root)


def plan_query(query: Query, ctx) -> "ops.SubPlan":
    """Plan any query form (the EXPLAIN entry point)."""
    if isinstance(query, SelectQuery):
        return plan_select(query, ctx)
    if isinstance(query, AskQuery):
        sub = plan_group(query.where, ctx)
        root = PlanNode("Ask", est_rows=1.0)
        root.children.append(sub.top.node)
        _fill_sources(root)
        return ops.SubPlan(sub.seed, sub.top, root=root)
    if isinstance(query, ConstructQuery):
        sub = plan_group(query.where, ctx)
        detail = f"{len(query.template)} template triples"
        if query.limit is not None:
            detail += f" limit={query.limit}"
        root = PlanNode("Construct", detail,
                        est_rows=(sub.top.node.est_rows or 1.0)
                        * max(1, len(query.template)))
        root.children.append(sub.top.node)
        _fill_sources(root)
        return ops.SubPlan(sub.seed, sub.top, root=root)
    if isinstance(query, DescribeQuery):
        root = PlanNode("Describe", f"{len(query.terms)} targets")
        if query.where is not None:
            sub = plan_group(query.where, ctx)
            root.children.append(sub.top.node)
            _fill_sources(root)
            return ops.SubPlan(sub.seed, sub.top, root=root)
        seed = ops.SeedOp(PlanNode("Seed", est_rows=1.0))
        _fill_sources(root)
        return ops.SubPlan(seed, seed, root=root)
    from .evaluator import EvaluationError

    raise EvaluationError(f"unsupported query type {type(query).__name__}")
