"""SPARQL builtin and extension functions.

Includes the GeoSPARQL ``geof:`` function family evaluated with the
:mod:`repro.geometry` engine, and the Strabon ``strdf:`` temporal
extension (period relations over ``xsd:dateTime`` valid times).
"""

from __future__ import annotations

import math
import re
from datetime import datetime, timezone
from typing import Callable, Dict, Optional

from ..geometry import Geometry, wkt_dumps, wkt_loads
from ..geometry import ops as geo_ops
from ..geometry.wkt import split_crs, to_wkt_literal
from ..rdf.namespace import GEOF, STRDF, XSD
from ..rdf.terms import (
    BNode,
    GEO_WKT_LITERAL,
    IRI,
    Literal,
    Term,
    parse_datetime,
    to_utc,
)


class SparqlValueError(ValueError):
    """Raised when an expression cannot be evaluated (SPARQL 'error')."""


# ---------------------------------------------------------------------------
# Geometry literal handling (with a parse cache — WKT parsing dominates
# spatial query time otherwise)
# ---------------------------------------------------------------------------

_GEOM_CACHE: Dict[str, Geometry] = {}
_GEOM_CACHE_MAX = 100_000


def geometry_from_term(term: Term) -> Geometry:
    """Parse a geo:wktLiteral (or plain WKT literal) into a Geometry."""
    if not isinstance(term, Literal):
        raise SparqlValueError(f"not a geometry literal: {term!r}")
    key = term.lexical
    geom = _GEOM_CACHE.get(key)
    if geom is None:
        try:
            geom = wkt_loads(key)
        except Exception as exc:
            raise SparqlValueError(f"bad WKT literal: {exc}") from None
        if len(_GEOM_CACHE) >= _GEOM_CACHE_MAX:
            _GEOM_CACHE.clear()
        _GEOM_CACHE[key] = geom
    return geom


def geometry_to_term(geom: Geometry) -> Literal:
    return Literal(to_wkt_literal(geom), datatype=GEO_WKT_LITERAL)


def clear_geometry_cache() -> None:
    _GEOM_CACHE.clear()


# ---------------------------------------------------------------------------
# Effective boolean value / numeric helpers
# ---------------------------------------------------------------------------

def effective_boolean_value(term) -> bool:
    """SPARQL EBV: errors raise, which FILTER treats as false."""
    if isinstance(term, bool):
        return term
    if isinstance(term, Literal):
        v = term.value
        if isinstance(v, bool):
            return v
        if isinstance(v, (int, float)):
            return bool(v) and not (isinstance(v, float) and math.isnan(v))
        if term.datatype in (None, XSD.string) or term.lang:
            return len(term.lexical) > 0
        raise SparqlValueError(f"no EBV for {term!r}")
    raise SparqlValueError(f"no EBV for {term!r}")


def numeric_value(term) -> float:
    if isinstance(term, Literal):
        v = term.value
        if isinstance(v, bool):
            raise SparqlValueError("boolean is not numeric")
        if isinstance(v, (int, float)):
            return v
        try:
            return float(term.lexical)
        except ValueError:
            pass
    raise SparqlValueError(f"not numeric: {term!r}")


def string_value(term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, (IRI, BNode)):
        return str(term)
    raise SparqlValueError(f"no string value for {term!r}")


def string_literal_value(term) -> str:
    """Strict form: SPARQL string functions require a string literal."""
    if isinstance(term, Literal) and (
        term.datatype in (None, XSD.string) or term.lang
    ):
        return term.lexical
    raise SparqlValueError(f"not a string literal: {term!r}")


def datetime_value(term) -> datetime:
    if isinstance(term, Literal):
        v = term.value
        if isinstance(v, datetime):
            return to_utc(v)
        try:
            return to_utc(parse_datetime(term.lexical))
        except ValueError:
            pass
    raise SparqlValueError(f"not a dateTime: {term!r}")


# ---------------------------------------------------------------------------
# GeoSPARQL geof: functions
# ---------------------------------------------------------------------------

def _spatial_predicate(fn: Callable[[Geometry, Geometry], bool]):
    def impl(a, b):
        ga = geometry_from_term(a)
        gb = geometry_from_term(b)
        return Literal(fn(ga, gb))

    return impl


def _geof_distance(a, b, *unit):
    ga = geometry_from_term(a)
    gb = geometry_from_term(b)
    return Literal(float(geo_ops.distance(ga, gb)))


def _geof_buffer(a, radius, *unit):
    geom = geometry_from_term(a)
    return geometry_to_term(geo_ops.buffer(geom, numeric_value(radius)))


def _geof_envelope(a):
    return geometry_to_term(geo_ops.envelope(geometry_from_term(a)))


def _geof_convex_hull(a):
    return geometry_to_term(geo_ops.convex_hull(geometry_from_term(a)))


def _geof_boundary(a):
    geom = geometry_from_term(a)
    from ..geometry import LineString, MultiLineString, Polygon

    if isinstance(geom, Polygon):
        rings = [LineString(r.vertices) for r in geom.rings()]
        if len(rings) == 1:
            return geometry_to_term(rings[0])
        return geometry_to_term(MultiLineString(rings))
    raise SparqlValueError("boundary only implemented for polygons")


def _geof_area(a):
    """Extension (not in GeoSPARQL 1.0, used by Geographica): planar area."""
    return Literal(float(geo_ops.area(geometry_from_term(a))))


GEOF_FUNCTIONS: Dict[str, Callable] = {
    str(GEOF.sfIntersects): _spatial_predicate(geo_ops.intersects),
    str(GEOF.sfContains): _spatial_predicate(geo_ops.contains),
    str(GEOF.sfWithin): _spatial_predicate(geo_ops.within),
    str(GEOF.sfTouches): _spatial_predicate(geo_ops.touches),
    str(GEOF.sfDisjoint): _spatial_predicate(geo_ops.disjoint),
    str(GEOF.sfCrosses): _spatial_predicate(geo_ops.crosses),
    str(GEOF.sfOverlaps): _spatial_predicate(geo_ops.overlaps),
    str(GEOF.sfEquals): _spatial_predicate(geo_ops.equals),
    str(GEOF.distance): _geof_distance,
    str(GEOF.buffer): _geof_buffer,
    str(GEOF.envelope): _geof_envelope,
    str(GEOF.convexHull): _geof_convex_hull,
    str(GEOF.boundary): _geof_boundary,
    str(GEOF.area): _geof_area,
}

# The names of geof functions that are binary spatial relations; the
# evaluator uses this set for index pushdown in spatial selections.
SPATIAL_RELATIONS = {
    str(GEOF.sfIntersects): "intersects",
    str(GEOF.sfContains): "contains",
    str(GEOF.sfWithin): "within",
    str(GEOF.sfTouches): "touches",
    str(GEOF.sfCrosses): "crosses",
    str(GEOF.sfOverlaps): "overlaps",
    str(GEOF.sfEquals): "equals",
}


# ---------------------------------------------------------------------------
# Strabon strdf: temporal functions (valid time as xsd:dateTime pairs)
# ---------------------------------------------------------------------------

def _temporal(fn):
    def impl(*args):
        times = [datetime_value(a) for a in args]
        return Literal(fn(*times))

    return impl


STRDF_FUNCTIONS: Dict[str, Callable] = {
    str(STRDF.before): _temporal(lambda a, b: a < b),
    str(STRDF.after): _temporal(lambda a, b: a > b),
    str(STRDF.during): _temporal(lambda t, s, e: s <= t <= e),
    str(STRDF.periodOverlaps): _temporal(
        lambda s1, e1, s2, e2: s1 <= e2 and s2 <= e1
    ),
}


# ---------------------------------------------------------------------------
# Builtin (keyword) functions
# ---------------------------------------------------------------------------

def _fn_str(term):
    return Literal(string_value(term))


def _fn_lang(term):
    if isinstance(term, Literal):
        return Literal(term.lang or "")
    raise SparqlValueError("LANG on non-literal")


def _fn_datatype(term):
    if isinstance(term, Literal):
        if term.lang:
            return IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
        return term.datatype or XSD.string
    raise SparqlValueError("DATATYPE on non-literal")


def _fn_regex(text, pattern, *flags):
    re_flags = 0
    if flags and "i" in string_value(flags[0]):
        re_flags |= re.IGNORECASE
    return Literal(
        re.search(string_value(pattern), string_value(text), re_flags)
        is not None
    )


def _fn_replace(text, pattern, repl, *flags):
    re_flags = 0
    if flags and "i" in string_value(flags[0]):
        re_flags |= re.IGNORECASE
    return Literal(
        re.sub(string_value(pattern), string_value(repl),
               string_value(text), flags=re_flags)
    )


def _fn_substr(text, start, *length):
    s = string_value(text)
    begin = int(numeric_value(start)) - 1  # SPARQL is 1-based
    if length:
        return Literal(s[begin: begin + int(numeric_value(length[0]))])
    return Literal(s[begin:])


def _fn_concat(*args):
    return Literal("".join(string_value(a) for a in args))


def _fn_if(cond, then, els):
    # Evaluated eagerly by the evaluator; args already terms.
    return then if effective_boolean_value(cond) else els


def _fn_coalesce(*args):
    for a in args:
        if a is not None:
            return a
    raise SparqlValueError("COALESCE: all arguments unbound")


def _fn_now():
    return Literal(datetime.now(timezone.utc))


def _dt_part(part):
    def impl(term):
        return Literal(getattr(datetime_value(term), part))

    return impl


def _round_fn(fn):
    def impl(term):
        v = numeric_value(term)
        result = fn(v)
        return Literal(int(result)) if float(result).is_integer() else Literal(
            float(result)
        )

    return impl


def _fn_langmatches(tag, rng):
    tag_s = string_value(tag).lower()
    rng_s = string_value(rng).lower()
    if rng_s == "*":
        return Literal(bool(tag_s))
    return Literal(tag_s == rng_s or tag_s.startswith(rng_s + "-"))


BUILTIN_FUNCTIONS: Dict[str, Callable] = {
    "STR": _fn_str,
    "LANG": _fn_lang,
    "DATATYPE": _fn_datatype,
    "REGEX": _fn_regex,
    "REPLACE": _fn_replace,
    "CONTAINS": lambda a, b: Literal(string_value(b) in string_value(a)),
    "STRSTARTS": lambda a, b: Literal(
        string_value(a).startswith(string_value(b))
    ),
    "STRENDS": lambda a, b: Literal(
        string_value(a).endswith(string_value(b))
    ),
    "STRLEN": lambda a: Literal(len(string_literal_value(a))),
    "SUBSTR": _fn_substr,
    "UCASE": lambda a: Literal(string_literal_value(a).upper()),
    "LCASE": lambda a: Literal(string_literal_value(a).lower()),
    "CONCAT": _fn_concat,
    "ABS": _round_fn(abs),
    "CEIL": _round_fn(math.ceil),
    "FLOOR": _round_fn(math.floor),
    "ROUND": _round_fn(round),
    "YEAR": _dt_part("year"),
    "MONTH": _dt_part("month"),
    "DAY": _dt_part("day"),
    "HOURS": _dt_part("hour"),
    "MINUTES": _dt_part("minute"),
    "SECONDS": _dt_part("second"),
    "NOW": _fn_now,
    "IF": _fn_if,
    "COALESCE": _fn_coalesce,
    "ISIRI": lambda a: Literal(isinstance(a, IRI)),
    "ISURI": lambda a: Literal(isinstance(a, IRI)),
    "ISBLANK": lambda a: Literal(isinstance(a, BNode)),
    "ISLITERAL": lambda a: Literal(isinstance(a, Literal)),
    "ISNUMERIC": lambda a: Literal(
        isinstance(a, Literal) and a.is_numeric
    ),
    "LANGMATCHES": _fn_langmatches,
    "IRI": lambda a: IRI(string_value(a)),
    "URI": lambda a: IRI(string_value(a)),
    "BNODE": lambda *a: BNode(),
    "STRDT": lambda a, dt: Literal(string_value(a), datatype=IRI(str(dt))),
    "STRLANG": lambda a, lang: Literal(
        string_value(a), lang=string_value(lang)
    ),
}


EXTENSION_FUNCTIONS: Dict[str, Callable] = {}
EXTENSION_FUNCTIONS.update(GEOF_FUNCTIONS)
EXTENSION_FUNCTIONS.update(STRDF_FUNCTIONS)


def register_extension(iri: str, fn: Callable) -> None:
    """Register a custom IRI-named SPARQL function."""
    EXTENSION_FUNCTIONS[str(iri)] = fn
