"""GeoSPARQL federation engine.

Section 5 of the paper lists federated GeoSPARQL as an open problem
("there is currently no query engine that can answer GeoSPARQL queries
over such a federation ... the only system that comes close is
SemaGrow"). This module implements the two classic federation styles:

- **explicit**: ``SERVICE <endpoint> { ... }`` patterns, dispatched to a
  registered endpoint;
- **transparent**: queries without SERVICE run over a virtual union of
  all registered endpoints, with predicate-based source selection so a
  triple pattern only visits endpoints that can answer it.

Endpoints wrap local graphs (optionally Strabon stores) and can carry a
simulated network latency so federation overhead is measurable.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Set

from ..rdf.graph import Graph
from ..rdf.namespace import NamespaceManager
from ..rdf.terms import Term, Triple
from .ast import GroupGraphPattern
from .evaluator import Context, eval_group, eval_query
from .parser import parse_query
from .results import Solution, SPARQLResult


class SparqlEndpoint:
    """A queryable SPARQL endpoint over a local graph.

    ``latency_s`` simulates one network round trip per request, letting
    benchmarks measure federation overhead realistically.
    """

    def __init__(self, graph: Graph, name: str = "endpoint",
                 latency_s: float = 0.0):
        self.graph = graph
        self.name = name
        self.latency_s = latency_s
        self.request_count = 0

    def _charge(self) -> None:
        self.request_count += 1
        if self.latency_s > 0:
            time.sleep(self.latency_s)

    def query(self, text: str) -> SPARQLResult:
        """Answer a full SPARQL query (one simulated round trip)."""
        self._charge()
        return self.graph.query(text)

    def select_group(self, group: GroupGraphPattern,
                     seeds: Optional[List[Solution]] = None
                     ) -> List[Solution]:
        """Evaluate a group graph pattern (used for SERVICE dispatch)."""
        self._charge()
        ctx = Context(self.graph)
        return eval_group(group, seeds if seeds is not None else [{}], ctx)

    def predicates(self) -> Set[Term]:
        """The predicate vocabulary of this endpoint (source selection)."""
        return set(self.graph.predicates())

    def __repr__(self) -> str:
        return f"<SparqlEndpoint {self.name} ({len(self.graph)} triples)>"


class _FederatedView:
    """A virtual graph that unions registered endpoints.

    Implements the minimal graph protocol the evaluator needs
    (``triples`` and ``namespaces``) plus predicate-based source
    selection: a pattern with a bound predicate only visits endpoints
    whose vocabulary contains it.
    """

    def __init__(self, endpoints: List[SparqlEndpoint]):
        self.endpoints = endpoints
        self.namespaces = NamespaceManager()
        self._predicate_index: Dict[Term, List[SparqlEndpoint]] = {}
        for ep in endpoints:
            for predicate in ep.predicates():
                self._predicate_index.setdefault(predicate, []).append(ep)

    def _select_sources(self, predicate: Optional[Term]
                        ) -> List[SparqlEndpoint]:
        if predicate is not None:
            return self._predicate_index.get(predicate, [])
        return self.endpoints

    def triples(self, pattern) -> Iterator[Triple]:
        s, p, o = pattern
        for endpoint in self._select_sources(p):
            yield from endpoint.graph.triples(pattern)

    def predicates(self):
        return iter(self._predicate_index)

    def __len__(self) -> int:
        return sum(len(ep.graph) for ep in self.endpoints)


class FederationEngine:
    """Answers (Geo)SPARQL queries over a federation of endpoints."""

    def __init__(self):
        self._endpoints: Dict[str, SparqlEndpoint] = {}

    def register(self, iri: str, endpoint: SparqlEndpoint) -> None:
        self._endpoints[str(iri)] = endpoint

    def endpoint(self, iri: str) -> SparqlEndpoint:
        return self._endpoints[str(iri)]

    @property
    def endpoints(self) -> List[SparqlEndpoint]:
        return list(self._endpoints.values())

    def _resolve_service(self, endpoint_iri: str,
                         group: GroupGraphPattern) -> List[Solution]:
        endpoint = self._endpoints.get(endpoint_iri)
        if endpoint is None:
            raise KeyError(f"unregistered SERVICE endpoint <{endpoint_iri}>")
        return endpoint.select_group(group)

    def query(self, text: str) -> SPARQLResult:
        """Evaluate a query over the federation.

        SERVICE patterns go to their named endpoint; everything else is
        matched against the virtual union with source selection.
        """
        view = _FederatedView(self.endpoints)
        ast = parse_query(text, namespaces=view.namespaces)
        ctx = Context(view, service_resolver=self._resolve_service)
        return eval_query(ast, ctx)

    def request_counts(self) -> Dict[str, int]:
        """Requests each endpoint served (for benchmark reporting)."""
        return {
            iri: ep.request_count for iri, ep in self._endpoints.items()
        }
