"""GeoSPARQL federation engine.

Section 5 of the paper lists federated GeoSPARQL as an open problem
("there is currently no query engine that can answer GeoSPARQL queries
over such a federation ... the only system that comes close is
SemaGrow"). This module implements the two classic federation styles:

- **explicit**: ``SERVICE <endpoint> { ... }`` patterns, dispatched to a
  registered endpoint;
- **transparent**: queries without SERVICE run over a virtual union of
  all registered endpoints, with predicate-based source selection so a
  triple pattern only visits endpoints that can answer it.

Endpoints wrap local graphs (optionally Strabon stores) and can carry a
simulated network latency so federation overhead is measurable.

Every dispatch to an endpoint goes through the engine's
:class:`~repro.resilience.RetryPolicy` (and per-endpoint circuit
breaker, when configured). ``query(..., partial_results=True)`` turns
endpoint failures into entries of the result's ``failures`` report
instead of exceptions, so one dead member cannot take down the whole
federation.

With a parallel :class:`~repro.parallel.WorkerPool`, endpoint work
fans out: the source-selection harvest, each pattern's per-endpoint
scans, and every SERVICE group in the query are dispatched
concurrently. Results merge in endpoint/pattern order and failures are
applied lowest-index first, so the answer (rows *and* the failures
report) is byte-identical to the serial engine's. Dispatches to the
*same* endpoint are serialized on a per-endpoint lock — circuit
breaker state and retry counters are per endpoint, and one connection
per member is also what a real federation client would hold.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Set

from ..governance import (
    AdmissionController,
    BudgetExceeded,
    DeadlineExceeded,
    GovernanceStats,
    QueryBudget,
)
from ..parallel import TaskOutcome, WorkerDeath, WorkerPool
from ..rdf.graph import Graph
from ..rdf.namespace import NamespaceManager
from ..rdf.terms import Term, Triple
from ..resilience import CircuitBreaker, EndpointPool, ResilienceStats, \
    RetryPolicy, no_retry
from .ast import (
    GroupGraphPattern,
    MinusPattern,
    OptionalPattern,
    ServicePattern,
    SubSelect,
    UnionPattern,
    Var,
)
from .evaluator import Context, eval_group, eval_query
from .parser import parse_query
from .results import Solution, SPARQLResult
from .stats import federation_signature


def _absorbable(exc: BaseException) -> bool:
    """May partial mode absorb this failure as a degraded source?

    Network-ish failures (connection errors, injected outages, open
    circuits) degrade: that is the whole point of partial mode. Two
    families must propagate instead:

    - :class:`~repro.parallel.WorkerDeath` — a failure of *our*
      execution substrate, not of the remote source; masking it would
      hide lost work (the service maps it to ``worker_died``);
    - budget exhaustion other than the deadline — fetch/row/scan
      limits and explicit cancellation are the query's own resource
      verdict, not a source outage, so they surface as their typed
      codes. The *deadline* stays absorbable: degrading to the sources
      already answered is exactly what ``partial_results`` + deadline
      promises.
    """
    if isinstance(exc, WorkerDeath):
        return False
    if isinstance(exc, BudgetExceeded) \
            and not isinstance(exc, DeadlineExceeded):
        return False
    return True


def _collect_services(group: GroupGraphPattern) -> List[ServicePattern]:
    """Every SERVICE pattern in *group*, in syntactic (AST walk) order.

    Walk order is what makes eager dispatch deterministic: the prefetch
    task list — and therefore which failure wins under the
    lowest-index rule — depends only on the query text.
    """
    found: List[ServicePattern] = []
    for element in group.elements:
        if isinstance(element, ServicePattern):
            found.append(element)
            found.extend(_collect_services(element.group))
        elif isinstance(element, (OptionalPattern, MinusPattern)):
            found.extend(_collect_services(element.group))
        elif isinstance(element, UnionPattern):
            for alternative in element.alternatives:
                found.extend(_collect_services(alternative))
        elif isinstance(element, SubSelect):
            found.extend(_collect_services(element.query.where))
    return found


class SparqlEndpoint:
    """A queryable SPARQL endpoint over a local graph.

    ``latency_s`` simulates one network round trip per request, letting
    benchmarks measure federation overhead realistically.
    ``request_count`` counts *logical* requests — a retried attempt
    that failed before reaching the endpoint is not double-counted.
    """

    def __init__(self, graph: Graph, name: str = "endpoint",
                 latency_s: float = 0.0):
        self.graph = graph
        self.name = name
        self.latency_s = latency_s
        self.request_count = 0

    def _charge(self) -> None:
        self.request_count += 1
        if self.latency_s > 0:
            time.sleep(self.latency_s)

    def query(self, text: str) -> SPARQLResult:
        """Answer a full SPARQL query (one simulated round trip)."""
        self._charge()
        return self.graph.query(text)

    def select_group(self, group: GroupGraphPattern,
                     seeds: Optional[List[Solution]] = None
                     ) -> List[Solution]:
        """Evaluate a group graph pattern (used for SERVICE dispatch)."""
        self._charge()
        ctx = Context(self.graph)
        return eval_group(group, seeds if seeds is not None else [{}], ctx)

    def triples(self, pattern) -> Iterator[Triple]:
        """Pattern-level access for the transparent union (not charged)."""
        return self.graph.triples(pattern)

    def predicates(self) -> Set[Term]:
        """The predicate vocabulary of this endpoint (source selection)."""
        return set(self.graph.predicates())

    def __repr__(self) -> str:
        return f"<SparqlEndpoint {self.name} ({len(self.graph)} triples)>"


class _FederatedView:
    """A virtual graph that unions registered endpoints.

    Implements the minimal graph protocol the evaluator needs
    (``triples`` and ``namespaces``) plus predicate-based source
    selection: a pattern with a bound predicate only visits endpoints
    whose vocabulary contains it.

    Endpoint access goes through *dispatch* (retry/breaker). In
    partial mode an endpoint that fails — at vocabulary harvest or at
    pattern matching — is marked down for the rest of the query and
    recorded in *failures* instead of raising.
    """

    def __init__(self, endpoints: Dict[str, SparqlEndpoint],
                 dispatch: Callable, partial: bool = False,
                 failures: Optional[Dict[str, str]] = None,
                 budget: Optional[QueryBudget] = None,
                 pool: Optional[WorkerPool] = None,
                 tracer=None, stats_store=None):
        self.endpoints = dict(endpoints)
        self._dispatch = dispatch
        self.partial = partial
        self.failures = failures if failures is not None else {}
        self.budget = budget
        self.pool = pool
        self._tracer = tracer
        #: Optional StatsStore: per-endpoint scan row-counts feed back
        #: into it (keyed by ``fed(...)`` signatures) and
        #: :meth:`feedback_estimate` serves them to the planner.
        self.stats_store = stats_store
        self.namespaces = NamespaceManager()
        self._down: Set[str] = set()
        self._predicate_index: Dict[Term, List[str]] = {}
        self._harvest()

    def _harvest(self) -> None:
        """Collect each endpoint's predicate vocabulary (concurrently
        when the pool overlaps); failures are applied in registration
        order either way, so the surviving member set is identical."""
        items = list(self.endpoints.items())

        def one(item, tracer=None):
            iri, __ = item
            self._check_time(iri)
            return self._dispatch(iri, lambda ep: ep.predicates(),
                                  tracer=tracer)

        for (iri, __), outcome in zip(
                items, self._fan_out(one, items, "federation.harvest")):
            if outcome.error is not None:
                self._mark_down(iri, outcome.error)
                continue
            for predicate in outcome.value:
                self._predicate_index.setdefault(predicate, []).append(iri)

    def _fan_out(self, fn, items, label):
        """Outcomes of ``fn(item, tracer=...)`` per item, in item order.

        With a parallel pool the items overlap (each task records into
        a private adopted tracer); otherwise this is a plain loop with
        the query tracer, preserving the classic serial span shapes.
        """
        if (self.pool is not None and self.pool.parallel
                and len(items) > 1):
            return self.pool.run_tasks(fn, items, tracer=self._tracer,
                                       label=label,
                                       task_label="federation.endpoint",
                                       pass_tracer=True)
        outcomes = []
        for i, item in enumerate(items):
            try:
                outcomes.append(
                    TaskOutcome(i, value=fn(item, tracer=self._tracer)))
            except Exception as exc:
                outcomes.append(TaskOutcome(i, error=exc))
        return outcomes

    def _check_time(self, iri: str) -> None:
        """Raise when the query budget has no time left for a dispatch
        (the per-endpoint shed of :meth:`_shed_if_out_of_time`, shaped
        as an exception so it works inside pool tasks)."""
        if self.budget is not None and self.budget.deadline_expired:
            raise DeadlineExceeded(
                "query deadline exhausted before dispatch",
                self.budget.snapshot(),
            )

    def _mark_down(self, iri: str, exc: BaseException) -> None:
        if not self.partial or not _absorbable(exc):
            raise exc
        self._down.add(iri)
        self.failures[iri] = f"{type(exc).__name__}: {exc}"

    def _select_sources(self, predicate: Optional[Term]) -> List[str]:
        if predicate is not None:
            return self._predicate_index.get(predicate, [])
        return list(self.endpoints)

    def _record_scan(self, iri: str, pattern, rows: int) -> None:
        """Feed one endpoint scan's row count back into the store."""
        if self.stats_store is None:
            return
        s, p, o = pattern
        self.stats_store.record(
            federation_signature(iri, s, p, o), float(rows))

    def feedback_estimate(self, pattern, bound) -> Optional[float]:
        """Planner hook: recorded rows for this pattern, summed over
        the sources selection would visit (``None`` when no endpoint
        has feedback for the shape yet).

        This is what turns harvest row-counts into source-selection
        estimates: once a federated query has run, the planner costs
        each pattern by what the member endpoints actually returned
        instead of the flat virtual-union default.
        """
        if self.stats_store is None:
            return None
        s, p, o = pattern.s, pattern.p, pattern.o
        if isinstance(p, Var) and p.name in bound:
            # A join-bound predicate has no stable per-endpoint
            # signature (the concrete IRI varies per row).
            return None
        s_arg = None if isinstance(s, Var) and s.name not in bound else s
        o_arg = None if isinstance(o, Var) and o.name not in bound else o
        predicate = None if isinstance(p, Var) else p
        total, seen = 0.0, False
        for iri in self._select_sources(predicate):
            if iri in self._down:
                continue
            mean = self.stats_store.estimate(
                federation_signature(iri, s_arg, predicate, o_arg))
            if mean is not None:
                total += mean
                seen = True
        return total if seen else None

    def triples(self, pattern) -> Iterator[Triple]:
        s, p, o = pattern
        sources = [
            iri for iri in self._select_sources(p) if iri not in self._down
        ]
        if self.pool is not None and self.pool.parallel and len(sources) > 1:
            # Fan the pattern out across its candidate members; merge
            # in source-selection order so the triple stream is
            # byte-identical to the serial scan below.
            def one(iri, tracer=None):
                self._check_time(iri)
                return self._dispatch(
                    iri, lambda ep: list(ep.triples(pattern)),
                    tracer=tracer,
                )

            for iri, outcome in zip(
                    sources,
                    self._fan_out(one, sources, "federation.scan")):
                if outcome.error is not None:
                    self._mark_down(iri, outcome.error)
                    continue
                # Recorded at merge time, in source-selection order, so
                # EWMA folding is identical however the scans overlap.
                self._record_scan(iri, pattern, len(outcome.value))
                yield from outcome.value
            return
        for iri in sources:
            if iri in self._down:
                continue
            try:
                self._check_time(iri)
                matched = self._dispatch(
                    iri, lambda ep: list(ep.triples(pattern))
                )
            except Exception as exc:
                self._mark_down(iri, exc)
                continue
            self._record_scan(iri, pattern, len(matched))
            yield from matched

    def predicates(self):
        return iter(self._predicate_index)

    def __len__(self) -> int:
        return sum(len(ep.graph) for ep in self.endpoints.values())


#: Shared fallback pool: inline execution, no threads, no state.
_SERIAL_POOL = WorkerPool(workers=1)


class FederationEngine:
    """Answers (Geo)SPARQL queries over a federation of endpoints."""

    def __init__(self, retry_policy: Optional[RetryPolicy] = None,
                 breaker_factory: Optional[
                     Callable[[], CircuitBreaker]] = None,
                 admission: Optional[AdmissionController] = None,
                 tracer=None,
                 pool: Optional[WorkerPool] = None,
                 eager_service: Optional[bool] = None,
                 stats_store=None,
                 replan_ratio: Optional[float] = None):
        self._endpoints: Dict[str, SparqlEndpoint] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._locks: Dict[str, threading.Lock] = {}
        #: Sources backed by a replica set instead of one endpoint;
        #: their dispatches go through the pool (failover + hedging)
        #: rather than the single-endpoint retry/breaker path.
        self._pools: Dict[str, EndpointPool] = {}
        self._breaker_factory = breaker_factory
        self.retry_policy = retry_policy or no_retry()
        #: Execution substrate for endpoint fan-out. The default serial
        #: pool reproduces the classic engine exactly; a parallel pool
        #: overlaps endpoint latency without changing any output.
        self.pool = pool if pool is not None else _SERIAL_POOL
        #: Dispatch every SERVICE group up front (concurrently, through
        #: the pool) instead of on first pull. Defaults to on exactly
        #: when the pool can overlap; forcing it ``True`` on a serial
        #: engine makes its dispatch sequence byte-compatible with a
        #: parallel engine's — what the equivalence suite pins down.
        self.eager_service = (self.pool.parallel if eager_service is None
                              else eager_service)
        #: One stats tree for the engine; every dispatch records into
        #: the per-endpoint labeled child, so ``stats.attempts`` is the
        #: engine total while ``stats.labeled(endpoint=iri)`` carries
        #: the per-endpoint breakdown (no double counting even when
        #: the retry policy instance is shared across engines).
        self.stats = ResilienceStats()
        #: Optional bounded-concurrency guard for ``query()``; when
        #: configured, excess queries are shed with ``Overloaded``.
        self.admission = admission
        self.governance = (admission.stats if admission is not None
                           else GovernanceStats())
        #: Default tracer for ``query()`` (per-call ``tracer=`` wins).
        self.tracer = tracer
        #: Optional :class:`~repro.sparql.StatsStore` (named apart from
        #: ``stats``, the engine's ResilienceStats): per-endpoint scan
        #: row counts feed it, and the planner's source-selection
        #: estimates consult it on the next query.
        self.stats_store = stats_store
        #: Divergence ratio arming mid-query re-planning (None = off).
        self.replan_ratio = replan_ratio

    def register(self, iri: str, endpoint: SparqlEndpoint) -> None:
        iri = str(iri)
        self._endpoints[iri] = endpoint
        self._locks[iri] = threading.Lock()
        if self._breaker_factory is not None:
            self._breakers[iri] = self._breaker_factory()

    def register_replicas(self, iri: str,
                          replicas: List[SparqlEndpoint],
                          **pool_kwargs) -> EndpointPool:
        """Register one federation source served by a replica set.

        The source still answers at a single IRI — source selection,
        failure reporting and result merging are unchanged — but every
        dispatch goes through an :class:`~repro.resilience.EndpointPool`
        (round-robin + outlier ejection + half-open probes + hedging)
        instead of the single-endpoint retry path. The first replica
        stands in for the source wherever a representative graph is
        needed (``__len__``, ``explain``); a replica set serves one
        logical dataset, so any member is representative.

        ``pool_kwargs`` are forwarded to :class:`EndpointPool`; the
        clock defaults to the engine's retry-policy clock so virtual
        time governs ejection windows and hedge delays too.
        """
        iri = str(iri)
        if not replicas:
            raise ValueError("register_replicas needs >= 1 replica")
        pool_kwargs.setdefault("clock", self.retry_policy.clock)
        pool_kwargs.setdefault("stats", self.stats.labeled(endpoint=iri))
        pool = EndpointPool(
            iri, [(ep.name, ep) for ep in replicas], **pool_kwargs)
        self._pools[iri] = pool
        self._endpoints[iri] = replicas[0]
        self._locks[iri] = threading.Lock()
        return pool

    def endpoint(self, iri: str) -> SparqlEndpoint:
        return self._endpoints[str(iri)]

    def endpoint_pool(self, iri: str) -> Optional[EndpointPool]:
        """The replica pool behind one source (None when unpooled)."""
        return self._pools.get(str(iri))

    def sources(self) -> List[str]:
        """Registered source IRIs in registration order."""
        return list(self._endpoints)

    @property
    def source_count(self) -> int:
        """Registered federation sources (pooled sets count once)."""
        return len(self._endpoints)

    def breaker(self, iri: str) -> Optional[CircuitBreaker]:
        """The circuit breaker guarding one endpoint (if configured)."""
        return self._breakers.get(str(iri))

    @property
    def endpoints(self) -> List[SparqlEndpoint]:
        return list(self._endpoints.values())

    def _dispatch(self, iri: str, call: Callable,
                  budget: Optional[QueryBudget] = None,
                  tracer=None):
        """One source call; *call* receives the endpoint to hit.

        Unpooled sources run ``call(endpoint)`` under the retry policy
        and the source's breaker; pooled sources let the
        :class:`EndpointPool` pick the replica (failover, ejection,
        hedging). Either way the call is charged as a remote fetch,
        bounded by the query's *remaining* deadline, funded by the
        budget's retry budget when one is attached, and recorded on the
        per-endpoint labeled child of the engine stats. With a tracer
        the call is a ``federation.dispatch`` span.
        """
        budget_s = None
        if budget is not None:
            budget.charge_fetch()
            budget_s = budget.remaining_s()
            if budget_s is not None and budget_s <= 0:
                # Soft-deadline budgets don't raise in charge_fetch;
                # never start a network call with no time left.
                raise DeadlineExceeded(
                    "query deadline exhausted before dispatch",
                    budget.snapshot(),
                )
        stats = self.stats.labeled(endpoint=iri)
        # Concurrent tasks may target the same endpoint; its breaker
        # state and retry counters are guarded by a per-endpoint lock
        # (one in-flight request per member, like a real HTTP client's
        # per-host connection slot). Distinct endpoints overlap freely.
        lock = self._locks.get(iri)
        with (lock if lock is not None else threading.Lock()):
            pool = self._pools.get(iri)
            if pool is not None:
                return self._dispatch_pooled(pool, call, stats,
                                             budget, tracer)
            endpoint = self._endpoints[iri]
            retry_budget = getattr(budget, "retry_budget", None)
            if tracer is None:
                return self.retry_policy.run(
                    lambda: call(endpoint), stats=stats,
                    breaker=self._breakers.get(iri),
                    budget_s=budget_s, retry_budget=retry_budget)
            with tracer.span("federation.dispatch", endpoint=iri):
                return self.retry_policy.run(
                    lambda: call(endpoint), stats=stats,
                    breaker=self._breakers.get(iri),
                    budget_s=budget_s, tracer=tracer,
                    retry_budget=retry_budget)

    def _dispatch_pooled(self, pool: EndpointPool, call: Callable,
                         stats: ResilienceStats,
                         budget: Optional[QueryBudget], tracer):
        """One replica-set call: the pool owns retry semantics
        (failover across replicas + one hedge), so the retry policy is
        not stacked on top — that would multiply attempts."""
        stats.attempts += 1

        def attempt(endpoint, attempt_budget):
            # Charges go to the parent budget at the call sites; the
            # pool's child budget is the attempt's cancel token.
            return call(endpoint)

        try:
            if tracer is None:
                value = pool.call(attempt, budget=budget)
            else:
                with tracer.span("federation.dispatch",
                                 endpoint=pool.name, pooled=True):
                    value = pool.call(attempt, budget=budget,
                                      tracer=tracer)
        except Exception:
            stats.failures += 1
            raise
        stats.successes += 1
        outcome = pool.last_outcome
        if outcome is not None and outcome.failovers:
            stats.retries += outcome.failovers
        return value

    def _resolve_service(self, endpoint_iri: str,
                         group: GroupGraphPattern,
                         partial: bool = False,
                         failures: Optional[Dict[str, str]] = None,
                         budget: Optional[QueryBudget] = None,
                         tracer=None) -> List[Solution]:
        endpoint = self._endpoints.get(endpoint_iri)
        if endpoint is None:
            # Unknown endpoints are a query error, not a network
            # failure: raised even in partial mode.
            raise KeyError(f"unregistered SERVICE endpoint <{endpoint_iri}>")
        try:
            return self._dispatch(
                endpoint_iri, lambda ep: ep.select_group(group),
                budget=budget, tracer=tracer,
            )
        except Exception as exc:
            if not partial or not _absorbable(exc):
                raise
            assert failures is not None
            failures[endpoint_iri] = f"{type(exc).__name__}: {exc}"
            return []

    def query(self, text: str,
              partial_results: bool = False,
              budget: Optional[QueryBudget] = None,
              tracer=None) -> SPARQLResult:
        """Evaluate a query over the federation.

        SERVICE patterns go to their named endpoint; everything else is
        matched against the virtual union with source selection. With
        ``partial_results=True``, an endpoint failure (after retries /
        breaker) removes that endpoint from the query instead of
        raising; the result's ``failures`` maps the failing endpoint
        IRI to the error. SERVICE against an *unregistered* IRI always
        raises.

        ``budget`` governs the whole federated evaluation: each
        endpoint call is charged as a remote fetch and retried only
        within the query's remaining deadline. Combined with
        ``partial_results=True`` the deadline degrades instead of
        cancelling — endpoints the deadline cut off are recorded in
        ``failures`` while bindings already fetched are returned (the
        budget's deadline is switched to *soft* for the local join
        work). When the engine has an :class:`AdmissionController`,
        the query first takes an execution slot and may be shed with
        ``Overloaded``.

        ``tracer`` (or the engine's default tracer) makes the whole
        evaluation one ``federation.query`` trace tree: endpoint
        harvest and dispatches, retry attempts, and the plan-mirrored
        operator spans all nest under it (``result.trace``).
        """
        if tracer is None:
            tracer = self.tracer
        if self.admission is not None:
            return self.admission.run(
                lambda: self._governed_query(text, partial_results, budget,
                                             tracer),
                budget=budget,
            )
        try:
            result = self._governed_query(text, partial_results, budget,
                                          tracer)
        except BudgetExceeded as exc:
            self.governance.record_outcome(exc, budget)
            raise
        self.governance.record_outcome(None, budget)
        return result

    def _governed_query(self, text: str, partial_results: bool,
                        budget: Optional[QueryBudget],
                        tracer=None) -> SPARQLResult:
        if tracer is None:
            return self._run_query(text, partial_results, budget, None)
        with tracer.span("federation.query") as root:
            result = self._run_query(text, partial_results, budget, tracer)
        result.trace = root
        return result

    def _run_query(self, text: str, partial_results: bool,
                   budget: Optional[QueryBudget],
                   tracer) -> SPARQLResult:
        failures: Dict[str, str] = {}
        if budget is not None and partial_results:
            # Degraded mode: once the deadline passes, remote dispatch
            # is shed per endpoint (recorded in `failures`) but local
            # evaluation of already-fetched data runs to completion.
            budget.hard_deadline = False

        def dispatch(iri: str, fn: Callable, tracer=tracer):
            return self._dispatch(iri, fn, budget=budget, tracer=tracer)

        view = _FederatedView(self._endpoints, dispatch=dispatch,
                              partial=partial_results, failures=failures,
                              budget=budget, pool=self.pool,
                              tracer=tracer, stats_store=self.stats_store)
        ast = parse_query(text, namespaces=view.namespaces)
        prefetched = (
            self._prefetch_services(ast, budget, tracer)
            if self.eager_service else {}
        )

        def resolver(endpoint_iri: str,
                     group: GroupGraphPattern) -> List[Solution]:
            outcome = prefetched.get(id(group))
            if outcome is not None:
                if outcome.error is None:
                    return outcome.value
                exc = outcome.error
                if isinstance(exc, KeyError) or not partial_results \
                        or not _absorbable(exc):
                    raise exc
                failures[endpoint_iri] = f"{type(exc).__name__}: {exc}"
                return []
            return self._resolve_service(endpoint_iri, group,
                                         partial=partial_results,
                                         failures=failures,
                                         budget=budget,
                                         tracer=tracer)

        ctx = Context(view, service_resolver=resolver, budget=budget,
                      tracer=tracer, stats=self.stats_store,
                      replan_ratio=self.replan_ratio)
        result = eval_query(ast, ctx)
        result.failures = dict(failures)
        if budget is not None:
            result.budget_stats = budget.snapshot()
        return result

    def _prefetch_services(self, ast, budget: Optional[QueryBudget],
                           tracer) -> Dict[int, object]:
        """Dispatch every SERVICE group in *ast* up front, through the
        pool, keyed by the group's identity.

        Outcomes (values *or* errors) are replayed when the evaluator
        consults the service resolver, so error surfacing keeps its
        lazy-dispatch semantics: a SERVICE the evaluation never reaches
        contributes neither rows nor failure entries, whatever the
        worker count.
        """
        where = getattr(ast, "where", None)
        if where is None:
            return {}
        services = _collect_services(where)
        if not services:
            return {}

        def one(pattern: ServicePattern, tracer=None):
            iri = str(pattern.endpoint)
            if iri not in self._endpoints:
                raise KeyError(f"unregistered SERVICE endpoint <{iri}>")
            return self._dispatch(
                iri, lambda ep: ep.select_group(pattern.group),
                budget=budget, tracer=tracer,
            )

        outcomes = self.pool.run_tasks(
            one, services, tracer=tracer, label="federation.services",
            task_label="federation.service", pass_tracer=True,
        )
        return {
            id(pattern.group): outcome
            for pattern, outcome in zip(services, outcomes)
        }

    def explain(self, text: str):
        """Plan a federated query without matching any pattern.

        Returns the plan root (render with ``.render()``). Source
        selection still harvests each endpoint's predicate vocabulary
        (that is part of planning), but no triple pattern is dispatched
        and SERVICE groups are shown as unexecuted exchange operators.
        Endpoint failures during the harvest are tolerated, as in
        ``partial_results`` mode.
        """
        failures: Dict[str, str] = {}

        def dispatch(iri: str, fn: Callable, tracer=None):
            return self._dispatch(iri, fn, tracer=tracer)

        view = _FederatedView(self._endpoints, dispatch=dispatch,
                              partial=True, failures=failures,
                              pool=self.pool, stats_store=self.stats_store)
        ast = parse_query(text, namespaces=view.namespaces)
        from .evaluator import explain_query

        return explain_query(ast, Context(view, stats=self.stats_store))

    def request_counts(self) -> Dict[str, int]:
        """Requests each source served (for benchmark reporting).

        A pooled source reports the sum over its replicas — what the
        logical source absorbed, whichever replica answered.
        """
        counts = {}
        for iri, ep in self._endpoints.items():
            pool = self._pools.get(iri)
            if pool is None:
                counts[iri] = ep.request_count
            else:
                counts[iri] = sum(
                    pool.replica(name).endpoint.request_count
                    for name in pool.replica_names())
        return counts

    def pool_reports(self) -> Dict[str, Dict[str, object]]:
        """Health/hedging report per pooled source (ejections, probes,
        hedge wins, per-replica error rates)."""
        return {iri: pool.report()
                for iri, pool in self._pools.items()}

    def bind_metrics(self, registry, component: str = "federation"):
        """Expose this engine's resilience + governance counters (with
        their per-endpoint breakdown) through a
        :class:`~repro.observability.MetricsRegistry`; returns the
        registry for chaining."""
        from ..observability.bridge import (
            register_endpoint_pool,
            register_governance,
            register_resilience,
        )

        register_resilience(registry, self.stats, component=component)
        register_governance(registry, self.governance, component=component)
        for pool in self._pools.values():
            register_endpoint_pool(registry, pool, component=component)
        return registry
