"""GeoSPARQL federation engine.

Section 5 of the paper lists federated GeoSPARQL as an open problem
("there is currently no query engine that can answer GeoSPARQL queries
over such a federation ... the only system that comes close is
SemaGrow"). This module implements the two classic federation styles:

- **explicit**: ``SERVICE <endpoint> { ... }`` patterns, dispatched to a
  registered endpoint;
- **transparent**: queries without SERVICE run over a virtual union of
  all registered endpoints, with predicate-based source selection so a
  triple pattern only visits endpoints that can answer it.

Endpoints wrap local graphs (optionally Strabon stores) and can carry a
simulated network latency so federation overhead is measurable.

Every dispatch to an endpoint goes through the engine's
:class:`~repro.resilience.RetryPolicy` (and per-endpoint circuit
breaker, when configured). ``query(..., partial_results=True)`` turns
endpoint failures into entries of the result's ``failures`` report
instead of exceptions, so one dead member cannot take down the whole
federation.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, List, Optional, Set

from ..rdf.graph import Graph
from ..rdf.namespace import NamespaceManager
from ..rdf.terms import Term, Triple
from ..resilience import CircuitBreaker, ResilienceStats, RetryPolicy, \
    no_retry
from .ast import GroupGraphPattern
from .evaluator import Context, eval_group, eval_query
from .parser import parse_query
from .results import Solution, SPARQLResult


class SparqlEndpoint:
    """A queryable SPARQL endpoint over a local graph.

    ``latency_s`` simulates one network round trip per request, letting
    benchmarks measure federation overhead realistically.
    ``request_count`` counts *logical* requests — a retried attempt
    that failed before reaching the endpoint is not double-counted.
    """

    def __init__(self, graph: Graph, name: str = "endpoint",
                 latency_s: float = 0.0):
        self.graph = graph
        self.name = name
        self.latency_s = latency_s
        self.request_count = 0

    def _charge(self) -> None:
        self.request_count += 1
        if self.latency_s > 0:
            time.sleep(self.latency_s)

    def query(self, text: str) -> SPARQLResult:
        """Answer a full SPARQL query (one simulated round trip)."""
        self._charge()
        return self.graph.query(text)

    def select_group(self, group: GroupGraphPattern,
                     seeds: Optional[List[Solution]] = None
                     ) -> List[Solution]:
        """Evaluate a group graph pattern (used for SERVICE dispatch)."""
        self._charge()
        ctx = Context(self.graph)
        return eval_group(group, seeds if seeds is not None else [{}], ctx)

    def triples(self, pattern) -> Iterator[Triple]:
        """Pattern-level access for the transparent union (not charged)."""
        return self.graph.triples(pattern)

    def predicates(self) -> Set[Term]:
        """The predicate vocabulary of this endpoint (source selection)."""
        return set(self.graph.predicates())

    def __repr__(self) -> str:
        return f"<SparqlEndpoint {self.name} ({len(self.graph)} triples)>"


class _FederatedView:
    """A virtual graph that unions registered endpoints.

    Implements the minimal graph protocol the evaluator needs
    (``triples`` and ``namespaces``) plus predicate-based source
    selection: a pattern with a bound predicate only visits endpoints
    whose vocabulary contains it.

    Endpoint access goes through *dispatch* (retry/breaker). In
    partial mode an endpoint that fails — at vocabulary harvest or at
    pattern matching — is marked down for the rest of the query and
    recorded in *failures* instead of raising.
    """

    def __init__(self, endpoints: Dict[str, SparqlEndpoint],
                 dispatch: Callable, partial: bool = False,
                 failures: Optional[Dict[str, str]] = None):
        self.endpoints = dict(endpoints)
        self._dispatch = dispatch
        self.partial = partial
        self.failures = failures if failures is not None else {}
        self.namespaces = NamespaceManager()
        self._down: Set[str] = set()
        self._predicate_index: Dict[Term, List[str]] = {}
        for iri, ep in self.endpoints.items():
            try:
                vocabulary = self._dispatch(iri, ep.predicates)
            except Exception as exc:
                self._mark_down(iri, exc)
                continue
            for predicate in vocabulary:
                self._predicate_index.setdefault(predicate, []).append(iri)

    def _mark_down(self, iri: str, exc: Exception) -> None:
        if not self.partial:
            raise exc
        self._down.add(iri)
        self.failures[iri] = f"{type(exc).__name__}: {exc}"

    def _select_sources(self, predicate: Optional[Term]) -> List[str]:
        if predicate is not None:
            return self._predicate_index.get(predicate, [])
        return list(self.endpoints)

    def triples(self, pattern) -> Iterator[Triple]:
        s, p, o = pattern
        for iri in self._select_sources(p):
            if iri in self._down:
                continue
            endpoint = self.endpoints[iri]
            try:
                matched = self._dispatch(
                    iri, lambda: list(endpoint.triples(pattern))
                )
            except Exception as exc:
                self._mark_down(iri, exc)
                continue
            yield from matched

    def predicates(self):
        return iter(self._predicate_index)

    def __len__(self) -> int:
        return sum(len(ep.graph) for ep in self.endpoints.values())


class FederationEngine:
    """Answers (Geo)SPARQL queries over a federation of endpoints."""

    def __init__(self, retry_policy: Optional[RetryPolicy] = None,
                 breaker_factory: Optional[
                     Callable[[], CircuitBreaker]] = None):
        self._endpoints: Dict[str, SparqlEndpoint] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_factory = breaker_factory
        self.retry_policy = retry_policy or no_retry()
        self.stats = ResilienceStats()

    def register(self, iri: str, endpoint: SparqlEndpoint) -> None:
        iri = str(iri)
        self._endpoints[iri] = endpoint
        if self._breaker_factory is not None:
            self._breakers[iri] = self._breaker_factory()

    def endpoint(self, iri: str) -> SparqlEndpoint:
        return self._endpoints[str(iri)]

    def breaker(self, iri: str) -> Optional[CircuitBreaker]:
        """The circuit breaker guarding one endpoint (if configured)."""
        return self._breakers.get(str(iri))

    @property
    def endpoints(self) -> List[SparqlEndpoint]:
        return list(self._endpoints.values())

    def _dispatch(self, iri: str, fn: Callable):
        """One endpoint call under the retry policy + its breaker."""
        return self.retry_policy.run(fn, stats=self.stats,
                                     breaker=self._breakers.get(iri))

    def _resolve_service(self, endpoint_iri: str,
                         group: GroupGraphPattern,
                         partial: bool = False,
                         failures: Optional[Dict[str, str]] = None
                         ) -> List[Solution]:
        endpoint = self._endpoints.get(endpoint_iri)
        if endpoint is None:
            # Unknown endpoints are a query error, not a network
            # failure: raised even in partial mode.
            raise KeyError(f"unregistered SERVICE endpoint <{endpoint_iri}>")
        try:
            return self._dispatch(
                endpoint_iri, lambda: endpoint.select_group(group)
            )
        except Exception as exc:
            if not partial:
                raise
            assert failures is not None
            failures[endpoint_iri] = f"{type(exc).__name__}: {exc}"
            return []

    def query(self, text: str,
              partial_results: bool = False) -> SPARQLResult:
        """Evaluate a query over the federation.

        SERVICE patterns go to their named endpoint; everything else is
        matched against the virtual union with source selection. With
        ``partial_results=True``, an endpoint failure (after retries /
        breaker) removes that endpoint from the query instead of
        raising; the result's ``failures`` maps the failing endpoint
        IRI to the error. SERVICE against an *unregistered* IRI always
        raises.
        """
        failures: Dict[str, str] = {}
        view = _FederatedView(self._endpoints, dispatch=self._dispatch,
                              partial=partial_results, failures=failures)

        def resolver(endpoint_iri: str,
                     group: GroupGraphPattern) -> List[Solution]:
            return self._resolve_service(endpoint_iri, group,
                                         partial=partial_results,
                                         failures=failures)

        ast = parse_query(text, namespaces=view.namespaces)
        ctx = Context(view, service_resolver=resolver)
        result = eval_query(ast, ctx)
        result.failures = dict(failures)
        return result

    def request_counts(self) -> Dict[str, int]:
        """Requests each endpoint served (for benchmark reporting)."""
        return {
            iri: ep.request_count for iri, ep in self._endpoints.items()
        }
