"""SPARQL result containers."""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterator, List, Optional

from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal, Term

Solution = Dict[str, Term]


class SPARQLResult:
    """Result of a SPARQL query.

    - SELECT: iterable of binding dicts (``vars`` lists the projection).
    - ASK: truth value in ``ask`` (the object is also truthy/falsy).
    - CONSTRUCT / DESCRIBE: an RDF :class:`Graph` in ``graph``.

    ``failures`` is the degraded-mode report filled in by federated
    queries run with ``partial_results=True``: it maps the IRI of each
    endpoint that failed (after retries) to the error it raised.
    Non-empty ``failures`` means the result may be incomplete.

    ``budget_stats`` is the final snapshot of the query's
    :class:`~repro.governance.QueryBudget` when the query ran governed
    (triples scanned, rows produced, remote fetches, deadline
    headroom); ``None`` for ungoverned queries.

    ``plan`` is the executed physical plan
    (a :class:`~repro.sparql.plan.PlanNode` tree with estimated and
    actual per-operator row counts); :meth:`explain` renders it.

    ``trace`` is the root :class:`~repro.observability.Span` of the
    query's trace tree when the query ran under a tracer (``None``
    otherwise); :meth:`profile` combines it with the plan into
    per-operator timing rows keyed by the same ``#n`` ids EXPLAIN
    prints.
    """

    def __init__(self, kind: str,
                 variables: Optional[List[str]] = None,
                 rows: Optional[List[Solution]] = None,
                 ask: Optional[bool] = None,
                 graph: Optional[Graph] = None,
                 failures: Optional[Dict[str, str]] = None,
                 budget_stats: Optional[Dict[str, object]] = None,
                 plan=None,
                 trace=None,
                 trace_id: Optional[str] = None):
        self.kind = kind
        self.vars = variables or []
        self.rows = rows or []
        self.ask = ask
        self.graph = graph
        self.failures: Dict[str, str] = dict(failures or {})
        self.budget_stats = budget_stats
        self.plan = plan
        self.trace = trace
        #: caller-assigned correlation id (query log <-> trace join key)
        self.trace_id = trace_id

    def explain(self) -> str:
        """Rendered physical plan with estimated vs actual rows."""
        if self.plan is None:
            return "(no plan recorded)"
        return self.plan.render()

    def profile(self) -> "QueryProfile":
        """Per-operator profile of the executed plan.

        One row per plan node — id (the ``#n`` EXPLAIN prints), label,
        rows in/out, inclusive and self time — plus, when the query ran
        under a tracer, the counters recorded by spans of lower layers
        (DAP cache hits, fetches, retry attempts...) attributed to the
        nearest enclosing operator.
        """
        if self.plan is None:
            raise ValueError("no plan recorded; profile unavailable")
        return QueryProfile(self.plan, self.trace)

    def __iter__(self) -> Iterator[Solution]:
        return iter(self.rows)

    def __len__(self) -> int:
        if self.kind == "CONSTRUCT":
            return len(self.graph) if self.graph else 0
        return len(self.rows)

    def __bool__(self) -> bool:
        if self.kind == "ASK":
            return bool(self.ask)
        return len(self) > 0

    def column(self, var: str) -> List[Optional[Term]]:
        """All bindings of one variable, in row order (None when unbound)."""
        return [row.get(var) for row in self.rows]

    def to_csv(self) -> str:
        """SELECT results as CSV (SPARQL 1.1 CSV results format)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.vars)
        for row in self.rows:
            writer.writerow(
                ["" if row.get(v) is None else str(row[v]) for v in self.vars]
            )
        return buf.getvalue()

    def to_json(self) -> str:
        """SELECT/ASK results in the SPARQL 1.1 JSON results format."""
        if self.kind == "ASK":
            return json.dumps({"head": {}, "boolean": bool(self.ask)})
        bindings = []
        for row in self.rows:
            entry = {}
            for var, term in row.items():
                if term is None:
                    continue
                if isinstance(term, Literal):
                    b = {"type": "literal", "value": term.lexical}
                    if term.lang:
                        b["xml:lang"] = term.lang
                    elif term.datatype:
                        b["datatype"] = str(term.datatype)
                elif isinstance(term, BNode):
                    b = {"type": "bnode", "value": str(term)}
                else:
                    b = {"type": "uri", "value": str(term)}
                entry[var] = b
            bindings.append(entry)
        return json.dumps(
            {"head": {"vars": self.vars}, "results": {"bindings": bindings}}
        )

    @classmethod
    def from_json(cls, text: str) -> "SPARQLResult":
        """Parse the SPARQL 1.1 JSON results format (for federation)."""
        obj = json.loads(text)
        if "boolean" in obj:
            return cls("ASK", ask=obj["boolean"])
        variables = obj.get("head", {}).get("vars", [])
        rows: List[Solution] = []
        for binding in obj.get("results", {}).get("bindings", []):
            row: Solution = {}
            for var, b in binding.items():
                if b["type"] == "uri":
                    row[var] = IRI(b["value"])
                elif b["type"] == "bnode":
                    row[var] = BNode(b["value"])
                else:
                    row[var] = Literal(
                        b["value"],
                        datatype=IRI(b["datatype"]) if b.get("datatype")
                        else None,
                        lang=b.get("xml:lang"),
                    )
            rows.append(row)
        return cls("SELECT", variables=variables, rows=rows)

    def __repr__(self) -> str:
        if self.kind == "ASK":
            return f"<SPARQLResult ASK {self.ask}>"
        if self.kind in ("CONSTRUCT", "DESCRIBE"):
            n = len(self.graph) if self.graph else 0
            return f"<SPARQLResult {self.kind} ({n} triples)>"
        return f"<SPARQLResult SELECT {self.vars} ({len(self.rows)} rows)>"


class QueryProfile:
    """Per-operator profile rows computed from an executed plan + trace.

    Iterating yields one dict per plan node, pre-order (same ids as
    EXPLAIN): ``id``, ``label``, ``detail``, ``rows_in`` (what the
    operator's source emitted; ``None`` for leaves), ``rows_out``,
    inclusive ``time_s``, ``self_time_s`` (inclusive minus plan
    children), and ``counters`` aggregated from trace spans of lower
    layers under the nearest enclosing operator span. Timings are zero
    when the query ran without a tracer; ``unattributed`` holds
    counters recorded outside any plan-mirrored span (e.g. during
    federation endpoint harvest).
    """

    def __init__(self, plan, trace=None):
        self.plan = plan
        self.trace = trace
        if plan.id is None:
            plan.assign_ids()
        counters: Dict[int, Dict[str, int]] = {}
        self.unattributed: Dict[str, int] = {}
        if trace is not None:
            self._collect(trace, counters, None)
        self.rows: List[Dict[str, object]] = []
        self._build(plan, 0, counters)

    def _collect(self, span, counters, current_id) -> None:
        node_id = span.attributes.get("node_id")
        if node_id is not None:
            current_id = node_id
        if span.counters:
            if current_id is None:
                bucket = self.unattributed
            else:
                bucket = counters.setdefault(current_id, {})
            for key, value in span.counters.items():
                bucket[key] = bucket.get(key, 0) + value
        for child in span.children:
            self._collect(child, counters, current_id)

    def _build(self, node, depth, counters) -> None:
        # Every node gets a row, zero-row operators and never-executed
        # display-only subtrees included: the feedback loop needs to
        # see empty scans (rows_out == 0, executed), and distinguishes
        # them from plans that never ran (rows_out is None, not
        # executed).
        self.rows.append({
            "id": node.id,
            "label": node.label,
            "detail": node.detail,
            "depth": depth,
            "rows_in": (node.children[0].actual_rows
                        if node.children else None),
            "rows_out": node.actual_rows,
            "executed": node.actual_rows is not None,
            "est_rows": node.est_rows,
            "est_source": node.est_source,
            "signature": node.signature,
            "probes": node.probes,
            "replans": node.replans,
            "time_s": node.time_s,
            "self_time_s": node.time_s - sum(
                c.time_s for c in node.children),
            "counters": counters.get(node.id, {}),
        })
        for child in node.children:
            self._build(child, depth + 1, counters)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def render(self) -> str:
        """Fixed-width profile table, operators indented as in EXPLAIN."""
        lines = [
            f"{'#id':>4}  {'operator':<44} {'rows_in':>8} "
            f"{'rows_out':>8} {'time_ms':>9} {'self_ms':>9}  counters"
        ]
        for row in self.rows:
            label = row["label"]
            if row["detail"]:
                label = f"{label}({row['detail']})"
            label = "  " * row["depth"] + label
            if len(label) > 44:
                label = label[:41] + "..."
            rows_in = "-" if row["rows_in"] is None else row["rows_in"]
            rows_out = "-" if row["rows_out"] is None else row["rows_out"]
            extra = " ".join(
                f"{k}={v}" for k, v in sorted(row["counters"].items()))
            lines.append(
                f"{row['id']:>4}  {label:<44} {rows_in:>8} "
                f"{rows_out:>8} {row['time_s'] * 1e3:>9.3f} "
                f"{row['self_time_s'] * 1e3:>9.3f}  {extra}".rstrip()
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
