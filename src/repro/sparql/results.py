"""SPARQL result containers."""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Iterator, List, Optional

from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal, Term

Solution = Dict[str, Term]


class SPARQLResult:
    """Result of a SPARQL query.

    - SELECT: iterable of binding dicts (``vars`` lists the projection).
    - ASK: truth value in ``ask`` (the object is also truthy/falsy).
    - CONSTRUCT / DESCRIBE: an RDF :class:`Graph` in ``graph``.

    ``failures`` is the degraded-mode report filled in by federated
    queries run with ``partial_results=True``: it maps the IRI of each
    endpoint that failed (after retries) to the error it raised.
    Non-empty ``failures`` means the result may be incomplete.

    ``budget_stats`` is the final snapshot of the query's
    :class:`~repro.governance.QueryBudget` when the query ran governed
    (triples scanned, rows produced, remote fetches, deadline
    headroom); ``None`` for ungoverned queries.

    ``plan`` is the executed physical plan
    (a :class:`~repro.sparql.plan.PlanNode` tree with estimated and
    actual per-operator row counts); :meth:`explain` renders it.
    """

    def __init__(self, kind: str,
                 variables: Optional[List[str]] = None,
                 rows: Optional[List[Solution]] = None,
                 ask: Optional[bool] = None,
                 graph: Optional[Graph] = None,
                 failures: Optional[Dict[str, str]] = None,
                 budget_stats: Optional[Dict[str, object]] = None,
                 plan=None):
        self.kind = kind
        self.vars = variables or []
        self.rows = rows or []
        self.ask = ask
        self.graph = graph
        self.failures: Dict[str, str] = dict(failures or {})
        self.budget_stats = budget_stats
        self.plan = plan

    def explain(self) -> str:
        """Rendered physical plan with estimated vs actual rows."""
        if self.plan is None:
            return "(no plan recorded)"
        return self.plan.render()

    def __iter__(self) -> Iterator[Solution]:
        return iter(self.rows)

    def __len__(self) -> int:
        if self.kind == "CONSTRUCT":
            return len(self.graph) if self.graph else 0
        return len(self.rows)

    def __bool__(self) -> bool:
        if self.kind == "ASK":
            return bool(self.ask)
        return len(self) > 0

    def column(self, var: str) -> List[Optional[Term]]:
        """All bindings of one variable, in row order (None when unbound)."""
        return [row.get(var) for row in self.rows]

    def to_csv(self) -> str:
        """SELECT results as CSV (SPARQL 1.1 CSV results format)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.vars)
        for row in self.rows:
            writer.writerow(
                ["" if row.get(v) is None else str(row[v]) for v in self.vars]
            )
        return buf.getvalue()

    def to_json(self) -> str:
        """SELECT/ASK results in the SPARQL 1.1 JSON results format."""
        if self.kind == "ASK":
            return json.dumps({"head": {}, "boolean": bool(self.ask)})
        bindings = []
        for row in self.rows:
            entry = {}
            for var, term in row.items():
                if term is None:
                    continue
                if isinstance(term, Literal):
                    b = {"type": "literal", "value": term.lexical}
                    if term.lang:
                        b["xml:lang"] = term.lang
                    elif term.datatype:
                        b["datatype"] = str(term.datatype)
                elif isinstance(term, BNode):
                    b = {"type": "bnode", "value": str(term)}
                else:
                    b = {"type": "uri", "value": str(term)}
                entry[var] = b
            bindings.append(entry)
        return json.dumps(
            {"head": {"vars": self.vars}, "results": {"bindings": bindings}}
        )

    @classmethod
    def from_json(cls, text: str) -> "SPARQLResult":
        """Parse the SPARQL 1.1 JSON results format (for federation)."""
        obj = json.loads(text)
        if "boolean" in obj:
            return cls("ASK", ask=obj["boolean"])
        variables = obj.get("head", {}).get("vars", [])
        rows: List[Solution] = []
        for binding in obj.get("results", {}).get("bindings", []):
            row: Solution = {}
            for var, b in binding.items():
                if b["type"] == "uri":
                    row[var] = IRI(b["value"])
                elif b["type"] == "bnode":
                    row[var] = BNode(b["value"])
                else:
                    row[var] = Literal(
                        b["value"],
                        datatype=IRI(b["datatype"]) if b.get("datatype")
                        else None,
                        lang=b.get("xml:lang"),
                    )
            rows.append(row)
        return cls("SELECT", variables=variables, rows=rows)

    def __repr__(self) -> str:
        if self.kind == "ASK":
            return f"<SPARQLResult ASK {self.ask}>"
        if self.kind in ("CONSTRUCT", "DESCRIBE"):
            n = len(self.graph) if self.graph else 0
            return f"<SPARQLResult {self.kind} ({n} triples)>"
        return f"<SPARQLResult SELECT {self.vars} ({len(self.rows)} rows)>"
