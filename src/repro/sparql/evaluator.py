"""SPARQL evaluation driver: expressions, aggregates, planner glue.

The bottom-up interpreter this module used to be is gone; pattern
matching now lives in the plan/operator layers:

- :mod:`repro.sparql.plan` compiles the AST into a physical plan
  (join ordering, filter/spatial pushdown, top-k selection);
- :mod:`repro.sparql.operators` streams solutions through that plan on
  dictionary-encoded ids.

What remains here is the per-row machinery those operators call back
into — scalar expression evaluation (:func:`eval_expr`), aggregation
(:func:`_group_and_aggregate`), spatial-filter extraction — plus the
query-form executors that pull the plan, charge the result-row budget
at the single operator boundary, and attach the executed plan to the
:class:`~repro.sparql.results.SPARQLResult` for EXPLAIN.

The historical entry points (:func:`eval_group`, :func:`eval_query`,
:class:`Context`) keep their exact signatures and semantics; they are
facades over the new engine.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional

from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal, Term, literal_cmp_key
from . import functions as fns
from .ast import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryExpr,
    Bind,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expr,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    InlineValues,
    MinusPattern,
    OptionalPattern,
    Projection,
    Query,
    SelectQuery,
    ServicePattern,
    SubSelect,
    TermExpr,
    TriplePattern,
    UnaryExpr,
    UnionPattern,
    Var,
    VarExpr,
)
from .functions import SparqlValueError, effective_boolean_value
from .results import Solution, SPARQLResult


class EvaluationError(RuntimeError):
    """Raised for unevaluable query constructs (not per-row errors)."""


class Context:
    """Per-query evaluation context.

    ``budget`` is an optional :class:`~repro.governance.QueryBudget`
    acting as a cooperative cancellation token: the scan operators
    charge every triple they enumerate (and the executor every result
    row it emits) against it, so a pathological query terminates with a
    typed :class:`~repro.governance.BudgetExceeded` carrying partial
    stats instead of running unbounded.

    ``tracer`` is an optional
    :class:`~repro.observability.Tracer`; when present each executed
    query builds a :class:`~repro.observability.PlanTrace` (one span
    per plan node, ids matching EXPLAIN) published on ``ctx.trace`` so
    the operators — and anything they call into, down to DAP fetches —
    charge time to the right span.

    ``stats`` is an optional
    :class:`~repro.sparql.stats.StatsStore`: the planner consults it
    for feedback-backed cardinality estimates, and after every query
    the executor flows the profile rows back into it.

    ``replan_ratio`` (a float > 1, or ``None`` to disable) arms
    mid-query adaptivity: when a BGP scan's actual per-probe rows
    diverge from its estimate by at least this factor, the remaining
    join suffix is re-ordered in flight (see
    :meth:`~repro.sparql.operators.BGPOp._match_ids_adaptive`).

    ``pool`` is an optional :class:`~repro.parallel.WorkerPool` the
    batched BGP path hands to ``graph.scan_batches`` so unbound-subject
    scans on a sharded graph fan out across shards; results are
    byte-identical at any worker count. ``batch_size`` pins the flat
    id-batch size for the batched path (default: the sharded data
    plane's :data:`~repro.rdf.shards.DEFAULT_BATCH_SIZE`; setting it on
    an unsharded graph also engages batched evaluation).

    ``spill_threshold`` (row count, or ``None`` to disable) arms the
    deterministic partition-spill path on the VALUES / sub-select /
    SERVICE hash joins: build sides larger than the threshold spill
    sorted partition files to ``spill_dir`` (default ``out/spill``),
    budget-charged, with output byte-identical to the in-memory join.
    """

    def __init__(self, graph: Graph,
                 service_resolver: Optional[Callable] = None,
                 budget=None, tracer=None, stats=None,
                 replan_ratio: Optional[float] = None,
                 trace_id: Optional[str] = None,
                 pool=None, batch_size: Optional[int] = None,
                 spill_threshold: Optional[int] = None,
                 spill_dir=None):
        self.graph = graph
        self.service_resolver = service_resolver
        self.budget = budget
        self.tracer = tracer
        self.trace = None
        self.stats = stats
        self.replan_ratio = replan_ratio
        # caller-assigned correlation id: stamped on the root span and
        # the result so the query log can be joined against traces
        self.trace_id = trace_id
        self.pool = pool
        self.batch_size = batch_size
        self.spill_threshold = spill_threshold
        self.spill_dir = spill_dir


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

def eval_expr(expr: Expr, solution: Solution, ctx: Context):
    """Evaluate an expression to an RDF term; raises SparqlValueError."""
    if isinstance(expr, TermExpr):
        return expr.term
    if isinstance(expr, VarExpr):
        value = solution.get(expr.var.name)
        if value is None:
            raise SparqlValueError(f"unbound variable ?{expr.var.name}")
        return value
    if isinstance(expr, UnaryExpr):
        if expr.op == "!":
            return Literal(
                not effective_boolean_value(
                    eval_expr(expr.operand, solution, ctx)
                )
            )
        value = fns.numeric_value(eval_expr(expr.operand, solution, ctx))
        return Literal(-value)
    if isinstance(expr, BinaryExpr):
        return _eval_binary(expr, solution, ctx)
    if isinstance(expr, FunctionCall):
        return _eval_function(expr, solution, ctx)
    if isinstance(expr, InExpr):
        value = eval_expr(expr.value, solution, ctx)
        found = False
        for option in expr.options:
            try:
                if _terms_equal(value, eval_expr(option, solution, ctx)):
                    found = True
                    break
            except SparqlValueError:
                continue
        return Literal(found != expr.negated)
    if isinstance(expr, ExistsExpr):
        rows = eval_group(expr.group, [dict(solution)], ctx)
        exists = bool(rows)
        return Literal(exists != expr.negated)
    if isinstance(expr, Aggregate):
        raise SparqlValueError("aggregate outside aggregation context")
    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


def _eval_binary(expr: BinaryExpr, solution: Solution, ctx: Context):
    op = expr.op
    if op == "||":
        left_err = None
        try:
            if effective_boolean_value(eval_expr(expr.left, solution, ctx)):
                return Literal(True)
        except SparqlValueError as exc:
            left_err = exc
        right = effective_boolean_value(eval_expr(expr.right, solution, ctx))
        if right:
            return Literal(True)
        if left_err is not None:
            raise left_err
        return Literal(False)
    if op == "&&":
        left_err = None
        try:
            if not effective_boolean_value(
                eval_expr(expr.left, solution, ctx)
            ):
                return Literal(False)
        except SparqlValueError as exc:
            left_err = exc
        right = effective_boolean_value(eval_expr(expr.right, solution, ctx))
        if not right:
            return Literal(False)
        if left_err is not None:
            raise left_err
        return Literal(True)

    left = eval_expr(expr.left, solution, ctx)
    right = eval_expr(expr.right, solution, ctx)
    if op in ("+", "-", "*", "/"):
        a, b = fns.numeric_value(left), fns.numeric_value(right)
        if op == "+":
            value = a + b
        elif op == "-":
            value = a - b
        elif op == "*":
            value = a * b
        else:
            if b == 0:
                raise SparqlValueError("division by zero")
            value = a / b
        if isinstance(a, int) and isinstance(b, int) and op != "/":
            return Literal(int(value))
        return Literal(float(value))
    if op == "=":
        return Literal(_terms_equal(left, right))
    if op == "!=":
        return Literal(not _terms_equal(left, right))
    return Literal(_order_compare(op, left, right))


def _terms_equal(a, b) -> bool:
    if isinstance(a, Literal) and isinstance(b, Literal):
        if a == b:
            return True
        if a.is_numeric and b.is_numeric:
            return a.value == b.value
        try:
            av, bv = a.value, b.value
        except ValueError:
            return False
        if type(av) is type(bv) and not isinstance(av, str):
            return av == bv
        return False
    return a == b and type(a) is type(b)


def _order_compare(op: str, a, b) -> bool:
    if not (isinstance(a, Literal) and isinstance(b, Literal)):
        raise SparqlValueError(f"cannot order {a!r} and {b!r}")
    ka, kb = literal_cmp_key(a), literal_cmp_key(b)
    if ka[0] != kb[0]:
        raise SparqlValueError(f"type mismatch comparing {a!r} and {b!r}")
    if op == "<":
        return ka[1] < kb[1]
    if op == ">":
        return ka[1] > kb[1]
    if op == "<=":
        return ka[1] <= kb[1]
    if op == ">=":
        return ka[1] >= kb[1]
    raise EvaluationError(f"unknown comparison {op}")


def _eval_function(call: FunctionCall, solution: Solution, ctx: Context):
    name = call.name
    if name == "BOUND":
        arg = call.args[0]
        if not isinstance(arg, VarExpr):
            raise SparqlValueError("BOUND requires a variable")
        return Literal(solution.get(arg.var.name) is not None)
    if name == "IF":
        cond = effective_boolean_value(
            eval_expr(call.args[0], solution, ctx)
        )
        return eval_expr(call.args[1] if cond else call.args[2],
                         solution, ctx)
    if name == "COALESCE":
        for arg in call.args:
            try:
                return eval_expr(arg, solution, ctx)
            except SparqlValueError:
                continue
        raise SparqlValueError("COALESCE: no bound argument")
    args = [eval_expr(a, solution, ctx) for a in call.args]
    fn = fns.BUILTIN_FUNCTIONS.get(name)
    if fn is None:
        fn = fns.EXTENSION_FUNCTIONS.get(name)
    if fn is None:
        raise EvaluationError(f"unknown function {name!r}")
    return fn(*args)


# ---------------------------------------------------------------------------
# Spatial filter pushdown (shared with the planner and Ontop)
# ---------------------------------------------------------------------------

class _SpatialRestriction:
    """A pushed-down spatial constraint on a variable."""

    __slots__ = ("relation", "geometry")

    def __init__(self, relation: str, geometry):
        self.relation = relation
        self.geometry = geometry


def _extract_spatial_restrictions(
    elements, ctx: Context
) -> Dict[str, _SpatialRestriction]:
    """Find FILTER(geof:sfX(?var, <const-geom>)) constraints in a group."""
    restrictions: Dict[str, _SpatialRestriction] = {}
    for el in elements:
        if not isinstance(el, Filter):
            continue
        expr = el.expr
        if not isinstance(expr, FunctionCall):
            continue
        relation = fns.SPATIAL_RELATIONS.get(expr.name)
        if relation is None or len(expr.args) != 2:
            continue
        a, b = expr.args
        var_arg, const_arg = None, None
        if isinstance(a, VarExpr) and isinstance(b, TermExpr):
            var_arg, const_arg = a, b
        elif isinstance(b, VarExpr) and isinstance(a, TermExpr):
            var_arg, const_arg = b, a
            relation = _invert_relation(relation)
        if var_arg is None:
            continue
        try:
            geom = fns.geometry_from_term(const_arg.term)
        except SparqlValueError:
            continue
        restrictions[var_arg.var.name] = _SpatialRestriction(relation, geom)
    return restrictions


def _invert_relation(relation: str) -> str:
    return {"contains": "within", "within": "contains"}.get(relation, relation)


# ---------------------------------------------------------------------------
# Group evaluation facade (planner + executor underneath)
# ---------------------------------------------------------------------------

def eval_group(group: GroupGraphPattern, solutions: List[Solution],
               ctx: Context) -> List[Solution]:
    """Evaluate a group graph pattern, seeding from *solutions*.

    Facade over the physical-operator engine: compiles the group into a
    pipeline (join-ordered, filters pushed down) and drains it. Charges
    the scan budget through the operators but never the result-row
    budget — that belongs to the query-level executors.
    """
    from .plan import plan_group

    bound = set(solutions[0].keys()) if solutions else set()
    sub = plan_group(group, ctx, bound)
    sub.root.mark_executed()
    return list(sub.run(ctx, solutions))


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def _projection_has_aggregate(query: SelectQuery) -> bool:
    return any(
        _expr_contains_aggregate(p.expr)
        for p in query.projections
        if p.expr is not None
    )


def _expr_contains_aggregate(expr: Optional[Expr]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, BinaryExpr):
        return _expr_contains_aggregate(expr.left) or _expr_contains_aggregate(
            expr.right
        )
    if isinstance(expr, UnaryExpr):
        return _expr_contains_aggregate(expr.operand)
    if isinstance(expr, FunctionCall):
        return any(_expr_contains_aggregate(a) for a in expr.args)
    return False


def _eval_aggregate(agg: Aggregate, rows: List[Solution], ctx: Context):
    values = []
    if agg.expr is None:  # COUNT(*)
        if agg.name != "COUNT":
            raise SparqlValueError(f"{agg.name}(*) is not valid")
        return Literal(len(rows))
    for row in rows:
        try:
            values.append(eval_expr(agg.expr, row, ctx))
        except SparqlValueError:
            continue
    if agg.distinct:
        seen, unique = set(), []
        for v in values:
            key = (type(v).__name__, v.n3() if hasattr(v, "n3") else str(v))
            if key not in seen:
                seen.add(key)
                unique.append(v)
        values = unique
    name = agg.name
    if name == "COUNT":
        return Literal(len(values))
    if not values:
        if name in ("SUM",):
            return Literal(0)
        raise SparqlValueError(f"{name} over empty group")
    if name == "SUM":
        total = sum(fns.numeric_value(v) for v in values)
        return Literal(total if isinstance(total, float) else int(total))
    if name == "AVG":
        return Literal(
            sum(fns.numeric_value(v) for v in values) / len(values)
        )
    if name == "MIN":
        return min(
            (v for v in values if isinstance(v, Literal)),
            key=literal_cmp_key,
        )
    if name == "MAX":
        return max(
            (v for v in values if isinstance(v, Literal)),
            key=literal_cmp_key,
        )
    if name == "SAMPLE":
        return values[0]
    if name == "GROUP_CONCAT":
        return Literal(agg.separator.join(fns.string_value(v) for v in values))
    raise EvaluationError(f"unknown aggregate {name}")


def _substitute_aggregates(expr: Expr, agg_values: Dict[int, Term]) -> Expr:
    """Replace Aggregate nodes by their computed constant values."""
    if isinstance(expr, Aggregate):
        return TermExpr(agg_values[id(expr)])
    if isinstance(expr, BinaryExpr):
        return BinaryExpr(
            expr.op,
            _substitute_aggregates(expr.left, agg_values),
            _substitute_aggregates(expr.right, agg_values),
        )
    if isinstance(expr, UnaryExpr):
        return UnaryExpr(
            expr.op, _substitute_aggregates(expr.operand, agg_values)
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name,
            tuple(_substitute_aggregates(a, agg_values) for a in expr.args),
        )
    return expr


def _collect_aggregates(expr: Optional[Expr]) -> List[Aggregate]:
    if expr is None:
        return []
    if isinstance(expr, Aggregate):
        return [expr]
    if isinstance(expr, BinaryExpr):
        return _collect_aggregates(expr.left) + _collect_aggregates(expr.right)
    if isinstance(expr, UnaryExpr):
        return _collect_aggregates(expr.operand)
    if isinstance(expr, FunctionCall):
        return list(
            itertools.chain.from_iterable(
                _collect_aggregates(a) for a in expr.args
            )
        )
    return []


def _group_and_aggregate(query: SelectQuery, rows: List[Solution],
                         ctx: Context) -> List[Solution]:
    groups: Dict[tuple, List[Solution]] = {}
    if query.group_by:
        for row in rows:
            key_parts = []
            for expr in query.group_by:
                try:
                    term = eval_expr(expr, row, ctx)
                    key_parts.append(term.n3() if hasattr(term, "n3")
                                     else str(term))
                except SparqlValueError:
                    key_parts.append(None)
            groups.setdefault(tuple(key_parts), []).append(row)
    else:
        groups[()] = rows

    out_rows: List[Solution] = []
    for member_rows in groups.values():
        representative = member_rows[0] if member_rows else {}
        agg_values: Dict[int, Term] = {}
        all_aggs: List[Aggregate] = []
        for proj in query.projections:
            all_aggs.extend(_collect_aggregates(proj.expr))
        for having in query.having:
            all_aggs.extend(_collect_aggregates(having))
        ok = True
        for agg in all_aggs:
            try:
                agg_values[id(agg)] = _eval_aggregate(agg, member_rows, ctx)
            except SparqlValueError:
                agg_values[id(agg)] = None
        row_out: Solution = {}
        for proj in query.projections:
            if proj.expr is None:
                if proj.var.name in representative:
                    row_out[proj.var.name] = representative[proj.var.name]
                continue
            expr = _substitute_aggregates(proj.expr, agg_values)
            try:
                if any(
                    agg_values.get(id(a)) is None
                    for a in _collect_aggregates(proj.expr)
                ):
                    raise SparqlValueError("aggregate error")
                row_out[proj.var.name] = eval_expr(expr, representative, ctx)
            except SparqlValueError:
                pass
        for having in query.having:
            expr = _substitute_aggregates(having, agg_values)
            try:
                if not effective_boolean_value(
                    eval_expr(expr, representative, ctx)
                ):
                    ok = False
                    break
            except SparqlValueError:
                ok = False
                break
        if ok:
            out_rows.append(row_out)
    return out_rows


# ---------------------------------------------------------------------------
# Query forms: plan, execute, attach the plan for EXPLAIN
# ---------------------------------------------------------------------------

def _ingest_feedback(ctx: Context, result: SPARQLResult) -> None:
    """Flow the executed query's profile rows into the stats store.

    Every operator row that carries a signature and actually probed —
    including zero-row scans — updates the store's per-probe mean;
    material drifts bump ``stats_version`` (once per query), which is
    what invalidates version-carrying plan caches.
    """
    stats = getattr(ctx, "stats", None)
    if stats is None or result.plan is None:
        return
    stats.observe_profile(result.profile())


@contextmanager
def _traced_execution(ctx: Context, sub):
    """Prepare one query execution: ids, zeroed counters, and — when the
    context carries a tracer — a plan-mirroring trace.

    The trace is published on ``ctx.trace`` for the duration (saved and
    restored, because sub-SELECTs re-enter :func:`eval_query` on the
    same context) and its root span is active around the whole pull, so
    summed operator self-times equal the root duration. On the way out
    span durations are copied onto the plan nodes for ``profile()``.
    """
    sub.root.assign_ids()
    sub.root.mark_executed()
    if ctx.tracer is None:
        yield None
        return
    from ..observability.trace import PlanTrace

    trace = PlanTrace(ctx.tracer, sub.root)
    if ctx.trace_id is not None:
        trace.root_span.attributes["trace_id"] = ctx.trace_id
    prev = ctx.trace
    ctx.trace = trace
    trace.root_span.enter()
    try:
        yield trace
    finally:
        trace.root_span.exit()
        ctx.trace = prev
        trace.finish()


def _eval_select(query: SelectQuery, ctx: Context, sub=None,
                 seed_rows: Optional[List[Solution]] = None) -> SPARQLResult:
    from .plan import plan_select

    if sub is None:
        sub = plan_select(query, ctx)
    with _traced_execution(ctx, sub) as trace:
        rows = list(sub.run(ctx, seed_rows if seed_rows is not None
                            else [{}]))
    sub.root.actual_rows = len(rows)

    # Result-row budget applies to what the caller will actually
    # receive (after DISTINCT/OFFSET/LIMIT narrowed the rows) — the
    # executor is the single row-charging boundary.
    if ctx.budget is not None:
        ctx.budget.charge_rows(len(rows))

    variables = [p.var.name for p in query.projections]
    if not variables:
        seen_vars = []
        for row in rows:
            for v in row:
                # internal hop variables from property-path expansion
                # are not part of the solution
                if v not in seen_vars and not v.startswith("__path"):
                    seen_vars.append(v)
        variables = seen_vars
    result = SPARQLResult("SELECT", variables=variables, rows=rows)
    result.plan = sub.root
    result.trace = trace.root_span if trace is not None else None
    _ingest_feedback(ctx, result)
    return result


def _eval_ask(query: AskQuery, ctx: Context, sub=None,
              seed_rows: Optional[List[Solution]] = None) -> SPARQLResult:
    from .plan import plan_query

    if sub is None:
        sub = plan_query(query, ctx)
    with _traced_execution(ctx, sub) as trace:
        # Short-circuit: the first solution proves the pattern.
        found = next(iter(sub.run(ctx, seed_rows if seed_rows is not None
                                  else [{}])), None)
    sub.root.actual_rows = 1 if found is not None else 0
    result = SPARQLResult("ASK", ask=found is not None)
    result.plan = sub.root
    result.trace = trace.root_span if trace is not None else None
    _ingest_feedback(ctx, result)
    return result


def _eval_construct(query: ConstructQuery, ctx: Context) -> SPARQLResult:
    from .plan import plan_query

    sub = plan_query(query, ctx)
    graph = Graph()
    with _traced_execution(ctx, sub) as trace:
        done = False
        for row in sub.run(ctx, [{}]):
            bnode_map: Dict[str, BNode] = {}
            for pattern in query.template:
                triple = _instantiate(pattern, row, bnode_map)
                if triple is not None:
                    graph.add(triple)
                    sub.root.actual_rows += 1
                    if ctx.budget is not None:
                        ctx.budget.charge_rows()
            if query.limit is not None and len(graph) >= query.limit:
                done = True
            if done:
                break
    result = SPARQLResult("CONSTRUCT", graph=graph)
    result.plan = sub.root
    result.trace = trace.root_span if trace is not None else None
    _ingest_feedback(ctx, result)
    return result


def _instantiate(pattern: TriplePattern, row: Solution,
                 bnode_map: Dict[str, BNode]):
    from ..rdf.terms import Triple

    def resolve(node):
        if isinstance(node, Var):
            return row.get(node.name)
        if isinstance(node, BNode):
            if node not in bnode_map:
                bnode_map[node] = BNode()
            return bnode_map[node]
        return node

    s, p, o = resolve(pattern.s), resolve(pattern.p), resolve(pattern.o)
    if s is None or p is None or o is None or isinstance(s, Literal):
        return None
    return Triple(s, p, o)


def _eval_describe(query: DescribeQuery, ctx: Context) -> SPARQLResult:
    from .plan import plan_query

    sub = plan_query(query, ctx)
    graph = Graph()
    targets = []
    with _traced_execution(ctx, sub) as trace:
        if query.where is not None:
            rows = list(sub.run(ctx, [{}]))
            for term in query.terms:
                if isinstance(term, Var):
                    targets.extend(
                        row[term.name] for row in rows if term.name in row
                    )
                else:
                    targets.append(term)
        else:
            targets = [t for t in query.terms if not isinstance(t, Var)]
        for target in targets:
            for triple in ctx.graph.triples((target, None, None)):
                graph.add(triple)
    sub.root.actual_rows = len(graph)
    result = SPARQLResult("DESCRIBE", graph=graph)
    result.plan = sub.root
    result.trace = trace.root_span if trace is not None else None
    _ingest_feedback(ctx, result)
    return result


def eval_query(query: Query, ctx: Context, sub=None,
               seed_rows: Optional[List[Solution]] = None) -> SPARQLResult:
    """Execute *query*; ``sub``/``seed_rows`` support prepared queries.

    ``sub`` is an optional pre-compiled
    :class:`~repro.sparql.operators.SubPlan` for the same query —
    passing one skips planning entirely (the plan-cache hot path).
    ``seed_rows`` seeds the pipeline with initial solutions, which is
    how prepared-query parameters are bound without re-parsing: a
    template variable bound in the seed row behaves exactly like a
    constant in every scan that mentions it. Both are honoured for
    SELECT and ASK; CONSTRUCT/DESCRIBE always re-plan (their executors
    consume the plan destructively enough that caching buys nothing).
    """
    if isinstance(query, SelectQuery):
        result = _eval_select(query, ctx, sub=sub, seed_rows=seed_rows)
    elif isinstance(query, AskQuery):
        result = _eval_ask(query, ctx, sub=sub, seed_rows=seed_rows)
    elif isinstance(query, ConstructQuery):
        result = _eval_construct(query, ctx)
    elif isinstance(query, DescribeQuery):
        result = _eval_describe(query, ctx)
    else:
        raise EvaluationError(
            f"unsupported query type {type(query).__name__}")
    result.trace_id = ctx.trace_id
    return result


def explain_query(query: Query, ctx: Context):
    """Plan *query* without executing it; returns the plan root node.

    Planning is deterministic, so the pre-order node ids assigned here
    are the ids an actual execution of the same query (and its trace
    spans and profile rows) will carry.
    """
    from .plan import plan_query

    root = plan_query(query, ctx).root
    root.assign_ids()
    return root
