"""Prepared queries: parse and plan once, execute many times.

A :class:`PreparedQuery` is the unit the service layer's plan cache
stores: the parsed AST plus the compiled physical plan
(:class:`~repro.sparql.operators.SubPlan`) for one query *template*.
Re-executing it skips the tokenizer, the parser and the planner — only
the streaming operators run, reseeded for each execution.

Two properties of the operator layer make this safe:

- operators keep per-execution state inside their ``rows()``
  generators (hash tables, DISTINCT sets, heaps), so a pipeline can be
  pulled again from scratch — OPTIONAL's left join already relies on
  re-running sub-plans per outer row;
- ``PlanNode.mark_executed()`` zeroes the actual-row counters at the
  start of every execution, so EXPLAIN actuals always describe the
  most recent run.

What is *not* safe is pulling the same prepared plan from two threads
at once (the seed row and the plan counters are shared); the service
executes requests for one dataset strictly serially, which is also
what keeps its traces deterministic.

Parameters are bound through the *seed row*: a template written with a
free variable (``SELECT ?name WHERE { ?s ?kindOf ?name }``) can be
executed with ``bindings={"kindOf": IRI(...)}``; every scan that
mentions the variable then treats it as a constant, exactly as if the
pipeline had been seeded by an outer join row. This is what lets many
parameterizations share one cache entry.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..rdf.graph import Graph
from ..rdf.terms import Term
from .ast import AskQuery, SelectQuery
from .evaluator import Context, eval_query
from .parser import parse_query
from .results import SPARQLResult

__all__ = ["PreparedQuery", "prepare"]

#: Query forms whose compiled plans are reused across executions.
_REUSABLE_FORMS = (SelectQuery, AskQuery)


class PreparedQuery:
    """One parsed + planned query template, bound to one graph."""

    __slots__ = ("graph", "text", "ast", "sub", "executions",
                 "stats", "stats_version")

    def __init__(self, graph: Graph, text: str, ast, sub,
                 stats=None, stats_version=None):
        self.graph = graph
        self.text = text
        self.ast = ast
        self.sub = sub  # None for non-reusable forms (CONSTRUCT...)
        self.executions = 0
        #: StatsStore the plan was compiled against (None = no feedback).
        self.stats = stats
        #: The store's version at planning time; a later version means
        #: feedback has materially changed and the plan may be stale.
        self.stats_version = stats_version

    @property
    def reusable(self) -> bool:
        """Whether executions reuse the compiled plan (SELECT/ASK)."""
        return self.sub is not None

    def run(self, bindings: Optional[Dict[str, Term]] = None,
            budget=None, tracer=None,
            service_resolver=None, replan_ratio=None,
            trace_id=None) -> SPARQLResult:
        """Execute the prepared plan; parsing and planning are skipped.

        ``bindings`` maps template variable names (no ``?``) to RDF
        terms; they seed the pipeline's initial solution.

        When the template was prepared with a :class:`StatsStore`, each
        execution's profile flows back into it; ``replan_ratio``
        additionally arms mid-query join re-ordering. ``trace_id`` is a
        caller-assigned correlation id stamped on the root span and the
        result (the service's query log joins on it).
        """
        ctx = Context(self.graph, service_resolver=service_resolver,
                      budget=budget, tracer=tracer, stats=self.stats,
                      replan_ratio=replan_ratio, trace_id=trace_id)
        seed = [dict(bindings)] if bindings else None
        result = eval_query(self.ast, ctx, sub=self.sub, seed_rows=seed)
        self.executions += 1
        if budget is not None:
            result.budget_stats = budget.snapshot()
        return result

    def explain(self) -> str:
        """Rendered plan of the compiled template (estimates only until
        the first execution fills in actuals)."""
        if self.sub is None:
            return "(non-reusable query form; planned per execution)"
        if self.sub.root.id is None:
            self.sub.root.assign_ids()
        return self.sub.root.render()

    def __repr__(self) -> str:
        head = self.text.strip().splitlines()[0][:60]
        return (f"<PreparedQuery {head!r} reusable={self.reusable} "
                f"executions={self.executions}>")


def prepare(graph: Graph, text: str,
            service_resolver=None, stats=None) -> PreparedQuery:
    """Parse and plan *text* against *graph* once, for many executions.

    SELECT and ASK compile to a reusable pipeline; other query forms
    still get their parse cached but re-plan per execution. When a
    :class:`StatsStore` is given the planner consults its feedback and
    the prepared query records the store's version, so caches can tell
    when accumulated feedback has made the plan stale.
    """
    from .plan import plan_query

    ast = parse_query(text, namespaces=graph.namespaces)
    sub = None
    if isinstance(ast, _REUSABLE_FORMS):
        ctx = Context(graph, service_resolver=service_resolver, stats=stats)
        sub = plan_query(ast, ctx)
        sub.root.assign_ids()
    return PreparedQuery(
        graph, text, ast, sub, stats=stats,
        stats_version=stats.version if stats is not None else None)
