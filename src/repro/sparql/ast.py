"""Abstract syntax tree for the SPARQL subset.

Dataclasses only — evaluation lives in :mod:`repro.sparql.evaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..rdf.terms import Term


@dataclass(frozen=True)
class Var:
    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


NodeOrVar = Union[Term, Var]


@dataclass(frozen=True)
class TriplePattern:
    s: NodeOrVar
    p: NodeOrVar
    o: NodeOrVar

    def variables(self):
        for t in (self.s, self.p, self.o):
            if isinstance(t, Var):
                yield t


# -- expressions --------------------------------------------------------------

@dataclass(frozen=True)
class TermExpr:
    """A constant RDF term used in an expression."""

    term: Term


@dataclass(frozen=True)
class VarExpr:
    var: Var


@dataclass(frozen=True)
class UnaryExpr:
    op: str  # '!' or '-'
    operand: "Expr"


@dataclass(frozen=True)
class BinaryExpr:
    op: str  # '||' '&&' '=' '!=' '<' '>' '<=' '>=' '+' '-' '*' '/'
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class FunctionCall:
    """Builtin (upper-case name) or IRI-named extension function."""

    name: str
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class InExpr:
    value: "Expr"
    options: Tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class ExistsExpr:
    group: "GroupGraphPattern"
    negated: bool = False


@dataclass(frozen=True)
class Aggregate:
    """COUNT/SUM/AVG/MIN/MAX/SAMPLE/GROUP_CONCAT over an expression."""

    name: str
    expr: Optional["Expr"]  # None for COUNT(*)
    distinct: bool = False
    separator: str = " "


Expr = Union[
    TermExpr, VarExpr, UnaryExpr, BinaryExpr, FunctionCall, InExpr,
    ExistsExpr, Aggregate,
]


# -- graph patterns ------------------------------------------------------------

@dataclass
class BGP:
    patterns: List[TriplePattern] = field(default_factory=list)


@dataclass
class Filter:
    expr: Expr


@dataclass
class OptionalPattern:
    group: "GroupGraphPattern"


@dataclass
class UnionPattern:
    alternatives: List["GroupGraphPattern"]


@dataclass
class MinusPattern:
    group: "GroupGraphPattern"


@dataclass
class Bind:
    expr: Expr
    var: Var


@dataclass
class InlineValues:
    variables: List[Var]
    rows: List[List[Optional[Term]]]  # None encodes UNDEF


@dataclass
class ServicePattern:
    """SERVICE <endpoint> { ... } — used by the federation engine."""

    endpoint: Term
    group: "GroupGraphPattern"
    silent: bool = False


@dataclass
class SubSelect:
    query: "SelectQuery"


GroupElement = Union[
    BGP, Filter, OptionalPattern, UnionPattern, MinusPattern, Bind,
    InlineValues, ServicePattern, SubSelect,
]


@dataclass
class GroupGraphPattern:
    elements: List[GroupElement] = field(default_factory=list)


# -- queries ---------------------------------------------------------------

@dataclass
class Projection:
    """One SELECT item: a plain variable or ``(expr AS ?v)``."""

    var: Var
    expr: Optional[Expr] = None


@dataclass
class OrderCondition:
    expr: Expr
    descending: bool = False


@dataclass
class SelectQuery:
    projections: List[Projection]  # empty means SELECT *
    where: GroupGraphPattern
    distinct: bool = False
    group_by: List[Expr] = field(default_factory=list)
    having: List[Expr] = field(default_factory=list)
    order_by: List[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0


@dataclass
class AskQuery:
    where: GroupGraphPattern


@dataclass
class ConstructQuery:
    template: List[TriplePattern]
    where: GroupGraphPattern
    limit: Optional[int] = None


@dataclass
class DescribeQuery:
    terms: List[NodeOrVar]
    where: Optional[GroupGraphPattern] = None


Query = Union[SelectQuery, AskQuery, ConstructQuery, DescribeQuery]
