"""Deterministic partition-spill hash join build side.

The in-memory hash joins (``_HashJoiner`` in
:mod:`repro.sparql.operators`) hold their whole build side in memory.
:class:`SpillHashJoin` is the grace-hash variant the VALUES / sub-select
/ SERVICE joins switch to when a spill threshold is armed on the
:class:`~repro.sparql.evaluator.Context`: build rows are partitioned by
a **stable crc32 hash of the join-key values** (never Python's salted
``hash()``) into a fixed number of partitions, and whenever the
in-memory build side exceeds ``max_build_rows`` the largest partition
is flushed to a spill file under ``out/`` — so the join survives build
inputs much larger than memory while producing output byte-identical
to the in-memory join, including row order.

Spill format: one JSON line per row, ``[build_index, {var: [kind,
lexical, datatype, lang]}]``, appended in ascending build-index order
(each file is sorted by construction). File names are a pure function
of the caller-supplied tag and the partition number, and every write
and read-back is budget-charged, so spills are deterministic,
accounted, and byte-identical across worker counts.

This module is under the determinism lint's *total* ``time.`` /
``random.`` ban — same tier as the chaos layer.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..rdf.terms import BNode, IRI, Literal, Term

Solution = Dict[str, Term]

#: Fixed partition fan-out. A pure constant (not derived from input
#: size) so partition assignment — and therefore spill-file contents —
#: never depends on how large the build side happened to be.
SPILL_PARTITIONS = 8

#: Default directory for spill files, relative to the working
#: directory (the repo checkout in tests/CI). Callers running
#: concurrent queries should pass a per-query ``spill_dir``.
DEFAULT_SPILL_DIR = Path("out") / "spill"

#: Observer hook for tests and benchmarks: when set, called with each
#: joiner's final ``stats`` dict (including spill-file digests) at
#: close time. Deterministic inputs produce deterministic stats, so
#: the hook never influences results.
SPILL_OBSERVER = None


def _term_key(term: Term) -> Tuple:
    if isinstance(term, Literal):
        return ("literal", term.lexical,
                str(term.datatype) if term.datatype else None, term.lang)
    if isinstance(term, BNode):
        return ("bnode", str(term), None, None)
    return ("iri", str(term), None, None)


def _term_from_key(key: Sequence) -> Term:
    kind, lexical, datatype, lang = key
    if kind == "literal":
        return Literal(lexical, datatype=IRI(datatype) if datatype else None,
                       lang=lang)
    if kind == "bnode":
        return BNode(lexical)
    return IRI(lexical)


def stable_key_hash(row: Solution, key: Sequence[str]) -> int:
    """crc32 of the canonical n3 encoding of *row*'s join-key values."""
    text = "\x1f".join(row[var].n3() for var in key)
    return zlib.crc32(text.encode("utf-8"))


def _compatible(left: Solution, right: Solution) -> bool:
    for var, term in right.items():
        bound = left.get(var)
        if bound is not None and bound != term:
            return False
    return True


class SpillHashJoin:
    """Bounded-memory build side with deterministic partition spill.

    Reproduces ``_HashJoiner`` semantics exactly: probes yield the
    compatible build rows merged into the probe row, ordered by the
    build row's original index. *key* is the static join key computed
    at plan time (the variables bound upstream that the build side also
    binds); build rows that do not bind the full key are kept in a
    separate in-memory list and checked against every probe, which
    preserves correctness for UNDEF / optional-heavy build sides.
    """

    def __init__(self, key: Sequence[str], *, max_build_rows: int,
                 spill_dir, tag: str, budget=None,
                 partitions: int = SPILL_PARTITIONS):
        self.key = tuple(key)
        self.max_build_rows = max(0, max_build_rows)
        self.spill_dir = Path(spill_dir)
        self.tag = tag
        self.budget = budget
        self.partitions = partitions
        self._mem: Dict[int, List[Tuple[int, Solution]]] = {
            p: [] for p in range(partitions)}
        self._mem_count = 0
        self._irregular: List[Tuple[int, Solution]] = []
        self._files: Dict[int, Path] = {}
        self._loaded: Optional[Tuple[int, List[Tuple[int, Solution]]]] = None
        self._closed = False
        self.stats = {
            "build_rows": 0,
            "irregular_rows": 0,
            "peak_build_rows": 0,
            "spilled_rows": 0,
            "partitions_spilled": 0,
            "file_digests": {},
        }

    # -- build ----------------------------------------------------------
    def _partition_of(self, index: int, row: Solution) -> Optional[int]:
        if not self.key:
            # cross joins have no key values to hash; striping by build
            # index keeps memory bounded and stays deterministic
            return index % self.partitions
        if all(var in row for var in self.key):
            return stable_key_hash(row, self.key) % self.partitions
        return None

    def build(self, rows: Iterable[Solution]) -> None:
        """Consume the build side, spilling as the bound requires."""
        for index, row in enumerate(rows):
            self.stats["build_rows"] += 1
            part = self._partition_of(index, row)
            if part is None:
                self._irregular.append((index, row))
                self.stats["irregular_rows"] += 1
                continue
            self._mem[part].append((index, row))
            self._mem_count += 1
            self._enforce_bound()
            peak = self.stats["peak_build_rows"]
            if self._mem_count > peak:
                self.stats["peak_build_rows"] = self._mem_count

    def _enforce_bound(self) -> None:
        while self._mem_count > self.max_build_rows:
            # flush the largest in-memory partition; ties break to the
            # lowest partition id so the flush sequence is deterministic
            part = max(self._mem, key=lambda p: (len(self._mem[p]), -p))
            if not self._mem[part]:
                break
            self._flush(part)

    def _flush(self, part: int) -> None:
        entries = self._mem[part]
        path = self._files.get(part)
        if path is None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            path = self.spill_dir / f"{self.tag}-p{part:02d}.spill"
            self._files[part] = path
            self.stats["partitions_spilled"] += 1
        if self.budget is not None:
            self.budget.charge_triples(len(entries))
        with path.open("a", encoding="utf-8") as handle:
            for index, row in entries:
                encoded = {var: _term_key(term) for var, term in row.items()}
                handle.write(json.dumps([index, encoded], sort_keys=True,
                                        separators=(",", ":")) + "\n")
        self.stats["spilled_rows"] += len(entries)
        self._mem_count -= len(entries)
        self._mem[part] = []

    # -- probe ----------------------------------------------------------
    def _read_file(self, part: int) -> Iterator[Tuple[int, Solution]]:
        path = self._files.get(part)
        if path is None:
            return
        with path.open(encoding="utf-8") as handle:
            for line in handle:
                if self.budget is not None:
                    self.budget.charge_triples(1)
                index, encoded = json.loads(line)
                yield index, {var: _term_from_key(key)
                              for var, key in encoded.items()}

    def _loaded_partition(self, part: int) -> List[Tuple[int, Solution]]:
        # cache exactly one spilled partition at a time: repeated
        # probes of the same key region re-use it, and memory stays
        # bounded by one partition plus the in-memory build side
        if self._loaded is not None and self._loaded[0] == part:
            return self._loaded[1]
        entries = list(self._read_file(part))
        self._loaded = (part, entries)
        return entries

    def matches(self, left: Solution) -> Iterator[Solution]:
        """Compatible build rows merged into *left*, in build order."""
        hits: List[Tuple[int, Solution]] = []

        def consider(entries):
            for index, row in entries:
                if _compatible(left, row):
                    hits.append((index, row))

        if self.key and all(var in left for var in self.key):
            part = stable_key_hash(left, self.key) % self.partitions
            consider(self._mem[part])
            if part in self._files:
                consider(self._loaded_partition(part))
        else:
            # the probe does not bind the full key (or there is none):
            # every partition may hold compatible rows
            for part in range(self.partitions):
                consider(self._mem[part])
            for part in sorted(self._files):
                consider(self._read_file(part))
        consider(self._irregular)
        hits.sort(key=lambda entry: entry[0])
        for _, row in hits:
            merged = dict(left)
            merged.update(row)
            yield merged

    # -- lifecycle ------------------------------------------------------
    def close(self) -> Dict[str, object]:
        """Digest and remove every spill file; returns final stats.

        Always called (operators wrap probes in ``try/finally``), so a
        ``BudgetExceeded`` raised mid-build or mid-spill leaves no
        orphan files under ``out/``.
        """
        if self._closed:
            return self.stats
        self._closed = True
        digests = self.stats["file_digests"]
        for part in sorted(self._files):
            path = self._files[part]
            if path.exists():
                digests[f"p{part:02d}"] = hashlib.sha256(
                    path.read_bytes()).hexdigest()
                path.unlink()
        try:
            if self._files and not any(self.spill_dir.iterdir()):
                self.spill_dir.rmdir()
        except OSError:  # concurrent writers own the directory
            pass
        self._loaded = None
        observer = SPILL_OBSERVER
        if observer is not None:
            observer(dict(self.stats))
        return self.stats
