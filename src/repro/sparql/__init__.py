"""SPARQL 1.1 subset engine with GeoSPARQL and temporal extensions.

Entry point::

    from repro.sparql import query
    result = query(graph, "SELECT ?s WHERE { ?s a <...> }")
"""

from typing import Callable, Optional

from ..rdf.graph import Graph
from .evaluator import (
    Context,
    EvaluationError,
    eval_group,
    eval_query,
    explain_query,
)
from .plan import PlanNode
from .functions import (
    SparqlValueError,
    clear_geometry_cache,
    geometry_from_term,
    geometry_to_term,
    register_extension,
)
from .parser import parse_query
from .prepared import PreparedQuery, prepare
from .results import SPARQLResult
from .stats import StatsStore
from .tokenizer import SparqlSyntaxError
from .update import UpdateResult, update

__all__ = [
    "Context",
    "EvaluationError",
    "PlanNode",
    "PreparedQuery",
    "SPARQLResult",
    "StatsStore",
    "explain",
    "SparqlSyntaxError",
    "SparqlValueError",
    "clear_geometry_cache",
    "eval_group",
    "eval_query",
    "geometry_from_term",
    "geometry_to_term",
    "parse_query",
    "prepare",
    "query",
    "register_extension",
    "update",
    "UpdateResult",
]


def query(graph: Graph, text: str,
          service_resolver: Optional[Callable] = None,
          budget=None, tracer=None, stats=None,
          replan_ratio=None, pool=None, batch_size=None,
          spill_threshold=None, spill_dir=None) -> SPARQLResult:
    """Parse and evaluate a (Geo)SPARQL query against *graph*.

    ``service_resolver(endpoint_iri, group)`` is called for SERVICE
    patterns; see :mod:`repro.sparql.federation`.

    ``budget`` is an optional :class:`~repro.governance.QueryBudget`;
    when given, evaluation is cooperatively cancellable (deadline, row
    and scan limits) and the result carries ``budget_stats``.

    ``tracer`` is an optional :class:`~repro.observability.Tracer`;
    when given, execution builds a trace tree mirroring the plan
    (``result.trace``) and ``result.profile()`` reports per-operator
    timings keyed by the EXPLAIN node ids.

    ``stats`` is an optional :class:`StatsStore`: the planner consults
    its recorded per-operator feedback before index statistics, and the
    executed profile flows back into it afterwards. ``replan_ratio``
    (float > 1) additionally arms mid-query join re-ordering when a
    scan's actuals diverge from its estimate by that factor.

    ``pool`` / ``batch_size`` / ``spill_threshold`` / ``spill_dir``
    configure the sharded, batched data plane — see
    :class:`~repro.sparql.evaluator.Context` for their semantics.
    """
    ast = parse_query(text, namespaces=graph.namespaces)
    ctx = Context(graph, service_resolver=service_resolver, budget=budget,
                  tracer=tracer, stats=stats, replan_ratio=replan_ratio,
                  pool=pool, batch_size=batch_size,
                  spill_threshold=spill_threshold, spill_dir=spill_dir)
    result = eval_query(ast, ctx)
    if budget is not None:
        result.budget_stats = budget.snapshot()
    return result


def explain(graph: Graph, text: str,
            service_resolver: Optional[Callable] = None,
            budget=None, stats=None, pool=None, batch_size=None,
            spill_threshold=None, spill_dir=None) -> PlanNode:
    """Plan a query without executing it (the EXPLAIN entry point).

    Returns the root :class:`~repro.sparql.plan.PlanNode`; render it
    with ``.render()``. Estimated per-operator rows are filled in from
    the graph's index statistics — or from ``stats`` feedback when a
    store is given (``src=feedback`` in the rendering); actual rows
    show as ``-`` because nothing ran. To see estimates next to
    actuals, run :func:`query` and render ``result.plan`` instead.
    """
    ast = parse_query(text, namespaces=graph.namespaces)
    ctx = Context(graph, service_resolver=service_resolver, budget=budget,
                  stats=stats, pool=pool, batch_size=batch_size,
                  spill_threshold=spill_threshold, spill_dir=spill_dir)
    return explain_query(ast, ctx)
