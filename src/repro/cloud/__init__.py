"""Cloud substrate: Terradue platform, sandbox PaaS, mini-Kubernetes."""

from .kubernetes import Cluster, DeploymentSpec, KubeError, Pod, PodSpec
from .platform import (
    Appliance,
    Deployment,
    DockerImage,
    Environment,
    PlatformError,
    Release,
    TerraduePlatform,
)
from .sandbox import (
    AppPackage,
    ExecutionReport,
    Sandbox,
    SandboxError,
    TaskResult,
)

__all__ = [
    "AppPackage",
    "Appliance",
    "Cluster",
    "Deployment",
    "DeploymentSpec",
    "DockerImage",
    "Environment",
    "ExecutionReport",
    "KubeError",
    "PlatformError",
    "Pod",
    "PodSpec",
    "Release",
    "Sandbox",
    "SandboxError",
    "TaskResult",
    "TerraduePlatform",
]
