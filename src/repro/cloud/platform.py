"""The Terradue cloud platform: appliances, releases, burst deployment.

Section 5: the platform provides "the ability to manage all software
components as cloud appliances, manage releases of the project software
stack, deploy on demand this software stack on target infrastructures
(e.g., at VITO), monitor operations ... and manage solution updates and
transfer to operations via cloud bursting", so that "when the five DIAS
will be operational, the Copernicus App Lab software will also be able
to run on them".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class PlatformError(RuntimeError):
    """Raised for unknown appliances/environments or capacity issues."""


@dataclass(frozen=True)
class DockerImage:
    """An immutable appliance image reference."""

    name: str
    tag: str

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"


@dataclass
class Appliance:
    """One component of the App Lab stack packaged as an appliance."""

    name: str
    image: DockerImage
    cpu: int = 1
    memory_gb: int = 2


@dataclass
class Release:
    """A versioned set of appliances (the project software stack)."""

    version: str
    appliances: Dict[str, Appliance] = field(default_factory=dict)


@dataclass
class Environment:
    """A target infrastructure (Terradue itself, VITO MEP, a DIAS...)."""

    name: str
    cpu_capacity: int = 16
    memory_capacity_gb: int = 64

    cpu_used: int = 0
    memory_used_gb: int = 0

    def can_host(self, appliance: Appliance) -> bool:
        return (
            self.cpu_used + appliance.cpu <= self.cpu_capacity
            and self.memory_used_gb + appliance.memory_gb
            <= self.memory_capacity_gb
        )

    def allocate(self, appliance: Appliance) -> None:
        if not self.can_host(appliance):
            raise PlatformError(
                f"environment {self.name!r} lacks capacity for "
                f"{appliance.name!r}"
            )
        self.cpu_used += appliance.cpu
        self.memory_used_gb += appliance.memory_gb

    def release_resources(self, appliance: Appliance) -> None:
        self.cpu_used -= appliance.cpu
        self.memory_used_gb -= appliance.memory_gb


@dataclass
class Deployment:
    deployment_id: str
    appliance: Appliance
    environment: str
    release_version: str
    status: str = "running"
    log: List[str] = field(default_factory=list)


class TerraduePlatform:
    """Release management + on-demand deployment + cloud bursting."""

    def __init__(self):
        self._releases: Dict[str, Release] = {}
        self._environments: Dict[str, Environment] = {}
        self._deployments: Dict[str, Deployment] = {}
        self._counter = itertools.count(1)

    # -- registry ----------------------------------------------------------
    def add_environment(self, environment: Environment) -> Environment:
        self._environments[environment.name] = environment
        return environment

    def environment(self, name: str) -> Environment:
        try:
            return self._environments[name]
        except KeyError:
            raise PlatformError(f"unknown environment {name!r}") from None

    def new_release(self, version: str,
                    appliances: List[Appliance]) -> Release:
        if version in self._releases:
            raise PlatformError(f"release {version!r} already exists")
        release = Release(version, {a.name: a for a in appliances})
        self._releases[version] = release
        return release

    def release(self, version: str) -> Release:
        try:
            return self._releases[version]
        except KeyError:
            raise PlatformError(f"unknown release {version!r}") from None

    def releases(self) -> List[str]:
        return sorted(self._releases)

    # -- deployment lifecycle --------------------------------------------------
    def deploy(self, version: str, appliance_name: str,
               environment_name: str) -> Deployment:
        release = self.release(version)
        appliance = release.appliances.get(appliance_name)
        if appliance is None:
            raise PlatformError(
                f"release {version} has no appliance {appliance_name!r}"
            )
        environment = self.environment(environment_name)
        environment.allocate(appliance)
        deployment = Deployment(
            deployment_id=f"dep-{next(self._counter)}",
            appliance=appliance,
            environment=environment_name,
            release_version=version,
        )
        deployment.log.append(
            f"deployed {appliance.image.reference} to {environment_name}"
        )
        self._deployments[deployment.deployment_id] = deployment
        return deployment

    def deploy_stack(self, version: str,
                     environment_name: str) -> List[Deployment]:
        """Deploy every appliance of a release (the full App Lab stack)."""
        release = self.release(version)
        return [
            self.deploy(version, name, environment_name)
            for name in sorted(release.appliances)
        ]

    def burst(self, deployment_id: str,
              target_environment: str) -> Deployment:
        """Cloud bursting: replicate a running deployment elsewhere."""
        source = self._deployment(deployment_id)
        clone = self.deploy(
            source.release_version, source.appliance.name,
            target_environment,
        )
        clone.log.append(f"burst from {source.environment}")
        return clone

    def upgrade(self, deployment_id: str, version: str) -> Deployment:
        """Replace a deployment's appliance with a newer release's."""
        old = self._deployment(deployment_id)
        replacement = self.deploy(version, old.appliance.name,
                                  old.environment)
        self.teardown(deployment_id)
        replacement.log.append(
            f"upgraded from {old.release_version} to {version}"
        )
        return replacement

    def teardown(self, deployment_id: str) -> None:
        deployment = self._deployment(deployment_id)
        self.environment(deployment.environment).release_resources(
            deployment.appliance
        )
        deployment.status = "terminated"
        deployment.log.append("terminated")

    def _deployment(self, deployment_id: str) -> Deployment:
        try:
            return self._deployments[deployment_id]
        except KeyError:
            raise PlatformError(
                f"unknown deployment {deployment_id!r}"
            ) from None

    # -- operations monitoring -----------------------------------------------
    def running(self, environment_name: Optional[str] = None
                ) -> List[Deployment]:
        return [
            d for d in self._deployments.values()
            if d.status == "running"
            and (environment_name is None
                 or d.environment == environment_name)
        ]

    def status_report(self) -> Dict[str, Dict[str, int]]:
        report: Dict[str, Dict[str, int]] = {}
        for env in self._environments.values():
            report[env.name] = {
                "deployments": len(self.running(env.name)),
                "cpu_used": env.cpu_used,
                "cpu_capacity": env.cpu_capacity,
            }
        return report
