"""A miniature Kubernetes: deployments, replica sets, self-healing.

Section 3.1: "we used Kubernetes for managing the containerized
applications across multiple hosts, that provides the mechanisms for
deployment, maintenance, and scaling of the RAMANI Cloud Analytics
backend services." This module provides the part of that behaviour the
stack exercises: declarative deployments reconciled to a replica count,
scaling, rolling image updates, pod failure + self-healing, and a
round-robin service endpoint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class KubeError(RuntimeError):
    """Raised for operations on unknown deployments or pods."""


@dataclass(frozen=True)
class PodSpec:
    image: str
    command: str = ""
    labels: Dict[str, str] = field(default_factory=dict)


@dataclass
class Pod:
    name: str
    spec: PodSpec
    node: str
    status: str = "Running"
    restarts: int = 0


@dataclass
class DeploymentSpec:
    name: str
    replicas: int
    pod_spec: PodSpec


class Cluster:
    """A fixed set of nodes scheduling pods round-robin."""

    def __init__(self, nodes: Optional[List[str]] = None):
        self.nodes = nodes or ["node-1", "node-2", "node-3"]
        self._deployments: Dict[str, DeploymentSpec] = {}
        self._pods: Dict[str, Pod] = {}
        self._counter = itertools.count(1)
        self._rr: Dict[str, int] = {}

    # -- declarative API ----------------------------------------------------
    def apply(self, spec: DeploymentSpec) -> List[Pod]:
        """Create or update a deployment; reconciles immediately."""
        if spec.replicas < 0:
            raise KubeError("replicas must be >= 0")
        existing = self._deployments.get(spec.name)
        self._deployments[spec.name] = spec
        if existing is not None and existing.pod_spec != spec.pod_spec:
            # rolling update: replace every pod with the new spec
            for pod in self.pods_of(spec.name):
                del self._pods[pod.name]
        return self.reconcile(spec.name)

    def scale(self, name: str, replicas: int) -> List[Pod]:
        spec = self._deployment(name)
        self._deployments[name] = DeploymentSpec(
            name, replicas, spec.pod_spec
        )
        return self.reconcile(name)

    def delete(self, name: str) -> None:
        self._deployment(name)
        del self._deployments[name]
        for pod in self.pods_of(name):
            del self._pods[pod.name]

    def _deployment(self, name: str) -> DeploymentSpec:
        try:
            return self._deployments[name]
        except KeyError:
            raise KubeError(f"no deployment {name!r}") from None

    # -- reconciliation (the control loop) ----------------------------------
    def reconcile(self, name: Optional[str] = None) -> List[Pod]:
        """Drive actual pods toward the declared replica counts."""
        names = [name] if name else list(self._deployments)
        touched: List[Pod] = []
        for dep_name in names:
            spec = self._deployment(dep_name)
            alive = [
                p for p in self.pods_of(dep_name) if p.status == "Running"
            ]
            # remove failed pods
            for pod in self.pods_of(dep_name):
                if pod.status != "Running":
                    del self._pods[pod.name]
            while len(alive) < spec.replicas:
                pod = self._spawn(dep_name, spec.pod_spec)
                alive.append(pod)
                touched.append(pod)
            while len(alive) > spec.replicas:
                victim = alive.pop()
                del self._pods[victim.name]
        return touched

    def _spawn(self, deployment: str, pod_spec: PodSpec) -> Pod:
        index = next(self._counter)
        node = self.nodes[index % len(self.nodes)]
        pod = Pod(name=f"{deployment}-{index}", spec=pod_spec, node=node)
        self._pods[pod.name] = pod
        return pod

    # -- observation ----------------------------------------------------------
    def pods_of(self, deployment: str) -> List[Pod]:
        prefix = deployment + "-"
        return sorted(
            (p for p in self._pods.values()
             if p.name.startswith(prefix)),
            key=lambda p: p.name,
        )

    def all_pods(self) -> List[Pod]:
        return sorted(self._pods.values(), key=lambda p: p.name)

    # -- failure injection --------------------------------------------------------
    def kill_pod(self, pod_name: str) -> None:
        try:
            self._pods[pod_name].status = "Failed"
        except KeyError:
            raise KubeError(f"no pod {pod_name!r}") from None

    # -- service endpoint ----------------------------------------------------------
    def endpoint(self, deployment: str) -> Pod:
        """Round-robin over the deployment's running pods."""
        pods = [
            p for p in self.pods_of(deployment) if p.status == "Running"
        ]
        if not pods:
            raise KubeError(f"deployment {deployment!r} has no running pods")
        index = self._rr.get(deployment, 0)
        self._rr[deployment] = index + 1
        return pods[index % len(pods)]
