"""The developer cloud sandbox (PaaS) of the Terradue platform.

Section 3: "the developer cloud sandbox service provides a
platform-as-a-service environment to prepare data and processors ...
The platform allows application developers to access Copernicus data
and carry out massively parallel processing without the need to
download the data in their own servers."

An :class:`AppPackage` wraps a processor function; :class:`Sandbox.run`
fans the processor out over the inputs (thread pool — the work is
I/O-ish DAP access) and returns results plus an execution report.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class SandboxError(RuntimeError):
    """Raised for packaging or execution failures."""


@dataclass
class AppPackage:
    """A deployable EO application: a processor plus its manifest."""

    name: str
    processor: Callable
    version: str = "1.0"
    requirements: Tuple[str, ...] = ()

    def __post_init__(self):
        if not callable(self.processor):
            raise SandboxError("processor must be callable")


@dataclass
class TaskResult:
    input: object
    output: object = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ExecutionReport:
    app: str
    tasks: int
    succeeded: int
    failed: int
    wall_time_s: float
    results: List[TaskResult] = field(default_factory=list)

    @property
    def outputs(self) -> List[object]:
        return [r.output for r in self.results if r.ok]


class Sandbox:
    """Runs packaged apps over input lists with bounded parallelism."""

    def __init__(self, parallelism: int = 4,
                 clock: Callable[[], float] = time.perf_counter):
        if parallelism < 1:
            raise SandboxError("parallelism must be >= 1")
        self.parallelism = parallelism
        self.clock = clock
        self.history: List[ExecutionReport] = []

    def run(self, app: AppPackage, inputs: Sequence,
            **kwargs) -> ExecutionReport:
        """Execute the app's processor once per input."""
        start = self.clock()
        results: List[TaskResult] = []

        def one(item) -> TaskResult:
            try:
                return TaskResult(item, app.processor(item, **kwargs))
            except Exception as exc:  # processor errors are task failures
                return TaskResult(item, error=f"{type(exc).__name__}: {exc}")

        if self.parallelism == 1 or len(inputs) <= 1:
            results = [one(item) for item in inputs]
        else:
            with ThreadPoolExecutor(self.parallelism) as pool:
                results = list(pool.map(one, inputs))
        report = ExecutionReport(
            app=app.name,
            tasks=len(results),
            succeeded=sum(1 for r in results if r.ok),
            failed=sum(1 for r in results if not r.ok),
            wall_time_s=self.clock() - start,
            results=results,
        )
        self.history.append(report)
        return report
