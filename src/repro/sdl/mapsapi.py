"""The RAMANI VISual Maps-API.

Section 3.3 lists the request methods App developers consume:
getMetadata, getDerivedData, getMap, getAnimation, getTransect,
getPoint, getArea, getVerticalProfile, getSpectralProfile (for
multi-spectral EO data), getMapSwipe, getTimeseriesProfile.

All methods take data from the SDL (never SPARQL — that is Sextant's
side of the fence) and enforce RAMANI token auth through it.
"""

from __future__ import annotations

from datetime import datetime
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..opendap import DapDataset, decode_time
from ..opendap.model import apply_fill_and_scale
from .analytics import RamaniCloudAnalytics
from .library import SdlError, StreamingDataLibrary

BBox = Tuple[float, float, float, float]
LonLat = Tuple[float, float]


class MapsApiError(ValueError):
    """Raised for requests the dataset cannot satisfy."""


class MapsApi:
    """The eleven request methods over an SDL."""

    def __init__(self, sdl: StreamingDataLibrary,
                 token: Optional[str] = None):
        self.sdl = sdl
        self.token = token
        self.analytics = RamaniCloudAnalytics(sdl, token=token)

    # -- helpers ------------------------------------------------------------
    def _window(self, dataset: str, variable: str,
                bbox: Optional[BBox]) -> DapDataset:
        return self.sdl.fetch_window(dataset, variable, bbox=bbox,
                                     token=self.token)

    @staticmethod
    def _time_index(subset: DapDataset, when: Optional[datetime]) -> int:
        times = decode_time(subset["time"])
        if when is None:
            return len(times) - 1
        deltas = [abs((t - when).total_seconds()) for t in times]
        return int(np.argmin(deltas))

    @staticmethod
    def _values(subset: DapDataset, variable: str) -> np.ndarray:
        return apply_fill_and_scale(subset[variable])

    # -- 1. getMetadata ----------------------------------------------------
    def get_metadata(self, dataset: str) -> Dict[str, object]:
        return self.sdl.characteristics(dataset, token=self.token)

    # -- 2. getDerivedData ----------------------------------------------------
    def get_derived_data(self, dataset: str, variable: str,
                         operation: str, **params):
        op = getattr(self.analytics, operation, None)
        if op is None or operation.startswith("_"):
            raise MapsApiError(f"unknown derived operation {operation!r}")
        return op(dataset, variable, **params)

    # -- 3. getMap ------------------------------------------------------------
    def get_map(self, dataset: str, variable: str,
                when: Optional[datetime] = None,
                bbox: Optional[BBox] = None,
                width: int = 64, height: int = 32) -> Dict[str, object]:
        """A resampled 2-D plane suitable for a map layer."""
        subset = self._window(dataset, variable, bbox)
        ti = self._time_index(subset, when)
        plane = self._values(subset, variable)[ti]
        resampled = _nearest_resample(plane, height, width)
        return {
            "variable": variable,
            "time": decode_time(subset["time"])[ti],
            "bbox": (
                float(subset["lon"].data.min()),
                float(subset["lat"].data.min()),
                float(subset["lon"].data.max()),
                float(subset["lat"].data.max()),
            ),
            "width": width,
            "height": height,
            "values": resampled,
        }

    # -- 4. getAnimation --------------------------------------------------------
    def get_animation(self, dataset: str, variable: str,
                      bbox: Optional[BBox] = None,
                      width: int = 32, height: int = 16
                      ) -> List[Dict[str, object]]:
        subset = self._window(dataset, variable, bbox)
        times = decode_time(subset["time"])
        values = self._values(subset, variable)
        return [
            {
                "time": times[ti],
                "values": _nearest_resample(values[ti], height, width),
            }
            for ti in range(len(times))
        ]

    # -- 5. getTransect --------------------------------------------------------
    def get_transect(self, dataset: str, variable: str,
                     start: LonLat, end: LonLat, samples: int = 20,
                     when: Optional[datetime] = None
                     ) -> List[Dict[str, float]]:
        if samples < 2:
            raise MapsApiError("transect needs at least 2 samples")
        subset = self._window(dataset, variable, None)
        ti = self._time_index(subset, when)
        values = self._values(subset, variable)[ti]
        lats = subset["lat"].data
        lons = subset["lon"].data
        out = []
        for i in range(samples):
            f = i / (samples - 1)
            lon = start[0] + f * (end[0] - start[0])
            lat = start[1] + f * (end[1] - start[1])
            yi = int(np.argmin(np.abs(lats - lat)))
            xi = int(np.argmin(np.abs(lons - lon)))
            out.append(
                {"lon": lon, "lat": lat, "value": float(values[yi, xi])}
            )
        return out

    # -- 6. getPoint -----------------------------------------------------------
    def get_point(self, dataset: str, variable: str, lon: float,
                  lat: float, when: Optional[datetime] = None) -> float:
        subset = self._window(dataset, variable, None)
        ti = self._time_index(subset, when)
        values = self._values(subset, variable)[ti]
        yi = int(np.argmin(np.abs(subset["lat"].data - lat)))
        xi = int(np.argmin(np.abs(subset["lon"].data - lon)))
        return float(values[yi, xi])

    # -- 7. getArea --------------------------------------------------------------
    def get_area(self, dataset: str, variable: str, bbox: BBox,
                 when: Optional[datetime] = None) -> Dict[str, float]:
        subset = self._window(dataset, variable, bbox)
        ti = self._time_index(subset, when)
        plane = self._values(subset, variable)[ti]
        finite = plane[~np.isnan(plane)]
        if finite.size == 0:
            raise MapsApiError("area contains no valid cells")
        return {
            "mean": float(finite.mean()),
            "min": float(finite.min()),
            "max": float(finite.max()),
            "count": int(finite.size),
        }

    # -- 8. getVerticalProfile -----------------------------------------------
    def get_vertical_profile(self, dataset: str, variable: str,
                             lon: float, lat: float,
                             when: Optional[datetime] = None
                             ) -> List[Dict[str, float]]:
        """Values over the ``level`` dimension at a point."""
        remote = self.sdl._remote(dataset)
        dims = [d for d, __ in remote.dims_of(variable)]
        if "level" not in dims:
            raise MapsApiError(
                f"{variable!r} has no vertical dimension; dims={dims}"
            )
        subset = remote.fetch(variable)
        ti = self._time_index(subset, when)
        values = apply_fill_and_scale(subset[variable])
        yi = int(np.argmin(np.abs(subset["lat"].data - lat)))
        xi = int(np.argmin(np.abs(subset["lon"].data - lon)))
        # dims are (time, level, lat, lon) after the time index is taken
        levels = subset["level"].data
        point = values[ti][:, yi, xi]
        return [
            {"level": float(levels[li]), "value": float(point[li])}
            for li in range(len(levels))
        ]

    # -- 9. getSpectralProfile ------------------------------------------------
    def get_spectral_profile(self, dataset: str, variable: str,
                             lon: float, lat: float,
                             when: Optional[datetime] = None
                             ) -> List[Dict[str, float]]:
        """Per-band values at a point (multi-spectral EO data)."""
        remote = self.sdl._remote(dataset)
        dims = [d for d, __ in remote.dims_of(variable)]
        if "band" not in dims:
            raise MapsApiError(
                f"{variable!r} has no band dimension; dims={dims}"
            )
        subset = remote.fetch(variable)
        ti = self._time_index(subset, when)
        values = apply_fill_and_scale(subset[variable])
        yi = int(np.argmin(np.abs(subset["lat"].data - lat)))
        xi = int(np.argmin(np.abs(subset["lon"].data - lon)))
        bands = subset["band"].data
        point = values[ti][:, yi, xi]
        return [
            {"band": float(bands[bi]), "value": float(point[bi])}
            for bi in range(len(bands))
        ]

    # -- 10. getMapSwipe -----------------------------------------------------------
    def get_map_swipe(self, dataset_left: str, variable_left: str,
                      dataset_right: str, variable_right: str,
                      when: Optional[datetime] = None,
                      bbox: Optional[BBox] = None,
                      width: int = 32, height: int = 16
                      ) -> Dict[str, Dict[str, object]]:
        """Two aligned map layers for a swipe comparison widget."""
        return {
            "left": self.get_map(dataset_left, variable_left, when, bbox,
                                 width, height),
            "right": self.get_map(dataset_right, variable_right, when, bbox,
                                  width, height),
        }

    # -- 11. getTimeseriesProfile ----------------------------------------------
    def get_timeseries_profile(self, dataset: str, variable: str,
                               lon: float, lat: float
                               ) -> List[Dict[str, object]]:
        subset = self._window(dataset, variable, None)
        times = decode_time(subset["time"])
        values = self._values(subset, variable)
        yi = int(np.argmin(np.abs(subset["lat"].data - lat)))
        xi = int(np.argmin(np.abs(subset["lon"].data - lon)))
        return [
            {"time": times[ti], "value": float(values[ti, yi, xi])}
            for ti in range(len(times))
        ]


def _nearest_resample(plane: np.ndarray, height: int,
                      width: int) -> List[List[float]]:
    src_h, src_w = plane.shape
    rows = []
    for r in range(height):
        yi = min(src_h - 1, int(r * src_h / height))
        row = []
        for c in range(width):
            xi = min(src_w - 1, int(c * src_w / width))
            row.append(float(plane[yi, xi]))
        rows.append(row)
    return rows
