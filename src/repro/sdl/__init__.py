"""RAMANI SDL: streaming data library, cloud analytics, Maps-API, auth."""

from .analytics import RamaniCloudAnalytics
from .auth import AccessDenied, TokenAuthority
from .library import (
    REQUIRED_GLOBAL_ATTRIBUTES,
    SdlError,
    StreamingDataLibrary,
)
from .mapsapi import MapsApi, MapsApiError

__all__ = [
    "AccessDenied",
    "MapsApi",
    "MapsApiError",
    "RamaniCloudAnalytics",
    "REQUIRED_GLOBAL_ATTRIBUTES",
    "SdlError",
    "StreamingDataLibrary",
    "TokenAuthority",
]
