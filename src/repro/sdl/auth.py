"""RAMANI platform token authentication and usage tracking.

Section 5: "to ensure security we used tokens that allow accessing the
datasets through the RAMANI API. Every user has to register an account
on the RAMANI platform. Without proper registration users will not have
any access to the datasets, to ensure map uptake monitoring capabilities
and to avoid abuse. Furthermore, this will allow the tracking of which
users access which datasets."
"""

from __future__ import annotations

import hashlib
import itertools
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple


class AccessDenied(PermissionError):
    """Raised for missing, revoked or unknown tokens."""


_token_counter = itertools.count(1)


class TokenAuthority:
    """Issues and validates access tokens; records per-user usage."""

    def __init__(self):
        self._tokens: Dict[str, str] = {}  # token -> email
        self._revoked: set = set()
        self._usage: Dict[Tuple[str, str], int] = defaultdict(int)

    def register(self, email: str) -> str:
        """Register a user account; returns their access token."""
        raw = f"{email}:{next(_token_counter)}"
        token = "ram_" + hashlib.sha256(raw.encode()).hexdigest()[:24]
        self._tokens[token] = email
        return token

    def revoke(self, token: str) -> None:
        self._revoked.add(token)

    def authenticate(self, token: Optional[str]) -> str:
        """Token → user email; raises :class:`AccessDenied` otherwise."""
        if token is None:
            raise AccessDenied("dataset access requires a RAMANI token")
        if token in self._revoked:
            raise AccessDenied("token has been revoked")
        email = self._tokens.get(token)
        if email is None:
            raise AccessDenied("unknown token")
        return email

    def record_access(self, token: str, dataset: str) -> None:
        email = self.authenticate(token)
        self._usage[(email, dataset)] += 1

    # -- uptake monitoring --------------------------------------------------
    def usage_by_user(self, email: str) -> Dict[str, int]:
        return {
            dataset: count
            for (user, dataset), count in self._usage.items()
            if user == email
        }

    def usage_by_dataset(self, dataset: str) -> Dict[str, int]:
        return {
            user: count
            for (user, ds), count in self._usage.items()
            if ds == dataset
        }

    def top_datasets(self, n: int = 5) -> List[Tuple[str, int]]:
        totals: Counter = Counter()
        for (__, dataset), count in self._usage.items():
            totals[dataset] += count
        return totals.most_common(n)
