"""The RAMANI Streaming Data Library (SDL).

"The streaming data library implemented by RAMANI communicates with the
OPeNDAP server and receives Copernicus services data as streams" (§3).
Datasets are registered by DAP URL; the SDL exposes their "temporal and
spatial characteristics ... in a queryable manner" (§3.1), streams data
in chunks rather than whole files, enforces RAMANI token auth, and
reports metadata completeness at dataset or library level.
"""

from __future__ import annotations

from contextlib import nullcontext
from datetime import datetime
from typing import Dict, Iterator, List, Optional, Tuple

from ..governance import (
    AdmissionController,
    BudgetExceeded,
    GovernanceStats,
    QueryBudget,
)
from ..opendap import (
    DapCache,
    DapDataset,
    RemoteDataset,
    ServerRegistry,
    decode_time,
    open_url,
)
from ..parallel import WorkerPool
from ..resilience import EndpointPool, ResilienceStats, RetryPolicy
from .auth import AccessDenied, TokenAuthority

#: ACDD attributes the SDL considers required for discoverability.
REQUIRED_GLOBAL_ATTRIBUTES = (
    "title",
    "summary",
    "keywords",
    "institution",
    "license",
    "time_coverage_start",
    "geospatial_lat_min",
    "geospatial_lon_min",
)


class SdlError(KeyError):
    """Raised for lookups of unregistered datasets."""


class MirroredDataset:
    """A dataset served by several DAP mirrors behind one name.

    Metadata (structure, attributes, dims) comes from the primary
    mirror — mirrors carry the same dataset, so any member is
    authoritative. Data fetches go through an
    :class:`~repro.resilience.EndpointPool`: a failing mirror is failed
    over and eventually ejected, a slow one is hedged, and the stale
    cache still backstops the case where *every* mirror is down
    (the pool raises, the caller's stale path is unchanged).
    """

    def __init__(self, name: str, remotes: List[RemoteDataset],
                 pool: EndpointPool):
        self.name = name
        self._remotes = remotes
        self.endpoint_pool = pool
        self._primary = remotes[0]

    # metadata — delegate to the primary mirror
    @property
    def variable_names(self) -> List[str]:
        return self._primary.variable_names

    @property
    def url(self) -> str:
        return self._primary.url

    def dims_of(self, variable: str):
        return self._primary.dims_of(variable)

    def global_attributes(self) -> Dict[str, object]:
        return self._primary.global_attributes()

    # data — pool-routed
    def fetch(self, constraint: str = "", budget=None,
              tracer=None) -> DapDataset:
        return self.endpoint_pool.call(
            lambda remote, child: remote.fetch(constraint, budget=budget,
                                               tracer=tracer),
            budget=budget, tracer=tracer)

    def times(self, time_var: str = "time"):
        subset = self.fetch(time_var)
        return decode_time(subset[time_var])

    def __repr__(self) -> str:
        return (f"<MirroredDataset {self.name} "
                f"mirrors={len(self._remotes)}>")


class StreamingDataLibrary:
    """Registers DAP datasets and streams them to applications."""

    def __init__(self, registry: ServerRegistry,
                 auth: Optional[TokenAuthority] = None,
                 cache_ttl_s: float = 600.0,
                 cache_max_entries: Optional[int] = None,
                 serve_stale: bool = False,
                 retry_policy: Optional[RetryPolicy] = None,
                 admission: Optional[AdmissionController] = None,
                 tracer=None,
                 pool: Optional[WorkerPool] = None,
                 prefetch: Optional[int] = None):
        self.registry = registry
        self.auth = auth
        #: Chunk prefetch pipeline: with a parallel pool, `stream`
        #: keeps up to `prefetch` (default: the pool's worker count)
        #: chunk fetches in flight ahead of the consumer, yielding
        #: strictly in time-step order. Without one, streaming is the
        #: classic fetch-on-demand loop.
        self.pool = pool
        self.prefetch = prefetch
        self._remotes: Dict[str, RemoteDataset] = {}
        self._urls: Dict[str, str] = {}
        self.cache = DapCache(ttl_s=cache_ttl_s,
                              max_entries=cache_max_entries,
                              serve_stale=serve_stale)
        self.retry_policy = retry_policy
        self.tracer = tracer
        #: One counter tree shared by every registered remote; each
        #: remote writes to its own ``dataset=<name>`` labeled block, so
        #: per-dataset breakdowns and the library total both fall out.
        self.stats = ResilienceStats()
        #: Overload shedding: when set, streaming entry points take a
        #: slot (or raise Overloaded) before touching remote servers.
        self.admission = admission
        self.governance = (admission.stats if admission is not None
                           else GovernanceStats())

    def _admit(self, budget: Optional[QueryBudget]):
        """An admission slot context, or a no-op when ungoverned."""
        if self.admission is None:
            return nullcontext()
        return self.admission.admit(budget=budget)

    # -- catalog -----------------------------------------------------------
    def register_dataset(self, name: str, url: str,
                         mirrors: Optional[List[str]] = None,
                         **pool_kwargs) -> None:
        """Register a DAP dataset, optionally served by *mirrors*.

        With mirror URLs, data fetches go through an
        :class:`~repro.resilience.EndpointPool` over ``[url] +
        mirrors`` (failover, outlier ejection, hedged requests);
        ``pool_kwargs`` tune the pool. Without mirrors this is the
        classic single-remote registration.
        """
        stats = self.stats.labeled(dataset=name)
        if not mirrors:
            self._remotes[name] = open_url(
                url, self.registry, cache=self.cache,
                retry_policy=self.retry_policy, stats=stats,
                tracer=self.tracer)
            self._urls[name] = url
            return
        urls = [url] + list(mirrors)
        remotes = [
            open_url(u, self.registry, cache=self.cache,
                     retry_policy=self.retry_policy, stats=stats,
                     tracer=self.tracer)
            for u in urls
        ]
        if self.retry_policy is not None:
            pool_kwargs.setdefault("clock", self.retry_policy.clock)
        pool_kwargs.setdefault("stats", stats)
        pool = EndpointPool(name, list(zip(urls, remotes)),
                            **pool_kwargs)
        self._remotes[name] = MirroredDataset(name, remotes, pool)
        self._urls[name] = url

    def names(self) -> List[str]:
        return sorted(self._remotes)

    def _remote(self, name: str) -> RemoteDataset:
        try:
            return self._remotes[name]
        except KeyError:
            raise SdlError(f"no dataset {name!r} registered") from None

    def _authorize(self, name: str, token: Optional[str]) -> None:
        if self.auth is not None:
            self.auth.authenticate(token)
            self.auth.record_access(token, name)

    # -- queryable characteristics (Section 3.1) -----------------------------
    def characteristics(self, name: str,
                        token: Optional[str] = None,
                        budget: Optional[QueryBudget] = None
                        ) -> Dict[str, object]:
        """Temporal and spatial characteristics of a dataset."""
        self._authorize(name, token)
        return self._characteristics(name, budget)

    def _characteristics(self, name: str,
                         budget: Optional[QueryBudget]) -> Dict[str, object]:
        remote = self._remote(name)
        coords = remote.fetch("time,lat,lon", budget=budget)
        times = decode_time(coords["time"])
        lats = coords["lat"].data
        lons = coords["lon"].data
        data_vars = [
            v for v in remote.variable_names
            if v not in ("time", "lat", "lon")
        ]
        return {
            "url": self._urls[name],
            "variables": data_vars,
            "time_start": times[0],
            "time_end": times[-1],
            "time_steps": len(times),
            "bbox": (
                float(lons.min()), float(lats.min()),
                float(lons.max()), float(lats.max()),
            ),
            "grid_shape": (len(lats), len(lons)),
        }

    # -- streaming ---------------------------------------------------------------
    def stream(self, name: str, variable: Optional[str] = None,
               bbox: Optional[Tuple[float, float, float, float]] = None,
               token: Optional[str] = None,
               budget: Optional[QueryBudget] = None
               ) -> Iterator[DapDataset]:
        """Stream a dataset one time step at a time (optionally windowed).

        Each yielded chunk is fetched with its own constrained DAP call,
        so consumers see data flow without a full download — the SDL's
        defining behaviour. With a *budget*, every chunk charges one row
        and each underlying fetch charges (and deadline-caps) a remote
        call; when an admission controller is configured, the stream
        holds an execution slot for its whole lifetime, so slow
        consumers count against the concurrency bound.
        """
        self._authorize(name, token)
        with self._admit(budget):
            remote = self._remote(name)
            if variable is None:
                variable = self._characteristics(name, budget)["variables"][0]
            dims = dict(remote.dims_of(variable))
            n_time = dims.get("time", 1)
            try:
                lat_window, lon_window = self._bbox_windows(remote, bbox,
                                                            budget)
                constraints = [
                    f"{variable}[{ti}:{ti}]"
                    f"[{lat_window[0]}:{lat_window[1]}]"
                    f"[{lon_window[0]}:{lon_window[1]}]"
                    for ti in range(n_time)
                ]
                if self.pool is not None and self.pool.parallel:
                    # Prefetch pipeline: chunk fetches run ahead of the
                    # consumer (bounded lookahead), yielded strictly in
                    # time-step order — same chunks, same order, same
                    # error positions as the on-demand loop below.
                    def fetch_one(constraint, tracer=None):
                        return remote.fetch(constraint, budget=budget,
                                            tracer=tracer)

                    for chunk in self.pool.ordered_stream(
                            fetch_one, constraints, depth=self.prefetch,
                            budget=budget, tracer=self.tracer,
                            task_label="sdl.chunk", pass_tracer=True):
                        if budget is not None:
                            budget.charge_rows()
                        yield chunk
                else:
                    for ti, constraint in enumerate(constraints):
                        if budget is not None:
                            budget.charge_rows()
                        # The span covers only the fetch: consumer time
                        # between chunks is the caller's, not the SDL's.
                        if self.tracer is not None:
                            with self.tracer.span("sdl.chunk", dataset=name,
                                                  time_index=ti):
                                chunk = remote.fetch(constraint,
                                                     budget=budget)
                        else:
                            chunk = remote.fetch(constraint, budget=budget)
                        yield chunk
            except BudgetExceeded as exc:
                self.governance.record_outcome(exc, budget)
                raise
        self.governance.record_outcome(None, budget)

    def explain_stream(self, name: str, variable: Optional[str] = None,
                       bbox: Optional[Tuple[float, float, float,
                                            float]] = None,
                       token: Optional[str] = None):
        """Plan a stream without moving data (EXPLAIN for the DAP path).

        Returns a :class:`~repro.sparql.plan.PlanNode` tree showing what
        :meth:`stream` would do: the coordinate fetch that resolves
        *bbox* into index windows, and the per-time-step constrained DAP
        fetches. Only coordinate metadata is read; no data chunks are
        transferred, so ``rows`` renders as ``-`` throughout.
        """
        from ..sparql.plan import PlanNode

        self._authorize(name, token)
        remote = self._remote(name)
        if variable is None:
            variable = next(
                v for v in remote.variable_names
                if v not in ("time", "lat", "lon")
            )
        dims = dict(remote.dims_of(variable))
        n_time = dims.get("time", 1)
        lat_window, lon_window = self._bbox_windows(remote, bbox)
        cells = ((lat_window[1] - lat_window[0] + 1)
                 * (lon_window[1] - lon_window[0] + 1))
        constraint = (
            f"{variable}[t:t]"
            f"[{lat_window[0]}:{lat_window[1]}]"
            f"[{lon_window[0]}:{lon_window[1]}]"
        )
        return PlanNode(
            "DapStream", f"{self._urls[name]} {variable}", est_rows=n_time,
            children=[
                PlanNode("CoordinateFetch", "lat,lon", est_rows=1),
                PlanNode(
                    "BboxWindow",
                    f"lat=[{lat_window[0]}:{lat_window[1]}]"
                    f" lon=[{lon_window[0]}:{lon_window[1]}]",
                    est_rows=cells,
                ),
                PlanNode("ChunkFetch",
                         f"{constraint} per time step 0..{n_time - 1}",
                         est_rows=n_time),
            ],
        )

    def fetch_window(self, name: str, variable: str,
                     bbox: Optional[Tuple[float, float, float, float]] = None,
                     token: Optional[str] = None,
                     budget: Optional[QueryBudget] = None) -> DapDataset:
        """One-shot constrained fetch (index-aligned, cache-friendly)."""
        self._authorize(name, token)
        with self._admit(budget):
            try:
                remote = self._remote(name)
                dims = dict(remote.dims_of(variable))
                n_time = dims.get("time", 1)
                lat_window, lon_window = self._bbox_windows(remote, bbox,
                                                            budget)
                constraint = (
                    f"{variable}[0:{n_time - 1}]"
                    f"[{lat_window[0]}:{lat_window[1]}]"
                    f"[{lon_window[0]}:{lon_window[1]}]"
                )
                result = remote.fetch(constraint, budget=budget)
            except BudgetExceeded as exc:
                self.governance.record_outcome(exc, budget)
                raise
        self.governance.record_outcome(None, budget)
        return result

    def _bbox_windows(self, remote: RemoteDataset, bbox,
                      budget: Optional[QueryBudget] = None):
        coords = remote.fetch("lat,lon", budget=budget)
        lats, lons = coords["lat"].data, coords["lon"].data
        if bbox is None:
            return (0, len(lats) - 1), (0, len(lons) - 1)
        from ..opendap.subset import index_window_for_bbox

        windows = index_window_for_bbox(coords, bbox)
        return windows["lat"], windows["lon"]

    # -- governance --------------------------------------------------------
    def governance_report(self) -> Dict[str, object]:
        """Admission/budget outcome counters, shaped like
        :meth:`resilience_report` (the GovernanceStats dict, plus the
        live slot-pool occupancy when admission control is on)."""
        report = self.governance.as_dict()
        if self.admission is not None:
            report.update(
                admission_active=self.admission.active,
                admission_queued=self.admission.queued,
                admission_max_concurrent=self.admission.max_concurrent,
            )
        return report

    # -- observability -----------------------------------------------------
    def bind_metrics(self, registry, component: str = "sdl") -> None:
        """Expose this library's counters through a
        :class:`~repro.observability.MetricsRegistry` — resilience and
        governance counter trees (with per-dataset labels) plus the DAP
        cache gauges, scraped live at collect time."""
        from ..observability import (
            register_dap_cache,
            register_endpoint_pool,
            register_governance,
            register_resilience,
        )

        register_resilience(registry, self.stats, component=component)
        register_governance(registry, self.governance, component=component)
        register_dap_cache(registry, self.cache, component=component)
        for remote in self._remotes.values():
            pool = getattr(remote, "endpoint_pool", None)
            if pool is not None:
                register_endpoint_pool(registry, pool,
                                       component=component)

    # -- resilience --------------------------------------------------------
    def resilience_report(self) -> Dict[str, int]:
        """Retry/degradation counters plus cache health, one dict."""
        report = dict(self.stats.as_dict())
        report.update(
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            cache_stale_hits=self.cache.stale_hits,
            cache_evictions=self.cache.evictions,
            cache_entries=len(self.cache),
        )
        return report

    # -- metadata completeness (Section 3.1) ------------------------------------
    def metadata_completeness(self, name: str,
                              required=REQUIRED_GLOBAL_ATTRIBUTES
                              ) -> Dict[str, object]:
        """Check one dataset's global attributes against *required*."""
        remote = self._remote(name)
        present = remote.global_attributes()
        missing = [a for a in required if a not in present]
        return {
            "dataset": name,
            "missing": missing,
            "score": 1.0 - len(missing) / len(required),
        }

    def library_completeness(self,
                             required=REQUIRED_GLOBAL_ATTRIBUTES
                             ) -> Dict[str, object]:
        """Global completeness over every registered dataset."""
        reports = [
            self.metadata_completeness(name, required)
            for name in self.names()
        ]
        score = (
            sum(r["score"] for r in reports) / len(reports)
            if reports else 1.0
        )
        return {"datasets": reports, "score": score}
