"""RAMANI Cloud Analytics: on-the-fly aggregations over SDL streams.

Section 3.1: "We added a software layer to the SDL, entitled RAMANI
Cloud Analytics, allowing on-the-fly spatial and temporal aggregations
such that downstream services may request for derived variables to be
returned, such as a long-term (moving) average (summer-time) or spatial
central tendency (city-average)". Analyses can be *re-run* when data is
extended or replaced by a different source "providing similar variables
based on semantically provided heuristics (e.g. based on 'hasName' or
'hasUnit')".
"""

from __future__ import annotations

from datetime import datetime
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..opendap import DapDataset, Variable, decode_time
from ..opendap.model import apply_fill_and_scale
from .library import SdlError, StreamingDataLibrary

BBox = Tuple[float, float, float, float]


class RamaniCloudAnalytics:
    """Derived-variable computation over SDL-registered datasets."""

    def __init__(self, sdl: StreamingDataLibrary,
                 token: Optional[str] = None):
        self.sdl = sdl
        self.token = token
        self._analyses: Dict[str, Dict] = {}

    # -- semantic source selection ---------------------------------------------
    def find_variable(self, has_name: Optional[str] = None,
                      has_unit: Optional[str] = None
                      ) -> Tuple[str, str]:
        """Locate (dataset, variable) by name/unit heuristics.

        Matching is substring-based on the variable's ``long_name`` and
        exact on ``units`` — the "hasName"/"hasUnit" heuristics that let
        an analysis survive a source swap.
        """
        for dataset_name in self.sdl.names():
            remote = self.sdl._remote(dataset_name)
            for var_name, attrs in remote.attributes.items():
                if var_name == "NC_GLOBAL":
                    continue
                long_name = str(attrs.get("long_name", var_name)).lower()
                units = str(attrs.get("units", ""))
                if has_name is not None and \
                        has_name.lower() not in long_name \
                        and has_name.lower() != var_name.lower():
                    continue
                if has_unit is not None and units != has_unit:
                    continue
                if has_name is None and has_unit is None:
                    continue
                return dataset_name, var_name
        raise SdlError(
            f"no variable matching hasName={has_name!r} hasUnit={has_unit!r}"
        )

    # -- core aggregations -----------------------------------------------------
    def _grid(self, dataset: str, variable: str,
              bbox: Optional[BBox] = None) -> DapDataset:
        return self.sdl.fetch_window(dataset, variable, bbox=bbox,
                                     token=self.token)

    def moving_average(self, dataset: str, variable: str,
                       window: int, bbox: Optional[BBox] = None
                       ) -> DapDataset:
        """Long-term (moving) average along time; same grid, same dims."""
        if window < 1:
            raise ValueError("window must be >= 1")
        subset = self._grid(dataset, variable, bbox)
        values = apply_fill_and_scale(subset[variable])
        smoothed = np.full_like(values, np.nan)
        for ti in range(values.shape[0]):
            lo = max(0, ti - window + 1)
            chunk = values[lo: ti + 1]
            with np.errstate(invalid="ignore"):
                smoothed[ti] = np.nanmean(chunk, axis=0)
        out = subset.copy(name=f"{variable}_moving_avg")
        out.variables[variable] = Variable(
            variable, subset[variable].dims, smoothed,
            {**subset[variable].attributes,
             "cell_methods": f"time: mean (window {window})"},
        )
        return out

    def seasonal_average(self, dataset: str, variable: str,
                         months: Tuple[int, ...] = (6, 7, 8),
                         bbox: Optional[BBox] = None) -> DapDataset:
        """Average over time steps falling in *months* (summer default)."""
        subset = self._grid(dataset, variable, bbox)
        times = decode_time(subset["time"])
        mask = [t.month in months for t in times]
        if not any(mask):
            raise SdlError(
                f"no time steps in months {months} for {dataset}"
            )
        values = apply_fill_and_scale(subset[variable])[mask]
        with np.errstate(invalid="ignore"):
            mean_plane = np.nanmean(values, axis=0)
        out = DapDataset(
            f"{variable}_seasonal_avg", dict(subset.attributes)
        )
        out.variables["lat"] = subset["lat"].copy()
        out.variables["lon"] = subset["lon"].copy()
        out.add_variable(
            variable, ["lat", "lon"], mean_plane,
            {**subset[variable].attributes,
             "cell_methods": f"time: mean over months {list(months)}"},
        )
        return out

    def spatial_mean(self, dataset: str, variable: str,
                     bbox: Optional[BBox] = None
                     ) -> List[Tuple[datetime, float]]:
        """Spatial central tendency ("city-average") per time step."""
        subset = self._grid(dataset, variable, bbox)
        times = decode_time(subset["time"])
        values = apply_fill_and_scale(subset[variable])
        out = []
        for ti, moment in enumerate(times):
            plane = values[ti]
            with np.errstate(invalid="ignore"):
                mean = float(np.nanmean(plane)) if not np.all(
                    np.isnan(plane)) else float("nan")
            out.append((moment, mean))
        return out

    # -- re-runnable analyses (Section 3.1) -------------------------------------
    def register_analysis(self, name: str, operation: str,
                          has_name: Optional[str] = None,
                          has_unit: Optional[str] = None,
                          **params) -> None:
        """Declare an analysis bound to a *semantic* variable selector."""
        if operation not in ("moving_average", "seasonal_average",
                             "spatial_mean"):
            raise ValueError(f"unknown operation {operation!r}")
        self._analyses[name] = {
            "operation": operation,
            "has_name": has_name,
            "has_unit": has_unit,
            "params": params,
        }

    def run_analysis(self, name: str):
        """(Re-)run an analysis; source resolution happens at run time,
        so extended or replaced datasets are picked up automatically."""
        try:
            spec = self._analyses[name]
        except KeyError:
            raise SdlError(f"no analysis {name!r} registered") from None
        dataset, variable = self.find_variable(
            has_name=spec["has_name"], has_unit=spec["has_unit"]
        )
        operation = getattr(self, spec["operation"])
        return operation(dataset, variable, **spec["params"])
