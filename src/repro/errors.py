"""Common typed errors shared across the stack's parsers.

Every textual front end (WKT, Turtle/N-Triples, SPARQL) raises a
subclass of :class:`ParseError` on malformed input, so callers can
guard any "parse untrusted text" path with one except clause instead of
chasing the bare ``ValueError``/``IndexError`` each parser used to
leak. Instances carry the offset at which parsing failed when the
parser knows it.
"""

from __future__ import annotations

from typing import Optional


class ParseError(ValueError):
    """Malformed textual input (WKT, Turtle, N-Triples, SPARQL, ...).

    ``position`` is the 0-based character offset where parsing failed,
    or ``None`` when the parser could not localize the error.
    """

    def __init__(self, message: str, position: Optional[int] = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position
