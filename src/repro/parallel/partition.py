"""Deterministic partitioning helpers shared by the parallel layers.

Partition boundaries are a pure function of the input length and the
requested partition count — never of the worker count, the clock, or
any ambient state — so the same workload always produces the same
task list. Callers that need byte-identical *artifacts* (e.g. the
GeoTriples part-files) fix the partition count explicitly and sweep
only the worker count.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Sequence, TypeVar

T = TypeVar("T")


def chunk_list(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split *items* into at most *n_chunks* contiguous runs, in order.

    Chunk sizes are as even as a single ceiling-division allows; the
    concatenation of the chunks is always exactly ``list(items)``.
    """
    items = list(items)
    if n_chunks <= 1 or len(items) <= 1:
        return [items] if items else []
    size = max(1, (len(items) + n_chunks - 1) // n_chunks)
    return [items[i: i + size] for i in range(0, len(items), size)]


def merge_sorted_runs(runs: Iterable[Sequence[T]]) -> Iterator[T]:
    """Merge individually-sorted runs into one globally-sorted stream.

    The canonical recombination step for partitioned scans: each task
    returns its matches as a sorted run, and the merged order depends
    only on the run *contents* — not on the partition count, the worker
    count, or task completion order. The sharded RDF data plane
    (``repro.rdf.shards``) funnels every unbound-subject scan through
    this merge so query results stay byte-identical at any
    shard x worker combination.
    """
    return heapq.merge(*runs)


def chunk_count(n_items: int, n_chunks: int) -> int:
    """How many chunks :func:`chunk_list` would actually produce."""
    if n_items == 0:
        return 0
    if n_chunks <= 1 or n_items <= 1:
        return 1
    size = max(1, (n_items + n_chunks - 1) // n_chunks)
    return (n_items + size - 1) // size
