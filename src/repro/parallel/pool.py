"""The worker pool: injectable executors, ordered deterministic merge.

Four disciplines make parallel runs reproduce serial runs exactly:

- **injectable executor** — :class:`WorkerPool` never creates threads
  on its own authority; it runs tasks through an executor object. The
  :class:`SerialExecutor` (the test fake) runs each task inline at
  submit time; the :class:`ThreadExecutor` overlaps them on a
  ``concurrent.futures`` pool. Both present the same tiny contract
  (``submit() -> handle`` with ``result()``), so every caller is
  exercised by the deterministic fake.
- **ordered merge** — results come back in *submission* order, never
  completion order. Anything downstream (triple streams, federation
  bindings, meta-blocking counts) is therefore byte-identical whatever
  the worker count.
- **all-tasks-run error semantics** — a failing task does not
  short-circuit its siblings (they may already be running); every task
  runs to an outcome and :meth:`WorkerPool.map` raises the error of the
  *lowest-index* failed task. Serial and parallel executions therefore
  raise the same exception for the same workload, even under injected
  faults.
- **one span per task** — each task gets a private sub-:class:`Tracer`
  (sharing the parent's clock) so worker threads never touch the shared
  active-span stack; finished task spans are adopted under the pool
  span in task order. ``profile()`` then shows the parallel speedup:
  the pool span's duration is the wall time, the task spans sum to the
  serial work.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, Iterator, List, Optional

from ..observability.trace import Span, Tracer

__all__ = ["TaskOutcome", "SerialExecutor", "ThreadExecutor",
           "WorkerDeath", "WorkerPool"]


class WorkerDeath(RuntimeError):
    """A pool worker died while holding a task.

    The task's work is lost even if it had finished computing — the
    worker never reported back. Chaos injection raises this to model
    process crashes; the service tier maps it to the ``worker_died``
    wire code so the client sees a typed, retryable failure rather
    than an internal error.
    """


@dataclass
class TaskOutcome:
    """What one task produced: a value or an error, plus its span."""

    index: int
    value: object = None
    error: Optional[BaseException] = None
    span: Optional[Span] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class _Resolved:
    """An already-completed handle (what the serial executor returns)."""

    __slots__ = ("_value",)

    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value


class SerialExecutor:
    """The deterministic fake: runs each task inline at submit time.

    Submission order *is* execution order, so a workload run through
    this executor behaves exactly like a plain loop — which is what the
    equivalence suite compares thread runs against.
    """

    workers = 1

    def submit(self, fn: Callable[[], object]) -> _Resolved:
        return _Resolved(fn())

    def shutdown(self) -> None:
        pass


class ThreadExecutor:
    """Real overlap on a ``concurrent.futures`` thread pool.

    Threads (not processes) because the workloads this repo
    parallelizes are dominated by simulated network/IO waits —
    federation endpoint latency, DAP round trips, block-store reads —
    which threads overlap fully. Task callables must therefore be
    thread-safe; the :class:`WorkerPool` wrappers keep all shared
    mutation (tracer, ordered merge) in the submitting thread.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
            return self._pool

    def submit(self, fn: Callable[[], object]):
        return self._ensure().submit(fn)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class WorkerPool:
    """Deterministic fan-out over an injectable executor.

    ``workers=1`` (the default everywhere) uses the serial executor, so
    nothing changes for existing callers; passing ``workers=n`` or an
    explicit ``executor`` turns on overlap without changing any output.
    """

    def __init__(self, workers: int = 1, executor=None, tracer=None,
                 name: str = "pool"):
        if executor is None:
            executor = (SerialExecutor() if workers <= 1
                        else ThreadExecutor(workers))
        self.executor = executor
        self.workers = getattr(executor, "workers", max(1, workers))
        self.tracer = tracer
        self.name = name

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def parallel(self) -> bool:
        """Whether this pool can actually overlap tasks."""
        return self.workers > 1

    # -- task wrapping -----------------------------------------------------
    def _wrap(self, fn: Callable, item, index: int, budget,
              clock, task_label: str,
              pass_tracer: bool) -> Callable[[], TaskOutcome]:
        """One task: budget gate, private tracer, outcome capture.

        The wrapper never raises — faults become the outcome's
        ``error`` so sibling tasks always run and the caller applies
        the lowest-index rule.
        """

        def task() -> TaskOutcome:
            sub = Tracer(clock=clock) if clock is not None else None
            span = None
            try:
                if sub is not None:
                    span = sub.start_span(task_label, parent=None,
                                          index=index)
                    span.enter()
                if budget is not None:
                    # Pre-dispatch cancellation point: a cancelled or
                    # deadline-expired budget sheds the task before it
                    # does any work.
                    budget.check_deadline()
                if pass_tracer:
                    value = fn(item, tracer=sub)
                else:
                    value = fn(item)
                return TaskOutcome(index, value=value, span=span)
            except Exception as exc:
                if span is not None:
                    span.attributes["error"] = type(exc).__name__
                return TaskOutcome(index, error=exc, span=span)
            finally:
                if span is not None:
                    span.exit()

        return task

    # -- bulk execution ----------------------------------------------------
    def run_tasks(self, fn: Callable, items: Iterable, *,
                  budget=None, tracer=None, label: Optional[str] = None,
                  task_label: str = "parallel.task",
                  pass_tracer: bool = False) -> List[TaskOutcome]:
        """Run ``fn(item)`` for every item; outcomes in item order.

        Tracing (when a tracer is configured): the whole batch is one
        ``<label>`` span whose duration is the parallel wall time; each
        task's private span (plus anything the task recorded through
        its sub-tracer when ``pass_tracer=True``) is adopted under it
        in task order.
        """
        items = list(items)
        tracer = self.tracer if tracer is None else tracer
        label = label or f"{self.name}.map"
        if tracer is None:
            wrappers = [
                self._wrap(fn, item, i, budget, None, task_label,
                           pass_tracer)
                for i, item in enumerate(items)
            ]
            handles = [self.executor.submit(w) for w in wrappers]
            return [h.result() for h in handles]
        with tracer.span(label, tasks=len(items),
                         workers=self.workers) as pool_span:
            wrappers = [
                self._wrap(fn, item, i, budget, tracer.clock, task_label,
                           pass_tracer)
                for i, item in enumerate(items)
            ]
            handles = [self.executor.submit(w) for w in wrappers]
            outcomes = [h.result() for h in handles]
            for outcome in outcomes:
                if outcome.span is not None:
                    tracer.adopt(outcome.span, parent=pool_span)
        return outcomes

    def map(self, fn: Callable, items: Iterable, *,
            budget=None, tracer=None, label: Optional[str] = None,
            task_label: str = "parallel.task",
            pass_tracer: bool = False) -> List:
        """Ordered results; raises the lowest-index task's error."""
        outcomes = self.run_tasks(fn, items, budget=budget, tracer=tracer,
                                  label=label, task_label=task_label,
                                  pass_tracer=pass_tracer)
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        return [outcome.value for outcome in outcomes]

    # -- streaming execution ------------------------------------------------
    def ordered_stream(self, fn: Callable, items: Iterable, *,
                       depth: Optional[int] = None, budget=None,
                       tracer=None,
                       task_label: str = "parallel.task",
                       pass_tracer: bool = False) -> Iterator:
        """Lazily map *fn* over *items* with bounded lookahead.

        Yields results strictly in item order while keeping up to
        *depth* tasks (default: the worker count) in flight — the
        prefetch pipeline the streaming data library uses. With the
        serial executor a submitted task completes inline, so the
        stream degenerates to the plain sequential loop: same fetch
        order, same output, no overlap.

        A failed task raises at its position in the stream (after all
        earlier results were yielded), identically for every executor.
        """
        depth = self.workers if depth is None else max(1, depth)
        tracer = self.tracer if tracer is None else tracer
        clock = tracer.clock if tracer is not None else None
        window: Deque = deque()
        iterator = enumerate(items)

        def submit_next() -> bool:
            try:
                index, item = next(iterator)
            except StopIteration:
                return False
            wrapped = self._wrap(fn, item, index, budget, clock,
                                 task_label, pass_tracer)
            window.append(self.executor.submit(wrapped))
            return True

        for __ in range(depth):
            if not submit_next():
                break
        while window:
            outcome = window.popleft().result()
            # Keep the pipeline full while the consumer processes this
            # result (and even when it is about to raise: siblings
            # already ran under the all-tasks-run semantics anyway).
            submit_next()
            if outcome.span is not None and tracer is not None:
                tracer.adopt(outcome.span)
            if outcome.error is not None:
                raise outcome.error
            yield outcome.value
