"""Deterministic parallel task execution (the §5 parallelism layer).

Section 5 of the paper makes two parallelism claims — GeoTriples is
"very efficient especially when its mapping processor is implemented
using Apache Hadoop", and JedAI's multi-core meta-blocking "has been
shown to be scalable" — and PR 1 made every federation endpoint call
independently retryable. This package supplies the execution substrate
those layers share: a :class:`WorkerPool` whose executor is injectable
(a serial fake for tests, a thread pool for real runs) and whose result
merging is *ordered*, so the output of a parallel run is byte-identical
to the serial run regardless of worker count.

See DESIGN.md "Parallel execution" for the determinism rules.
"""

from .partition import chunk_count, chunk_list, merge_sorted_runs
from .pool import (
    SerialExecutor,
    TaskOutcome,
    ThreadExecutor,
    WorkerDeath,
    WorkerPool,
)

__all__ = [
    "WorkerPool",
    "SerialExecutor",
    "ThreadExecutor",
    "TaskOutcome",
    "WorkerDeath",
    "chunk_list",
    "chunk_count",
    "merge_sorted_runs",
]
