"""R2RML/RML mapping model for GeoTriples.

GeoTriples [Kyzirakos et al., JWS 2018] transforms geospatial data into
RDF graphs driven by R2RML/RML mappings. This module defines the
mapping model (term maps, triples maps, logical sources) and a parser
for the R2RML Turtle vocabulary; execution lives in
:mod:`repro.geotriples.processor`.

Logical sources cover the formats the paper needs: CSV, GeoJSON
(standing in for shapefiles — same feature/properties model), SQL
tables via MadIS, and NetCDF/OPeNDAP grids (the extension Section 5
lists as an open problem for GeoTriples: "It is important to extend
GeoTriples ... for scientific data formats such as NetCDF").
"""

from __future__ import annotations

import csv
import io
import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..geometry import Feature, FeatureCollection, wkt_dumps
from ..rdf.namespace import Namespace
from ..rdf.terms import BNode, IRI, Literal, Term

RR = Namespace("http://www.w3.org/ns/r2rml#")
RML = Namespace("http://semweb.mmlab.be/ns/rml#")


class MappingError(ValueError):
    """Raised for malformed mappings or template expansion failures."""


_TEMPLATE_RE = re.compile(r"\{([^{}]+)\}")


@dataclass(frozen=True)
class TermMap:
    """How one RDF term is produced from a source row.

    Exactly one of ``template``, ``column`` or ``constant`` is set.
    """

    template: Optional[str] = None
    column: Optional[str] = None
    constant: Optional[Term] = None
    term_type: str = "iri"  # iri | literal | bnode
    datatype: Optional[IRI] = None
    lang: Optional[str] = None

    def __post_init__(self):
        sources = [
            s for s in (self.template, self.column, self.constant)
            if s is not None
        ]
        if len(sources) != 1:
            raise MappingError(
                "term map needs exactly one of template/column/constant"
            )
        if self.term_type not in ("iri", "literal", "bnode"):
            raise MappingError(f"bad term type {self.term_type!r}")

    def expand(self, row: Dict[str, object]) -> Optional[Term]:
        """Produce the term for *row*; None when a referenced value is null."""
        if self.constant is not None:
            return self.constant
        if self.column is not None:
            value = row.get(self.column)
            if value is None:
                return None
            return self._make_term(value)
        # template
        def substitute(m: re.Match) -> str:
            key = m.group(1)
            if key not in row or row[key] is None:
                raise _NullInTemplate()
            return _iri_safe(str(row[key])) if self.term_type == "iri" \
                else str(row[key])

        try:
            text = _TEMPLATE_RE.sub(substitute, self.template)
        except _NullInTemplate:
            return None
        return self._make_term(text, from_template=True)

    def _make_term(self, value, from_template: bool = False) -> Term:
        if self.term_type == "iri":
            return IRI(str(value))
        if self.term_type == "bnode":
            return BNode(re.sub(r"[^\w.-]", "_", str(value)))
        if self.datatype is not None:
            return Literal(str(value), datatype=self.datatype)
        if self.lang is not None:
            return Literal(str(value), lang=self.lang)
        if isinstance(value, bool):
            return Literal(value)
        if isinstance(value, (int, float)) and not from_template:
            return Literal(value)
        return Literal(str(value))


class _NullInTemplate(Exception):
    pass


def _iri_safe(text: str) -> str:
    return re.sub(r"[^\w.~:/#\[\]@!$&'()*+,;=-]", "_", text.replace(" ", "_"))


@dataclass
class PredicateObjectMap:
    predicate: IRI
    object_map: TermMap


@dataclass
class LogicalSource:
    """Where rows come from.

    kinds: ``rows`` (in-memory dicts), ``csv`` (text), ``geojson``
    (FeatureCollection or GeoJSON dict), ``sql`` (MadIS connection +
    query), ``opendap`` (DAP url + registry).
    """

    kind: str
    source: object
    query: Optional[str] = None
    options: Dict[str, object] = field(default_factory=dict)

    def rows(self) -> Iterator[Dict[str, object]]:
        if self.kind == "rows":
            yield from (dict(r) for r in self.source)
        elif self.kind == "csv":
            yield from _csv_rows(self.source)
        elif self.kind == "geojson":
            yield from _geojson_rows(self.source)
        elif self.kind == "sql":
            yield from _sql_rows(self.source, self.query)
        elif self.kind == "opendap":
            yield from _opendap_rows(self.source, self.options)
        else:
            raise MappingError(f"unknown logical source kind {self.kind!r}")


def _csv_rows(source) -> Iterator[Dict[str, object]]:
    if hasattr(source, "read"):
        text = source.read()
    elif isinstance(source, str) and "\n" not in source:
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = source
    reader = csv.DictReader(io.StringIO(text))
    for row in reader:
        yield {k: _coerce_csv(v) for k, v in row.items()}


def _coerce_csv(value: Optional[str]):
    if value is None or value == "":
        return None
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def _geojson_rows(source) -> Iterator[Dict[str, object]]:
    if isinstance(source, FeatureCollection):
        fc = source
    elif isinstance(source, dict):
        fc = FeatureCollection.from_geojson(source)
    elif isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            fc = FeatureCollection.from_geojson(json.load(fh))
    else:
        raise MappingError(f"cannot read GeoJSON from {type(source).__name__}")
    for i, feature in enumerate(fc):
        row: Dict[str, object] = dict(feature.properties)
        row.setdefault("gid", feature.id if feature.id is not None else i)
        row["wkt"] = wkt_dumps(feature.geometry)
        yield row


def _sql_rows(conn, query: Optional[str]) -> Iterator[Dict[str, object]]:
    if query is None:
        raise MappingError("sql logical source requires a query")
    for row in conn.execute(query):
        yield {key: row[key] for key in row.keys()}


def _opendap_rows(url, options) -> Iterator[Dict[str, object]]:
    from ..madis.opendap_vt import OpendapVTOperator
    from ..opendap import DEFAULT_REGISTRY

    registry = options.get("registry", DEFAULT_REGISTRY)
    operator = OpendapVTOperator(registry)
    columns, rows = operator(
        url,
        variable=options.get("variable"),
        constraint=options.get("constraint", ""),
    )
    for values in rows:
        yield dict(zip(columns, values))


@dataclass
class TriplesMap:
    """One R2RML triples map: source → subject + predicate/object maps."""

    name: str
    logical_source: LogicalSource
    subject_map: TermMap
    classes: List[IRI] = field(default_factory=list)
    predicate_object_maps: List[PredicateObjectMap] = field(
        default_factory=list
    )
    #: Optional GeoTriples geometry chain: when set, each row also emits
    #: ``subject geo:hasGeometry <geom>`` / ``<geom> a sf:T`` /
    #: ``<geom> geo:asWKT "..."^^geo:wktLiteral``.
    geometry_column: Optional[str] = None
    geometry_crs: Optional[str] = None
    #: Parse + canonicalize WKT per row (ring closure/orientation, bad
    #: geometries rejected) — what GeoTriples' geometry handling does;
    #: makes per-row cost realistic for the parallel-processing bench.
    normalize_geometries: bool = False

    def add_pom(self, predicate: IRI, object_map: TermMap) -> "TriplesMap":
        self.predicate_object_maps.append(
            PredicateObjectMap(predicate, object_map)
        )
        return self


# ---------------------------------------------------------------------------
# R2RML Turtle parsing
# ---------------------------------------------------------------------------

def parse_r2rml(turtle_text: str,
                sources: Optional[Dict[str, LogicalSource]] = None
                ) -> List[TriplesMap]:
    """Parse R2RML mappings from Turtle.

    ``sources`` maps rr:tableName / rml:source strings to concrete
    :class:`LogicalSource` objects (files are not resolved implicitly).
    """
    from ..rdf import Graph, RDF

    g = Graph()
    g.bind("rr", str(RR))
    g.bind("rml", str(RML))
    g.parse(turtle_text, format="turtle")
    sources = sources or {}

    maps: List[TriplesMap] = []
    map_nodes = set(g.subjects(RR.logicalTable)) | set(
        g.subjects(RML.logicalSource)
    ) | set(g.subjects(RR.subjectMap))
    for node in sorted(map_nodes, key=str):
        source = _resolve_source(g, node, sources)
        subject_node = g.value(node, RR.subjectMap)
        if subject_node is None:
            raise MappingError(f"triples map {node} has no subjectMap")
        subject_map = _parse_term_map(g, subject_node, default_type="iri")
        classes = [
            o for o in g.objects(subject_node, RR["class"])
            if isinstance(o, IRI)
        ]
        tmap = TriplesMap(
            name=str(node),
            logical_source=source,
            subject_map=subject_map,
            classes=sorted(classes),
        )
        for pom_node in g.objects(node, RR.predicateObjectMap):
            predicate = g.value(pom_node, RR.predicate)
            if predicate is None:
                pm = g.value(pom_node, RR.predicateMap)
                predicate = g.value(pm, RR.constant) if pm else None
            if predicate is None:
                raise MappingError(f"POM in {node} lacks a predicate")
            obj_node = g.value(pom_node, RR.objectMap)
            if obj_node is None:
                const = g.value(pom_node, RR.object)
                if const is None:
                    raise MappingError(f"POM in {node} lacks an object map")
                obj_map = TermMap(constant=const,
                                  term_type="iri" if isinstance(const, IRI)
                                  else "literal")
            else:
                obj_map = _parse_term_map(g, obj_node, default_type="literal")
            tmap.add_pom(IRI(str(predicate)), obj_map)
        maps.append(tmap)
    if not maps:
        raise MappingError("no triples maps found in R2RML document")
    return maps


def _resolve_source(g, node, sources) -> LogicalSource:
    from ..rdf import Literal as RdfLiteral

    table_node = g.value(node, RR.logicalTable)
    if table_node is not None:
        table = g.value(table_node, RR.tableName)
        if table is None:
            raise MappingError("logicalTable without rr:tableName")
        key = str(table)
        if key in sources:
            return sources[key]
        raise MappingError(f"no LogicalSource provided for table {key!r}")
    source_node = g.value(node, RML.logicalSource)
    if source_node is not None:
        src = g.value(source_node, RML.source)
        key = str(src) if src is not None else ""
        if key in sources:
            return sources[key]
        raise MappingError(f"no LogicalSource provided for source {key!r}")
    raise MappingError(f"triples map {node} has no logical source")


def _parse_term_map(g, node, default_type: str) -> TermMap:
    from ..rdf import Literal as RdfLiteral

    template = g.value(node, RR.template)
    column = g.value(node, RR.column) or g.value(node, RML.reference)
    constant = g.value(node, RR.constant)
    term_type_node = g.value(node, RR.termType)
    datatype = g.value(node, RR.datatype)
    lang = g.value(node, RR.language)

    term_type = default_type
    if term_type_node is not None:
        local = IRI(str(term_type_node)).local_name.lower()
        term_type = {"iri": "iri", "literal": "literal",
                     "blanknode": "bnode"}.get(local, default_type)
    elif template is not None:
        term_type = "iri"
    elif constant is not None:
        term_type = "iri" if isinstance(constant, IRI) else "literal"

    return TermMap(
        template=str(template) if template is not None else None,
        column=str(column) if column is not None else None,
        constant=constant,
        term_type=term_type,
        datatype=IRI(str(datatype)) if datatype is not None else None,
        lang=str(lang) if lang is not None else None,
    )
