"""Automatic mapping generation (GeoTriples' mapping generator).

Given a logical source, derive a sensible default triples map: one
subject per row, one datatype-guessed predicate per column, and the
GeoSPARQL geometry chain for WKT columns — the "automatic mapping
generation" step GeoTriples performs before users hand-edit mappings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..rdf.namespace import XSD
from ..rdf.terms import IRI
from .rml import LogicalSource, MappingError, TermMap, TriplesMap

GEOMETRY_COLUMNS = ("wkt", "geometry", "geom", "the_geom")


def generate_mapping(source: LogicalSource, base_iri: str,
                     class_iri: Optional[str] = None,
                     id_column: Optional[str] = None,
                     name: str = "generated",
                     sample_size: int = 50) -> TriplesMap:
    """Derive a triples map from the source's first *sample_size* rows."""
    base = base_iri.rstrip("/#") + "/"
    sample: List[Dict[str, object]] = []
    for row in source.rows():
        sample.append(row)
        if len(sample) >= sample_size:
            break
    if not sample:
        raise MappingError("cannot generate a mapping from an empty source")

    columns = list(sample[0].keys())
    if id_column is None:
        for candidate in ("id", "gid", "fid", "osm_id"):
            if candidate in columns:
                id_column = candidate
                break
    if id_column is None:
        raise MappingError(
            f"no id column found among {columns}; pass id_column explicitly"
        )

    geometry_column = next(
        (c for c in columns if c.lower() in GEOMETRY_COLUMNS), None
    )

    tmap = TriplesMap(
        name=name,
        logical_source=source,
        subject_map=TermMap(template=f"{base}{{{id_column}}}"),
        classes=[IRI(class_iri)] if class_iri else [],
        geometry_column=geometry_column,
    )
    for column in columns:
        if column == id_column or column == geometry_column:
            continue
        datatype = _guess_datatype(column, sample)
        tmap.add_pom(
            IRI(f"{base}has{_camel(column)}"),
            TermMap(column=column, term_type="literal", datatype=datatype),
        )
    return tmap


def _guess_datatype(column: str, sample: List[Dict[str, object]]):
    values = [row.get(column) for row in sample if row.get(column) is not None]
    if not values:
        return None
    if all(isinstance(v, bool) for v in values):
        return XSD.boolean
    if all(isinstance(v, int) and not isinstance(v, bool) for v in values):
        return XSD.integer
    if all(isinstance(v, (int, float)) and not isinstance(v, bool)
           for v in values):
        return XSD.double
    return None  # plain string literal


def _camel(column: str) -> str:
    parts = [p for p in column.replace("-", "_").split("_") if p]
    return "".join(p[:1].upper() + p[1:] for p in parts)
