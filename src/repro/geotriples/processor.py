"""GeoTriples mapping processors (serial and parallel).

The serial :class:`MappingProcessor` walks each triples map's logical
source row by row and emits RDF. :class:`ParallelMappingProcessor`
partitions the rows over worker processes — the stand-in for the
Hadoop-based processor whose efficiency the paper cites ("GeoTriples is
very efficient especially when its mapping processor is implemented
using Apache Hadoop").
"""

from __future__ import annotations

import multiprocessing
import uuid
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..rdf import Graph, RDF
from ..rdf.namespace import GEO, SF
from ..rdf.ntriples import parse_ntriples, serialize_ntriples
from ..rdf.terms import BNode, GEO_WKT_LITERAL, IRI, Literal, Triple
from .rml import MappingError, TriplesMap


class MappingProcessor:
    """Executes triples maps into an RDF graph."""

    def __init__(self, triples_maps: Sequence[TriplesMap]):
        if not triples_maps:
            raise MappingError("no triples maps to process")
        self.triples_maps = list(triples_maps)

    def run(self, graph: Optional[Graph] = None) -> Graph:
        graph = graph if graph is not None else Graph()
        for tmap in self.triples_maps:
            for row in tmap.logical_source.rows():
                for triple in row_triples(tmap, row):
                    graph.add(triple)
        return graph


def row_triples(tmap: TriplesMap, row: Dict[str, object]) -> List[Triple]:
    """All triples one row of a triples map produces."""
    subject = tmap.subject_map.expand(row)
    if subject is None or isinstance(subject, Literal):
        return []
    out: List[Triple] = []
    for cls in tmap.classes:
        out.append(Triple(subject, RDF.type, cls))
    for pom in tmap.predicate_object_maps:
        obj = pom.object_map.expand(row)
        if obj is not None:
            out.append(Triple(subject, pom.predicate, obj))
    if tmap.geometry_column is not None:
        wkt = row.get(tmap.geometry_column)
        if wkt is not None:
            wkt = str(wkt)
            if tmap.normalize_geometries:
                wkt = _normalize_wkt(wkt)
            if wkt is not None:
                out.extend(
                    _geometry_chain(subject, wkt, tmap.geometry_crs)
                )
    return out


def _normalize_wkt(wkt: str):
    """Parse + canonicalize WKT; invalid geometries drop the chain.

    Canonical form: rings closed and counter-clockwise shells (the
    orientation GeoSPARQL consumers expect), re-serialized WKT text.
    """
    from ..geometry import GeometryError, LinearRing, Polygon, flatten, \
        wkt_dumps, wkt_loads

    try:
        geom = wkt_loads(wkt)
    except GeometryError:
        return None
    for part in flatten(geom):
        if isinstance(part, Polygon) and not part.shell.is_ccw:
            part = Polygon(
                LinearRing(tuple(reversed(part.shell.vertices))),
                part.holes,
            )
    return wkt_dumps(geom)


def _geometry_chain(subject, wkt: str, crs: Optional[str]) -> List[Triple]:
    """The GeoSPARQL pattern GeoTriples emits for a geometry column."""
    # BNode labels get a UUID so chunks merged from parallel workers
    # (each with its own blank-node counter) cannot collide.
    geom_node = IRI(str(subject) + "/geometry") if isinstance(subject, IRI) \
        else BNode("g" + uuid.uuid4().hex)
    lexical = f"<{crs}> {wkt}" if crs else wkt
    sf_class = _sf_class(wkt)
    triples = [
        Triple(subject, GEO.hasGeometry, geom_node),
        Triple(geom_node, GEO.asWKT,
               Literal(lexical, datatype=GEO_WKT_LITERAL)),
    ]
    if sf_class is not None:
        triples.insert(1, Triple(geom_node, RDF.type, sf_class))
    return triples


def _sf_class(wkt: str):
    head = wkt.lstrip().split("(", 1)[0].strip().upper()
    names = {
        "POINT": "Point",
        "LINESTRING": "LineString",
        "POLYGON": "Polygon",
        "MULTIPOINT": "MultiPoint",
        "MULTILINESTRING": "MultiLineString",
        "MULTIPOLYGON": "MultiPolygon",
        "GEOMETRYCOLLECTION": "GeometryCollection",
    }
    local = names.get(head)
    return SF.term(local) if local else None


# ---------------------------------------------------------------------------
# Parallel processor
# ---------------------------------------------------------------------------

def _chunk(rows: List[Dict], n_chunks: int) -> List[List[Dict]]:
    if n_chunks <= 1:
        return [rows]
    size = max(1, (len(rows) + n_chunks - 1) // n_chunks)
    return [rows[i: i + size] for i in range(0, len(rows), size)]


def _file_worker(payload: Tuple[TriplesMap, List[Dict], str]) -> Tuple[str, int]:
    """Map a chunk and write an N-Triples part-file (Hadoop-style).

    Output stays distributed: nothing is merged in the parent, which is
    what gives the parallel processor its near-linear scaling.
    """
    tmap, rows, path = payload
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            for triple in row_triples(tmap, row):
                fh.write(triple.n3() + "\n")
                count += 1
    return path, count


def _worker(payload: Tuple[TriplesMap, List[Dict]]) -> List[Triple]:
    """Map a chunk of rows to triples (Hadoop-mapper style).

    Triples travel back to the parent via pickle; re-serializing to
    N-Triples and re-parsing in the parent would serialize the whole
    job on the parent's parser.
    """
    tmap, rows = payload
    out: List[Triple] = []
    for row in rows:
        out.extend(row_triples(tmap, row))
    return out


class ParallelMappingProcessor:
    """Partitioned mapping execution over a process pool."""

    def __init__(self, triples_maps: Sequence[TriplesMap], workers: int = 2):
        if workers < 1:
            raise MappingError("workers must be >= 1")
        self.triples_maps = list(triples_maps)
        self.workers = workers

    def run(self, graph: Optional[Graph] = None) -> Graph:
        graph = graph if graph is not None else Graph()
        payloads: List[Tuple[TriplesMap, List[Dict]]] = []
        for tmap in self.triples_maps:
            rows = list(tmap.logical_source.rows())
            # Workers receive pre-materialized rows; drop the logical
            # source so unpicklable handles (DB connections, registries)
            # never cross the process boundary.
            from .rml import LogicalSource

            portable = replace(tmap, logical_source=LogicalSource("rows", ()))
            for chunk in _chunk(rows, self.workers):
                payloads.append((portable, chunk))
        if self.workers == 1 or len(payloads) <= 1:
            parts = [_worker(p) for p in payloads]
        else:
            with multiprocessing.Pool(self.workers) as pool:
                parts = pool.map(_worker, payloads)
        for triples in parts:
            graph.update(triples)
        return graph

    def run_to_files(self, output_dir: str) -> List[Tuple[str, int]]:
        """Hadoop-style execution: one N-Triples part-file per chunk.

        Returns ``(path, triple_count)`` pairs. Because outputs stay
        distributed (no parent-side merge), this is the mode where the
        parallel speedup the paper cites actually materializes.
        """
        import os

        payloads: List[Tuple[TriplesMap, List[Dict], str]] = []
        part = 0
        for tmap in self.triples_maps:
            rows = list(tmap.logical_source.rows())
            from .rml import LogicalSource

            portable = replace(tmap, logical_source=LogicalSource("rows", ()))
            for chunk in _chunk(rows, self.workers):
                path = os.path.join(output_dir, f"part-{part:05d}.nt")
                payloads.append((portable, chunk, path))
                part += 1
        if self.workers == 1 or len(payloads) <= 1:
            return [_file_worker(p) for p in payloads]
        with multiprocessing.Pool(self.workers) as pool:
            return pool.map(_file_worker, payloads)
