"""GeoTriples mapping processors (serial and parallel).

The serial :class:`MappingProcessor` walks each triples map's logical
source row by row and emits RDF. :class:`ParallelMappingProcessor`
partitions the rows and runs the partitions through the deterministic
worker pool (or, opt-in, worker processes) — the stand-in for the
Hadoop-based processor whose efficiency the paper cites ("GeoTriples is
very efficient especially when its mapping processor is implemented
using Apache Hadoop").
"""

from __future__ import annotations

import multiprocessing
import time
import uuid
from dataclasses import replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..parallel import WorkerPool, chunk_list
from ..rdf import Graph, RDF
from ..rdf.namespace import GEO, SF
from ..rdf.ntriples import parse_ntriples, serialize_ntriples
from ..rdf.terms import BNode, GEO_WKT_LITERAL, IRI, Literal, Triple
from .rml import MappingError, TriplesMap


class MappingProcessor:
    """Executes triples maps into an RDF graph."""

    def __init__(self, triples_maps: Sequence[TriplesMap]):
        if not triples_maps:
            raise MappingError("no triples maps to process")
        self.triples_maps = list(triples_maps)

    def run(self, graph: Optional[Graph] = None) -> Graph:
        graph = graph if graph is not None else Graph()
        for tmap in self.triples_maps:
            for row in tmap.logical_source.rows():
                for triple in row_triples(tmap, row):
                    graph.add(triple)
        return graph


def row_triples(tmap: TriplesMap, row: Dict[str, object]) -> List[Triple]:
    """All triples one row of a triples map produces."""
    subject = tmap.subject_map.expand(row)
    if subject is None or isinstance(subject, Literal):
        return []
    out: List[Triple] = []
    for cls in tmap.classes:
        out.append(Triple(subject, RDF.type, cls))
    for pom in tmap.predicate_object_maps:
        obj = pom.object_map.expand(row)
        if obj is not None:
            out.append(Triple(subject, pom.predicate, obj))
    if tmap.geometry_column is not None:
        wkt = row.get(tmap.geometry_column)
        if wkt is not None:
            wkt = str(wkt)
            if tmap.normalize_geometries:
                wkt = _normalize_wkt(wkt)
            if wkt is not None:
                out.extend(
                    _geometry_chain(subject, wkt, tmap.geometry_crs)
                )
    return out


def _normalize_wkt(wkt: str):
    """Parse + canonicalize WKT; invalid geometries drop the chain.

    Canonical form: rings closed and counter-clockwise shells (the
    orientation GeoSPARQL consumers expect), re-serialized WKT text.
    """
    from ..geometry import GeometryError, LinearRing, Polygon, flatten, \
        wkt_dumps, wkt_loads

    try:
        geom = wkt_loads(wkt)
    except GeometryError:
        return None
    for part in flatten(geom):
        if isinstance(part, Polygon) and not part.shell.is_ccw:
            part = Polygon(
                LinearRing(tuple(reversed(part.shell.vertices))),
                part.holes,
            )
    return wkt_dumps(geom)


def _geometry_chain(subject, wkt: str, crs: Optional[str]) -> List[Triple]:
    """The GeoSPARQL pattern GeoTriples emits for a geometry column."""
    # BNode labels get a UUID so chunks merged from parallel workers
    # (each with its own blank-node counter) cannot collide.
    geom_node = IRI(str(subject) + "/geometry") if isinstance(subject, IRI) \
        else BNode("g" + uuid.uuid4().hex)
    lexical = f"<{crs}> {wkt}" if crs else wkt
    sf_class = _sf_class(wkt)
    triples = [
        Triple(subject, GEO.hasGeometry, geom_node),
        Triple(geom_node, GEO.asWKT,
               Literal(lexical, datatype=GEO_WKT_LITERAL)),
    ]
    if sf_class is not None:
        triples.insert(1, Triple(geom_node, RDF.type, sf_class))
    return triples


def _sf_class(wkt: str):
    head = wkt.lstrip().split("(", 1)[0].strip().upper()
    names = {
        "POINT": "Point",
        "LINESTRING": "LineString",
        "POLYGON": "Polygon",
        "MULTIPOINT": "MultiPoint",
        "MULTILINESTRING": "MultiLineString",
        "MULTIPOLYGON": "MultiPolygon",
        "GEOMETRYCOLLECTION": "GeometryCollection",
    }
    local = names.get(head)
    return SF.term(local) if local else None


# ---------------------------------------------------------------------------
# Parallel processor
# ---------------------------------------------------------------------------

def _file_worker(payload: Tuple[TriplesMap, List[Dict], str]) -> Tuple[str, int]:
    """Map a chunk and write an N-Triples part-file (Hadoop-style).

    Output stays distributed: nothing is merged in the parent, which is
    what gives the parallel processor its near-linear scaling.
    """
    tmap, rows, path = payload
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            for triple in row_triples(tmap, row):
                fh.write(triple.n3() + "\n")
                count += 1
    return path, count


def _worker(payload: Tuple[TriplesMap, List[Dict]]) -> List[Triple]:
    """Map a chunk of rows to triples (Hadoop-mapper style).

    Triples travel back to the parent via pickle; re-serializing to
    N-Triples and re-parsing in the parent would serialize the whole
    job on the parent's parser.
    """
    tmap, rows = payload
    out: List[Triple] = []
    for row in rows:
        out.extend(row_triples(tmap, row))
    return out


class ParallelMappingProcessor:
    """Partitioned mapping execution over a deterministic worker pool.

    The logical sources are split into *partitions* contiguous chunks
    (a pure function of row count and partition count — never of the
    worker count), and the chunks run through a
    :class:`~repro.parallel.WorkerPool`, merged back in partition
    order. Output — the merged graph and, in :meth:`run_to_files`
    mode, every part-file — is therefore byte-identical for any
    ``workers`` setting, which is what the serial/parallel equivalence
    suite pins down.

    ``partitions`` defaults to ``workers`` (the historical behaviour);
    callers comparing artifacts across worker counts fix it
    explicitly. ``partition_read_s`` + injectable ``sleep`` simulate
    the per-partition read latency of a distributed input (the HDFS
    scans of the Hadoop processor the paper cites) so the worker
    sweep in the benchmarks measures honest I/O overlap.
    ``use_processes=True`` keeps the original multiprocessing path for
    CPU-bound mapping.
    """

    def __init__(self, triples_maps: Sequence[TriplesMap], workers: int = 2,
                 partitions: Optional[int] = None,
                 pool: Optional[WorkerPool] = None,
                 use_processes: bool = False,
                 partition_read_s: float = 0.0,
                 sleep: Callable[[float], None] = time.sleep,
                 tracer=None, budget=None):
        if workers < 1:
            raise MappingError("workers must be >= 1")
        self.triples_maps = list(triples_maps)
        self.workers = workers
        self.partitions = workers if partitions is None else max(1, partitions)
        self.pool = pool
        self.use_processes = use_processes
        self.partition_read_s = partition_read_s
        self.sleep = sleep
        self.tracer = tracer
        self.budget = budget

    def _payloads(self) -> List[Tuple[TriplesMap, List[Dict]]]:
        payloads: List[Tuple[TriplesMap, List[Dict]]] = []
        for tmap in self.triples_maps:
            rows = list(tmap.logical_source.rows())
            # Workers receive pre-materialized rows; drop the logical
            # source so unpicklable handles (DB connections, registries)
            # never cross the process boundary.
            from .rml import LogicalSource

            portable = replace(tmap, logical_source=LogicalSource("rows", ()))
            for chunk in chunk_list(rows, self.partitions):
                payloads.append((portable, chunk))
        return payloads

    def _make_pool(self) -> Tuple[WorkerPool, bool]:
        if self.pool is not None:
            return self.pool, False
        return WorkerPool(workers=self.workers, name="geotriples"), True

    def _map_chunk(self, payload: Tuple[TriplesMap, List[Dict]],
                   tracer=None) -> List[Triple]:
        if self.partition_read_s > 0:
            # Simulated partition read (the distributed-input scan).
            self.sleep(self.partition_read_s)
        triples = _worker(payload)
        if self.budget is not None:
            self.budget.charge_triples(len(triples))
        if tracer is not None:
            tracer.count("rows", len(payload[1]))
            tracer.count("triples", len(triples))
        return triples

    def run(self, graph: Optional[Graph] = None) -> Graph:
        graph = graph if graph is not None else Graph()
        payloads = self._payloads()
        if self.use_processes and self.workers > 1 and len(payloads) > 1:
            with multiprocessing.Pool(self.workers) as mp:
                parts = mp.map(_worker, payloads)
        else:
            pool, owned = self._make_pool()
            try:
                parts = pool.map(
                    lambda payload, tracer=None:
                        self._map_chunk(payload, tracer),
                    payloads, budget=self.budget, tracer=self.tracer,
                    label="geotriples.map",
                    task_label="geotriples.partition", pass_tracer=True,
                )
            finally:
                if owned:
                    pool.close()
        for triples in parts:
            graph.update(triples)
        return graph

    def run_to_files(self, output_dir: str) -> List[Tuple[str, int]]:
        """Hadoop-style execution: one N-Triples part-file per chunk.

        Returns ``(path, triple_count)`` pairs in partition order.
        Because outputs stay distributed (no parent-side merge), this
        is the mode where the parallel speedup the paper cites
        actually materializes; with a fixed ``partitions`` every
        part-file is byte-identical whatever the worker count.
        """
        import os

        payloads: List[Tuple[TriplesMap, List[Dict], str]] = []
        for part, (portable, chunk) in enumerate(self._payloads()):
            path = os.path.join(output_dir, f"part-{part:05d}.nt")
            payloads.append((portable, chunk, path))
        if self.use_processes and self.workers > 1 and len(payloads) > 1:
            with multiprocessing.Pool(self.workers) as mp:
                return mp.map(_file_worker, payloads)

        def one(payload, tracer=None):
            if self.partition_read_s > 0:
                self.sleep(self.partition_read_s)
            path, count = _file_worker(payload)
            if self.budget is not None:
                self.budget.charge_triples(count)
            if tracer is not None:
                tracer.count("triples", count)
            return path, count

        pool, owned = self._make_pool()
        try:
            return pool.map(one, payloads, budget=self.budget,
                            tracer=self.tracer, label="geotriples.map",
                            task_label="geotriples.partition",
                            pass_tracer=True)
        finally:
            if owned:
                pool.close()
