"""GeoTriples: geospatial data → RDF via R2RML/RML mappings."""

from .generator import generate_mapping
from .processor import MappingProcessor, ParallelMappingProcessor, row_triples
from .rml import (
    LogicalSource,
    MappingError,
    PredicateObjectMap,
    RML,
    RR,
    TermMap,
    TriplesMap,
    parse_r2rml,
)

__all__ = [
    "LogicalSource",
    "MappingError",
    "MappingProcessor",
    "ParallelMappingProcessor",
    "PredicateObjectMap",
    "RML",
    "RR",
    "TermMap",
    "TriplesMap",
    "generate_mapping",
    "parse_r2rml",
    "row_triples",
]
