"""Catalog layer: DRS validation, ACDD checking, metadata CMS, crosswalks."""

from .acdd import (
    ACDD_RECOMMENDED,
    ACDD_REQUIRED,
    ACDD_SUGGESTED,
    AcddReport,
    augmentation_ncml,
    check_acdd,
    recommend_attributes,
)
from .cms import CmsError, MetadataCms, MetadataRecord
from .drs import (
    REQUIRED_DRS_ATTRIBUTES,
    ValidationIssue,
    ValidationReport,
    validate_attributes,
    validate_filename,
    validate_server,
)
from .translate import (
    CONVENTIONS,
    HARMONIZED_QUERY,
    TranslationError,
    from_canonical,
    harmonized_listing,
    metadata_to_rdf,
    to_canonical,
    translate,
)

__all__ = [
    "ACDD_RECOMMENDED",
    "ACDD_REQUIRED",
    "ACDD_SUGGESTED",
    "AcddReport",
    "CONVENTIONS",
    "CmsError",
    "HARMONIZED_QUERY",
    "MetadataCms",
    "MetadataRecord",
    "REQUIRED_DRS_ATTRIBUTES",
    "TranslationError",
    "ValidationIssue",
    "ValidationReport",
    "augmentation_ncml",
    "check_acdd",
    "from_canonical",
    "harmonized_listing",
    "metadata_to_rdf",
    "recommend_attributes",
    "to_canonical",
    "translate",
    "validate_attributes",
    "validate_filename",
    "validate_server",
]
