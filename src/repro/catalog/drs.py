"""DRS-validator: Data Reference Syntax compliance checking.

Section 3.1: "A command-line tool was built and published, entitled
'DRS-validator', that validates a CSP's datasets exposed through the
OPeNDAP interface by checking for compliance with the Data Reference
Syntax (DRS) metadata."

The Copernicus Global Land DRS names files::

    c_gls_<PRODUCT>_<YYYYMMDDHHMM>_<AREA>_<SENSOR>_V<M.m.p>.nc

and requires a core set of global attributes. The validator checks
both: file-name syntax (usable from the CLI on plain paths) and, given
a live DAP server, the metadata of every mounted dataset.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..opendap import DapServer, parse_das

DRS_FILENAME_RE = re.compile(
    r"^c_gls_(?P<product>[A-Z0-9-]+)_"
    r"(?P<stamp>\d{12})_"
    r"(?P<area>[A-Z0-9]+)_"
    r"(?P<sensor>[A-Z0-9-]+)_"
    r"V(?P<version>\d+\.\d+\.\d+)"
    r"\.nc$"
)

REQUIRED_DRS_ATTRIBUTES = (
    "title",
    "product_version",
    "time_coverage_start",
    "institution",
    "source",
)


@dataclass
class ValidationIssue:
    severity: str  # "error" | "warning"
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.upper()}] {self.subject}: {self.message}"


@dataclass
class ValidationReport:
    issues: List[ValidationIssue] = field(default_factory=list)
    checked: int = 0

    def error(self, subject: str, message: str) -> None:
        self.issues.append(ValidationIssue("error", subject, message))

    def warn(self, subject: str, message: str) -> None:
        self.issues.append(ValidationIssue("warning", subject, message))

    @property
    def errors(self) -> List[ValidationIssue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        lines = [f"DRS validation: {self.checked} item(s) checked"]
        lines.extend(str(i) for i in self.issues)
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def validate_filename(filename: str,
                      report: Optional[ValidationReport] = None
                      ) -> ValidationReport:
    """Check one file name against the DRS pattern."""
    report = report if report is not None else ValidationReport()
    report.checked += 1
    basename = filename.rsplit("/", 1)[-1]
    m = DRS_FILENAME_RE.match(basename)
    if not m:
        report.error(basename, "file name does not match the DRS pattern "
                               "c_gls_<PRODUCT>_<YYYYMMDDHHMM>_<AREA>_"
                               "<SENSOR>_V<M.m.p>.nc")
        return report
    stamp = m.group("stamp")
    month, day = int(stamp[4:6]), int(stamp[6:8])
    if not (1 <= month <= 12 and 1 <= day <= 31):
        report.error(basename, f"timestamp {stamp} has invalid month/day")
    return report


def validate_attributes(subject: str, attributes: Dict[str, object],
                        report: Optional[ValidationReport] = None
                        ) -> ValidationReport:
    """Check a dataset's global attributes against the DRS core set."""
    report = report if report is not None else ValidationReport()
    report.checked += 1
    for required in REQUIRED_DRS_ATTRIBUTES:
        if required not in attributes:
            report.error(subject, f"missing required attribute {required!r}")
    version = attributes.get("product_version")
    if version is not None and not re.match(r"^RT\d+$|^V?\d+(\.\d+)*$",
                                            str(version)):
        report.warn(subject,
                    f"product_version {version!r} is not RTn or a version")
    start = attributes.get("time_coverage_start")
    if start is not None and not re.match(r"^\d{4}-\d{2}-\d{2}",
                                          str(start)):
        report.error(subject,
                     f"time_coverage_start {start!r} is not ISO 8601")
    return report


def validate_server(server: DapServer,
                    pattern: str = "*") -> ValidationReport:
    """Validate every dataset a DAP server exposes (the §3.1 use case)."""
    report = ValidationReport()
    for path in server.paths(pattern):
        das_text = server.request(path + ".das").decode("utf-8")
        containers = parse_das(das_text)
        validate_attributes(
            path, containers.get("NC_GLOBAL", {}), report
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``drs-validator FILE [FILE ...]``."""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: drs-validator <filename.nc> [...]", file=sys.stderr)
        return 2
    report = ValidationReport()
    for filename in args:
        validate_filename(filename, report)
    print(report.render())
    return 0 if report.ok else 1
