"""The metadata Content Management System (CMS).

Section 3.1: "In order to harvest the metadata, a Content Management
System was developed and published as a service allowing the CSPs to
manage the metadata of their datasets, which allows them to mutate as
and when they choose to expose them through the DAP ... the publishing
and then harvesting of metadata from CSPs is recurrent by design."

The CMS keeps a versioned metadata record per dataset; records are
harvested from DAP servers, mutated by CSP editors, and published back
as NcML override documents that the SDL/OPeNDAP layer blends over the
source data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..opendap import DapDataset, DapServer, parse_das
from ..opendap.ncml import NCML_NS, apply_ncml_overrides


class CmsError(KeyError):
    """Raised for lookups of unknown records."""


@dataclass
class MetadataRecord:
    dataset: str
    attributes: Dict[str, object] = field(default_factory=dict)
    version: int = 1
    history: List[Tuple[int, Dict[str, object]]] = field(
        default_factory=list
    )

    def snapshot(self) -> Dict[str, object]:
        return dict(self.attributes)


class MetadataCms:
    """Versioned per-dataset metadata records with harvest/publish."""

    def __init__(self):
        self._records: Dict[str, MetadataRecord] = {}

    # -- record management ------------------------------------------------------
    def record(self, dataset: str) -> MetadataRecord:
        try:
            return self._records[dataset]
        except KeyError:
            raise CmsError(f"no record for dataset {dataset!r}") from None

    def datasets(self) -> List[str]:
        return sorted(self._records)

    def upsert(self, dataset: str, attributes: Dict[str, object]
               ) -> MetadataRecord:
        if dataset in self._records:
            return self.mutate(dataset, **attributes)
        record = MetadataRecord(dataset, dict(attributes))
        record.history.append((1, record.snapshot()))
        self._records[dataset] = record
        return record

    def mutate(self, dataset: str, **changes) -> MetadataRecord:
        """CSP edit: change attributes, bumping the record version."""
        record = self.record(dataset)
        record.attributes.update(changes)
        record.version += 1
        record.history.append((record.version, record.snapshot()))
        return record

    def rollback(self, dataset: str, version: int) -> MetadataRecord:
        record = self.record(dataset)
        for v, snapshot in record.history:
            if v == version:
                record.attributes = dict(snapshot)
                record.version += 1
                record.history.append((record.version, record.snapshot()))
                return record
        raise CmsError(f"{dataset!r} has no version {version}")

    # -- harvest / publish (recurrent by design) ------------------------------
    def harvest(self, server: DapServer, pattern: str = "*") -> List[str]:
        """Pull global attributes from every mounted dataset."""
        harvested = []
        for path in server.paths(pattern):
            das = parse_das(server.request(path + ".das").decode("utf-8"))
            self.upsert(path, das.get("NC_GLOBAL", {}))
            harvested.append(path)
        return harvested

    def publish_ncml(self, dataset: str) -> str:
        """The record as an NcML override document."""
        from xml.sax.saxutils import quoteattr

        record = self.record(dataset)
        lines = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            f'<netcdf xmlns="{NCML_NS}">',
        ]
        for key, value in sorted(record.attributes.items()):
            attr_type = (
                "int" if isinstance(value, int)
                and not isinstance(value, bool)
                else "double" if isinstance(value, float) else "String"
            )
            lines.append(
                f"  <attribute name={quoteattr(key)} "
                f"type={quoteattr(attr_type)} "
                f"value={quoteattr(str(value))}/>"
            )
        lines.append("</netcdf>")
        return "\n".join(lines) + "\n"

    def apply_to(self, dataset_name: str,
                 dataset: DapDataset) -> DapDataset:
        """Blend the CMS record over a concrete dataset (post-hoc fix)."""
        return apply_ncml_overrides(dataset, self.publish_ncml(dataset_name))
