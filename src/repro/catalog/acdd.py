"""ACDD compliance checking and discoverability recommendations.

Section 3.1: "a tool was implemented that provides recommendations for
metadata attributes that can be added to datasets exposed through the
DAP to facilitate discovery of those using standard metadata searches",
and "in case metadata at the source cannot be made compliant with ACDD,
the CMS will allow for post-hoc augmentation using NcML".

The checker grades a dataset against the ACDD-1.3 attribute tiers; the
recommender goes further: where a value can be *derived from the data*
(spatial extent from lat/lon, temporal extent from time, keywords from
long_names) it proposes the concrete value, ready to be blended in via
NcML.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..opendap import DapDataset, decode_time
from ..opendap.ncml import NCML_NS

ACDD_REQUIRED = ("title", "summary", "keywords")
ACDD_RECOMMENDED = (
    "id", "naming_authority", "license", "institution",
    "geospatial_lat_min", "geospatial_lat_max",
    "geospatial_lon_min", "geospatial_lon_max",
    "time_coverage_start", "time_coverage_end",
    "creator_name", "standard_name_vocabulary",
)
ACDD_SUGGESTED = (
    "processing_level", "comment", "acknowledgment", "project",
    "date_created",
)


@dataclass
class AcddReport:
    missing_required: List[str] = field(default_factory=list)
    missing_recommended: List[str] = field(default_factory=list)
    missing_suggested: List[str] = field(default_factory=list)

    @property
    def score(self) -> float:
        """Weighted compliance score in [0, 1] (required 3x, rec 2x)."""
        total = 3 * len(ACDD_REQUIRED) + 2 * len(ACDD_RECOMMENDED) \
            + len(ACDD_SUGGESTED)
        lost = (
            3 * len(self.missing_required)
            + 2 * len(self.missing_recommended)
            + len(self.missing_suggested)
        )
        return 1.0 - lost / total

    @property
    def compliant(self) -> bool:
        return not self.missing_required


def check_acdd(dataset: DapDataset) -> AcddReport:
    """Grade a dataset's global attributes against ACDD-1.3 tiers."""
    present = dataset.attributes
    return AcddReport(
        missing_required=[a for a in ACDD_REQUIRED if a not in present],
        missing_recommended=[
            a for a in ACDD_RECOMMENDED if a not in present
        ],
        missing_suggested=[a for a in ACDD_SUGGESTED if a not in present],
    )


def recommend_attributes(dataset: DapDataset) -> Dict[str, object]:
    """Concrete attribute values derivable from the data itself."""
    report = check_acdd(dataset)
    missing = set(
        report.missing_required + report.missing_recommended
        + report.missing_suggested
    )
    out: Dict[str, object] = {}
    lat = dataset.variables.get("lat")
    lon = dataset.variables.get("lon")
    if lat is not None:
        if "geospatial_lat_min" in missing:
            out["geospatial_lat_min"] = float(lat.data.min())
        if "geospatial_lat_max" in missing:
            out["geospatial_lat_max"] = float(lat.data.max())
    if lon is not None:
        if "geospatial_lon_min" in missing:
            out["geospatial_lon_min"] = float(lon.data.min())
        if "geospatial_lon_max" in missing:
            out["geospatial_lon_max"] = float(lon.data.max())
    time_var = dataset.variables.get("time")
    if time_var is not None and "units" in time_var.attributes:
        times = decode_time(time_var)
        if times:
            if "time_coverage_start" in missing:
                out["time_coverage_start"] = times[0].isoformat()
            if "time_coverage_end" in missing:
                out["time_coverage_end"] = times[-1].isoformat()
    if "keywords" in missing:
        names = [
            str(v.attributes.get("long_name", name))
            for name, v in dataset.variables.items()
            if name not in ("time", "lat", "lon")
        ]
        if names:
            out["keywords"] = ", ".join(sorted(names))
    if "summary" in missing and "title" in dataset.attributes:
        out["summary"] = (
            f"{dataset.attributes['title']} served via OPeNDAP "
            "(auto-generated summary)"
        )
    return out


def augmentation_ncml(dataset: DapDataset,
                      extra: Optional[Dict[str, object]] = None) -> str:
    """NcML override document carrying the recommended attributes.

    This is the artifact the CMS applies post hoc when the source
    cannot be fixed (Section 3.1).
    """
    from xml.sax.saxutils import quoteattr

    values = recommend_attributes(dataset)
    if extra:
        values.update(extra)
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<netcdf xmlns="{NCML_NS}">',
    ]
    for key, value in sorted(values.items()):
        attr_type = (
            "int" if isinstance(value, int) and not isinstance(value, bool)
            else "double" if isinstance(value, float) else "String"
        )
        lines.append(
            f"  <attribute name={quoteattr(key)} "
            f"type={quoteattr(attr_type)} value={quoteattr(str(value))}/>"
        )
    lines.append("</netcdf>")
    return "\n".join(lines) + "\n"
