"""Metadata convention crosswalks and SPARQL-based harmonization.

Section 3.1: "Given the proliferation of various metadata standards, a
tool was developed that can translate between metadata conventions"
and "We present a mediation approach that facilitates multiple Metadata
Standards to co-exist but are semantically harmonized through SPARQL
Query."

Two mechanisms:

- :func:`translate` — direct attribute crosswalks between ACDD, a
  simplified ISO 19115 profile, and the Global Land DRS convention;
- :func:`metadata_to_rdf` — lift any convention's attributes into a
  common Dublin Core RDF shape so one SPARQL query answers over records
  from every convention (the mediation approach).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..rdf import DCTERMS, Graph, IRI, Literal, RDF, SDO

# Canonical field → per-convention attribute name.
_CROSSWALK: Dict[str, Dict[str, str]] = {
    "title": {
        "acdd": "title", "iso": "MD_title", "drs": "title",
    },
    "abstract": {
        "acdd": "summary", "iso": "MD_abstract", "drs": "description",
    },
    "keywords": {
        "acdd": "keywords", "iso": "MD_keywords", "drs": "keywords",
    },
    "provider": {
        "acdd": "institution", "iso": "MD_organisationName",
        "drs": "institution",
    },
    "license": {
        "acdd": "license", "iso": "MD_useLimitation", "drs": "license",
    },
    "temporal_start": {
        "acdd": "time_coverage_start", "iso": "EX_beginPosition",
        "drs": "time_coverage_start",
    },
    "temporal_end": {
        "acdd": "time_coverage_end", "iso": "EX_endPosition",
        "drs": "time_coverage_end",
    },
    "version": {
        "acdd": "product_version", "iso": "MD_edition",
        "drs": "product_version",
    },
}

CONVENTIONS = ("acdd", "iso", "drs")

_CANONICAL_PREDICATES = {
    "title": DCTERMS.title,
    "abstract": DCTERMS.abstract,
    "keywords": DCTERMS.subject,
    "provider": DCTERMS.publisher,
    "license": DCTERMS.license,
    "temporal_start": DCTERMS.temporal,
    "temporal_end": DCTERMS.available,
    "version": DCTERMS.hasVersion,
}


class TranslationError(ValueError):
    """Raised for unknown conventions."""


def _check(convention: str) -> None:
    if convention not in CONVENTIONS:
        raise TranslationError(
            f"unknown convention {convention!r}; have {CONVENTIONS}"
        )


def to_canonical(attributes: Dict[str, object],
                 convention: str) -> Dict[str, object]:
    """Extract the canonical fields present in a convention's attrs."""
    _check(convention)
    out = {}
    for canonical, names in _CROSSWALK.items():
        name = names[convention]
        if name in attributes:
            out[canonical] = attributes[name]
    return out


def from_canonical(canonical: Dict[str, object],
                   convention: str) -> Dict[str, object]:
    _check(convention)
    return {
        _CROSSWALK[field][convention]: value
        for field, value in canonical.items()
        if field in _CROSSWALK
    }


def translate(attributes: Dict[str, object], source: str,
              target: str) -> Dict[str, object]:
    """Translate attributes between two conventions (lossy crosswalk)."""
    return from_canonical(to_canonical(attributes, source), target)


def metadata_to_rdf(dataset_iri: str, attributes: Dict[str, object],
                    convention: str,
                    graph: Optional[Graph] = None) -> Graph:
    """Lift convention-specific attributes into a Dublin Core graph."""
    graph = graph if graph is not None else Graph()
    subject = IRI(dataset_iri)
    graph.add(subject, RDF.type, SDO.Dataset)
    for canonical, value in to_canonical(attributes, convention).items():
        graph.add(subject, _CANONICAL_PREDICATES[canonical],
                  Literal(str(value)))
    return graph


HARMONIZED_QUERY = """
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX sdo: <https://schema.org/>
SELECT ?dataset ?title ?provider WHERE {
  ?dataset a sdo:Dataset ; dcterms:title ?title .
  OPTIONAL { ?dataset dcterms:publisher ?provider }
}
ORDER BY ?title
"""


def harmonized_listing(graph: Graph) -> List[Dict[str, str]]:
    """One SPARQL query over records lifted from *any* convention."""
    result = graph.query(HARMONIZED_QUERY)
    return [
        {
            "dataset": str(row["dataset"]),
            "title": row["title"].lexical,
            "provider": row["provider"].lexical
            if row.get("provider") else None,
        }
        for row in result
    ]
