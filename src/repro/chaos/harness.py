"""Compiling chaos plans onto the seeded workload harness.

The :class:`ChaosHarness` takes the PR 6 workload (thousands of
simulated clients against the multi-tenant service on one
:class:`~repro.service.VirtualClock`) in its federated form, slides
chaos wrappers between every layer boundary, and compiles a
:class:`~repro.chaos.plan.ChaosPlan` into scheduler timer events —
so fault windows open and close at exact virtual instants, inside the
same event loop that delivers arrivals and completions.

Injection points, one per failure domain:

- **federation sources / replicas** — every
  :class:`~repro.sparql.federation.SparqlEndpoint` is wrapped in a
  :class:`ChaosEndpoint` whose ``down``/``delay_s`` flags timer events
  flip (flaps and latency spikes);
- **worker tasks** — the engine's fan-out pool runs through a
  :class:`ChaosExecutor` that lets the task run, then deterministically
  loses its result (:class:`~repro.parallel.WorkerDeath`) inside
  ``worker_death`` windows;
- **DAP side channel** — a :class:`~repro.opendap.DapCache`-fronted
  remote dataset polled on a virtual-time tick, its server wrapped in a
  :class:`ChaosDapServer` (payload corruption), its cache squeezed by
  eviction storms;
- **service tier** — timer events invalidate cached plans mid-flight
  and squeeze tenant deadlines (budget exhaustion).

Everything is deterministic: wrappers advance the shared virtual clock
instead of sleeping, and every random decision draws from the plan's
seeded per-stream RNGs. Two runs of one ``(spec, plan)`` pair emit
byte-identical :class:`ChaosReport` JSON — the invariant suite pins
this.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..observability import SLOSpec, SLOWindows
from ..opendap import DapCache, DapDataset, DapServer, ServerRegistry, \
    open_url
from ..parallel import SerialExecutor, TaskOutcome, WorkerDeath, WorkerPool
from ..resilience import RetryPolicy
from ..resilience.faults import InjectedFault, corrupt_body
from ..service.workload import (
    TenantSpec,
    Workload,
    WorkloadSpec,
    default_tenants,
)
from ..sparql.federation import SparqlEndpoint
from .plan import (
    BUDGET_SQUEEZE,
    DAP_CORRUPTION,
    DAP_EVICTION_STORM,
    ENDPOINT_FLAP,
    LATENCY_SPIKE,
    PLAN_CACHE_INVALIDATION,
    WORKER_DEATH,
    ChaosPlan,
    Fault,
)

__all__ = ["ChaosEndpoint", "ChaosDapServer", "ChaosExecutor",
           "ChaosHarness", "ChaosReport", "chaos_tenants", "run_chaos"]

DAP_HOST = "chaos.test"
DAP_URL = f"dap://{DAP_HOST}/Copernicus/LAI"

#: The DAP tick rotates over these subset constraints, so the cache
#: sees repeat keys (hits, stale candidates) and fresh ones (misses).
DAP_CONSTRAINTS = (
    "LAI[0][0:2][0:2]",
    "LAI[1][0:2][0:2]",
    "LAI[2][0:2][0:2]",
    "LAI[3][0:2][0:2]",
)


def chaos_tenants() -> List[TenantSpec]:
    """The default workload tenants, each with a retry-budget bucket
    (chaos without retry budgets melts down by design — that contrast
    is one of the resilience benchmark's sweeps)."""
    return [dataclasses.replace(spec, retry_ratio=0.2, retry_cap=10.0)
            for spec in default_tenants()]


class ChaosEndpoint:
    """A SPARQL endpoint whose availability timer events control.

    While ``down`` every access raises
    :class:`~repro.resilience.InjectedFault` (a ``ConnectionError``,
    so retry/failover/degradation treat it as an upstream outage);
    while ``delay_s > 0`` every access advances the shared virtual
    clock by that much first — deadlines burn down while the slow
    replica "works". Everything else delegates to the wrapped
    endpoint.
    """

    def __init__(self, inner: SparqlEndpoint, clock):
        self.inner = inner
        self._clock = clock
        self.down = False
        self.delay_s = 0.0
        self.injected_failures = 0
        self.injected_delays = 0

    def _gate(self, what: str) -> None:
        if self.down:
            self.injected_failures += 1
            raise InjectedFault(
                f"injected outage: {self.inner.name} is down ({what})")
        if self.delay_s > 0:
            self.injected_delays += 1
            self._clock.advance_to(self._clock.now + self.delay_s)

    def query(self, text: str):
        self._gate("query")
        return self.inner.query(text)

    def select_group(self, group, seeds=None):
        self._gate("service")
        return self.inner.select_group(group, seeds)

    def triples(self, pattern):
        self._gate("triples")
        return self.inner.triples(pattern)

    def predicates(self):
        self._gate("predicates")
        return self.inner.predicates()

    def counters(self) -> Dict[str, int]:
        return {"failures": self.injected_failures,
                "delays": self.injected_delays}

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        state = "down" if self.down else (
            f"slow+{self.delay_s:g}s" if self.delay_s else "up")
        return f"<ChaosEndpoint {self.inner.name} {state}>"


class ChaosDapServer:
    """Wraps a :class:`~repro.opendap.DapServer`; timer-flipped flags
    corrupt payloads or refuse requests for a fault window."""

    def __init__(self, inner: DapServer):
        self.inner = inner
        self.corrupt = False
        self.down = False
        self.injected_corruptions = 0
        self.injected_failures = 0

    def request(self, path_and_query: str) -> bytes:
        if self.down:
            self.injected_failures += 1
            raise InjectedFault(
                f"injected outage: DAP {self.inner.host!r} is down")
        body = self.inner.request(path_and_query)
        if self.corrupt:
            self.injected_corruptions += 1
            return corrupt_body(body)
        return body

    def counters(self) -> Dict[str, int]:
        return {"corruptions": self.injected_corruptions,
                "failures": self.injected_failures}

    def __getattr__(self, name):
        return getattr(self.inner, name)


class _DeadHandle:
    """A completed handle holding a worker-death outcome."""

    __slots__ = ("_outcome",)

    def __init__(self, outcome: TaskOutcome):
        self._outcome = outcome

    def result(self) -> TaskOutcome:
        return self._outcome


class ChaosExecutor:
    """An executor middleware that loses finished tasks' results.

    The inner executor runs the task to completion first — modelling a
    worker that crashes *after* doing the work but before reporting —
    then, inside an active ``worker_death`` window, the outcome is
    replaced by a :class:`~repro.parallel.WorkerDeath` error with the
    plan's seeded probability. Advertises ``workers=2`` so the engine
    fans out through :meth:`~repro.parallel.WorkerPool.run_tasks`
    (where task outcomes are inspectable); with a serial inner
    executor submission order is execution order, so the kill sequence
    is deterministic.
    """

    workers = 2

    def __init__(self, inner, clock, plan: ChaosPlan):
        self.inner = inner
        self._clock = clock
        self._windows: List[Fault] = plan.by_kind(WORKER_DEATH)
        self._rng = plan.rng("worker_death")
        self.submitted = 0
        self.deaths = 0

    def _death_rate(self) -> float:
        now = self._clock()
        return max((f.magnitude for f in self._windows
                    if f.at_s <= now < f.until_s), default=0.0)

    def submit(self, fn: Callable[[], object]):
        handle = self.inner.submit(fn)
        self.submitted += 1
        rate = self._death_rate()
        if rate <= 0.0:
            return handle
        outcome = handle.result()
        # One draw per task inside a window, in submission order —
        # the kill sequence is a pure function of (plan seed, order).
        if isinstance(outcome, TaskOutcome) \
                and self._rng.random() < rate:
            self.deaths += 1
            outcome = TaskOutcome(
                outcome.index,
                error=WorkerDeath(
                    f"worker died holding task #{self.submitted} "
                    f"(result lost)"),
                span=outcome.span,
            )
        return _DeadHandle(outcome)

    def shutdown(self) -> None:
        self.inner.shutdown()

    def counters(self) -> Dict[str, int]:
        return {"tasks": self.submitted, "deaths": self.deaths}


def _make_dap_dataset() -> DapDataset:
    """A small deterministic LAI grid for the DAP side channel."""
    ds = DapDataset(
        "LAI",
        attributes={"title": "Leaf Area Index (chaos fixture)",
                    "Conventions": "CF-1.6"},
    )
    times = (np.arange(4, dtype=np.int32) * 10)
    lats = np.linspace(48.80, 48.92, 5)
    lons = np.linspace(2.20, 2.50, 6)
    # Deterministic pseudo-data: pure arithmetic, no RNG.
    lai = (((np.arange(4 * 5 * 6, dtype=np.int64) * 37) % 100) / 20.0) \
        .reshape(4, 5, 6).astype(np.float32)
    ds.add_variable("time", ["time"], times,
                    {"units": "days since 2018-01-01", "axis": "T"})
    ds.add_variable("lat", ["lat"], lats, {"units": "degrees_north"})
    ds.add_variable("lon", ["lon"], lons, {"units": "degrees_east"})
    ds.add_variable("LAI", ["time", "lat", "lon"], lai,
                    {"units": "m2/m2", "_FillValue": -1.0})
    return ds


class ChaosHarness:
    """One seeded chaos run: workload + wrappers + compiled plan.

    Fault targeting (the plan's ``target`` field):

    - ``endpoint_flap`` / ``latency_spike`` — a federation source
      index (every replica of a pooled source), or
      ``(source + 1) * 100 + replica`` for one replica only;
    - ``budget_squeeze`` — a tenant index in registration order;
    - ``plan_cache_invalidation`` — a template index in registration
      order, ``-1`` for all templates.
    """

    def __init__(self, spec: WorkloadSpec, plan: ChaosPlan,
                 tenants: Optional[List[TenantSpec]] = None,
                 pooled_source: Optional[int] = 0,
                 replica_count: int = 2,
                 dap_ticks: int = 32,
                 dap_tick_s: float = 0.005,
                 dap_ttl_s: float = 0.02,
                 dap_max_entries: int = 8):
        if not spec.federated:
            spec = dataclasses.replace(spec, federated=True)
        self.spec = spec
        self.plan = plan
        self.workload = Workload(
            spec, tenants=tenants if tenants is not None
            else chaos_tenants())
        self.clock = self.workload.clock
        self.service = self.workload.service
        self.scheduler = self.workload.scheduler
        self.engine = self.workload.federation
        #: Per source: the chaos wrappers standing in for its replicas
        #: (singleton list for unpooled sources), in registration order.
        self.recorder = self.workload.recorder
        self.slo = self.workload.slo
        self.source_wrappers: List[Tuple[str, List[ChaosEndpoint]]] = []
        self._install_endpoint_wrappers(pooled_source, replica_count)
        if self.recorder is not None:
            self._wire_pool_observability()
        self.executor = ChaosExecutor(SerialExecutor(), self.clock, plan)
        self.engine.pool = WorkerPool(executor=self.executor,
                                      name="chaos-fanout")
        # Match the parallel pool's eager SERVICE dispatch so the fan
        # out actually routes through the chaos executor.
        self.engine.eager_service = True
        self._install_dap_channel(dap_ticks, dap_tick_s, dap_ttl_s,
                                  dap_max_entries)
        self._saved_specs: Dict[str, TenantSpec] = {}
        self.timer_log: List[Dict[str, object]] = []
        self._compile_plan()
        self.report: Optional[ChaosReport] = None

    # -- wiring ------------------------------------------------------------
    def _install_endpoint_wrappers(self, pooled_source: Optional[int],
                                   replica_count: int) -> None:
        for index, iri in enumerate(self.engine.sources()):
            original = self.engine.endpoint(iri)
            if pooled_source is not None and index == pooled_source \
                    and replica_count > 1:
                wrappers = [
                    ChaosEndpoint(
                        SparqlEndpoint(original.graph,
                                       name=f"{original.name}-r{k}"),
                        self.clock)
                    for k in range(replica_count)
                ]
                self.engine.register_replicas(
                    iri, wrappers, hedge=True, hedge_warmup=4,
                    min_samples=4, window=32, ejection_s=0.05)
            else:
                wrappers = [ChaosEndpoint(original, self.clock)]
                self.engine.register(iri, wrappers[0])
            self.source_wrappers.append((iri, wrappers))

    def _wire_pool_observability(self) -> None:
        """Per-pool availability SLOs + pool health edges into the
        flight recorder. ``sample`` events feed the SLO windows (one
        good/bad observation per dispatch attempt); ejection and probe
        edges are incidents-in-the-making and land in the ring, an
        ejection additionally snapshotting an incident bundle."""
        fast_s, mid_s, slow_s = self.spec.slo_windows
        windows = SLOWindows(fast_s=fast_s, mid_s=mid_s, slow_s=slow_s)
        for iri in self.engine.sources():
            pool = self.engine.endpoint_pool(iri)
            if pool is None:
                continue
            scope = f"pool:{iri}"
            self.slo.register(SLOSpec(
                name=f"pool-{pool.name}-availability", scope=scope,
                objective="availability", target=0.95, windows=windows))
            pool.on_event = self._pool_event(scope)

    def _pool_event(self, scope: str) -> Callable[
            [str, Dict[str, object]], None]:
        def on_event(event: str, payload: Dict[str, object]) -> None:
            if event == "sample":
                # every recorded attempt is one availability datapoint;
                # samples stay out of the ring (they would flood it)
                self.slo.observe(
                    scope,
                    outcome="completed" if payload["ok"] else "failed",
                    latency_s=payload["latency_s"])
                return
            self.recorder.record(
                f"pool_{event}",
                **{k: v for k, v in payload.items()
                   if isinstance(v, (str, int, float, bool, type(None)))})
            if event == "ejection":
                self.recorder.snapshot(
                    f"ejection:{payload['pool']}:{payload['replica']}")
        return on_event

    def _install_dap_channel(self, ticks: int, tick_s: float,
                             ttl_s: float, max_entries: int) -> None:
        self.dap_ticks = ticks
        self.dap_counts = {"ticks": 0, "fresh": 0, "stale": 0,
                           "failed": 0}
        self.dap_errors: Dict[str, int] = {}
        self.dap_cache: Optional[DapCache] = None
        self.dap_server: Optional[ChaosDapServer] = None
        self._dap_default_entries = max_entries
        if ticks <= 0:
            return
        registry = ServerRegistry()
        server = DapServer(DAP_HOST)
        server.mount("Copernicus/LAI", _make_dap_dataset())
        registry.register(server)
        self.dap_server = registry.wrap(DAP_HOST, ChaosDapServer)
        self.dap_cache = DapCache(ttl_s=ttl_s, clock=self.clock,
                                  max_entries=max_entries,
                                  serve_stale=True)
        clock = self.clock
        self.dap_remote = open_url(
            DAP_URL, registry, cache=self.dap_cache,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.0005, jitter=0.0,
                clock=clock,
                sleep=lambda s: clock.advance_to(clock.now + s)))
        for i in range(ticks):
            constraint = DAP_CONSTRAINTS[i % len(DAP_CONSTRAINTS)]
            self.scheduler.at(0.001 + i * tick_s,
                              self._dap_tick(constraint))

    def _dap_tick(self, constraint: str) -> Callable[[], None]:
        def tick() -> None:
            self.dap_counts["ticks"] += 1
            try:
                result = self.dap_remote.fetch(constraint)
            except Exception as exc:
                self.dap_counts["failed"] += 1
                name = type(exc).__name__
                self.dap_errors[name] = self.dap_errors.get(name, 0) + 1
                return
            if getattr(result, "stale", False):
                self.dap_counts["stale"] += 1
            else:
                self.dap_counts["fresh"] += 1
        return tick

    # -- plan compilation --------------------------------------------------
    def _log(self, fault: Fault, edge: str) -> None:
        self.timer_log.append({"at_s": round(self.clock.now, 9),
                               "kind": fault.kind, "edge": edge,
                               "target": fault.target})
        if self.recorder is not None:
            self.recorder.record("fault_window", fault=fault.kind,
                                 edge=edge, target=fault.target)

    def _endpoint_targets(self, fault: Fault) -> List[ChaosEndpoint]:
        target = fault.target
        if target >= 100:
            source, replica = target // 100 - 1, target % 100
        else:
            source, replica = target, None
        if not 0 <= source < len(self.source_wrappers):
            raise ValueError(
                f"{fault.kind}: no federation source {source}")
        wrappers = self.source_wrappers[source][1]
        if replica is None:
            return wrappers
        if not 0 <= replica < len(wrappers):
            raise ValueError(
                f"{fault.kind}: source {source} has no replica "
                f"{replica}")
        return [wrappers[replica]]

    def _compile_plan(self) -> None:
        for fault in self.plan.faults:
            compile_one = getattr(self, "_compile_" + fault.kind)
            compile_one(fault)

    def _window(self, fault: Fault, open_cb: Callable[[], None],
                close_cb: Callable[[], None]) -> None:
        def opened() -> None:
            open_cb()
            self._log(fault, "open")

        def closed() -> None:
            close_cb()
            self._log(fault, "close")

        self.scheduler.at(fault.at_s, opened)
        if fault.duration_s > 0:
            self.scheduler.at(fault.until_s, closed)

    def _compile_endpoint_flap(self, fault: Fault) -> None:
        victims = self._endpoint_targets(fault)

        def down() -> None:
            for ep in victims:
                ep.down = True

        def up() -> None:
            for ep in victims:
                ep.down = False

        self._window(fault, down, up)

    def _compile_latency_spike(self, fault: Fault) -> None:
        victims = self._endpoint_targets(fault)

        def slow() -> None:
            for ep in victims:
                ep.delay_s = fault.magnitude

        def fast() -> None:
            for ep in victims:
                ep.delay_s = 0.0

        self._window(fault, slow, fast)

    def _compile_worker_death(self, fault: Fault) -> None:
        # The ChaosExecutor reads its windows straight from the plan;
        # the timers here only mark the edges in the log.
        self._window(fault, lambda: None, lambda: None)

    def _compile_dap_corruption(self, fault: Fault) -> None:
        server = self.dap_server
        if server is None:
            raise ValueError(
                "dap_corruption fault needs dap_ticks > 0")
        self._window(fault,
                     lambda: setattr(server, "corrupt", True),
                     lambda: setattr(server, "corrupt", False))

    def _compile_dap_eviction_storm(self, fault: Fault) -> None:
        cache = self.dap_cache
        if cache is None:
            raise ValueError(
                "dap_eviction_storm fault needs dap_ticks > 0")
        storm_size = int(fault.magnitude)
        default = self._dap_default_entries

        def shrink() -> None:
            cache.max_entries = storm_size
            # Apply the bound immediately: a no-op put would only
            # trigger on the next fetch.
            with cache._lock:
                while len(cache._entries) > storm_size:
                    evicted, __ = cache._entries.popitem(last=False)
                    cache._pending_stale.discard(evicted)
                    cache.evictions += 1

        self._window(fault, shrink,
                     lambda: setattr(cache, "max_entries", default))

    def _compile_plan_cache_invalidation(self, fault: Fault) -> None:
        names = list(self.service.templates)

        def drop() -> None:
            if fault.target < 0:
                self.service.invalidate_template(None)
            else:
                if not 0 <= fault.target < len(names):
                    raise ValueError(
                        f"plan_cache_invalidation: no template "
                        f"{fault.target}")
                self.service.invalidate_template(names[fault.target])

        self._window(fault, drop, lambda: None)

    def _compile_budget_squeeze(self, fault: Fault) -> None:
        tenant_names = self.service.tenants.names()
        if not 0 <= fault.target < len(tenant_names):
            raise ValueError(
                f"budget_squeeze: no tenant {fault.target}")
        name = tenant_names[fault.target]
        state = self.service.tenants.get(name)

        def squeeze() -> None:
            self._saved_specs[name] = state.spec
            state.spec = dataclasses.replace(
                state.spec, deadline_s=fault.magnitude)

        def restore() -> None:
            state.spec = self._saved_specs.pop(name, state.spec)

        self._window(fault, squeeze, restore)

    # -- running -----------------------------------------------------------
    def run(self) -> "ChaosReport":
        workload_report = self.workload.run()
        self.report = ChaosReport(self, workload_report)
        return self.report


class ChaosReport:
    """The deterministic summary of one finished chaos run."""

    def __init__(self, harness: ChaosHarness, workload_report):
        self.harness = harness
        self.workload_report = workload_report
        self.records = harness.scheduler.records
        records_json = json.dumps(
            [r.as_dict() for r in self.records], sort_keys=True)
        engine = harness.engine
        endpoint_counters = {
            iri: {f"replica{idx}": w.counters()
                  for idx, w in enumerate(wrappers)}
            for iri, wrappers in harness.source_wrappers
        }
        dap_block: Dict[str, object] = {"enabled": harness.dap_ticks > 0}
        if harness.dap_cache is not None:
            cache = harness.dap_cache
            dap_block.update({
                "counts": dict(harness.dap_counts),
                "errors": dict(sorted(harness.dap_errors.items())),
                "server": harness.dap_server.counters(),
                "cache": {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "stale_hits": cache.stale_hits,
                    "evictions": cache.evictions,
                    "entries": len(cache),
                    "max_entries": cache.max_entries,
                },
                "client": harness.dap_remote.stats.as_dict(),
            })
        self.report: Dict[str, object] = {
            "plan": harness.plan.summary(),
            "workload": workload_report.report,
            "records_sha256": hashlib.sha256(
                records_json.encode("utf-8")).hexdigest(),
            "chaos": {
                "endpoints": endpoint_counters,
                "executor": harness.executor.counters(),
                "timer_log": list(harness.timer_log),
                "dap": dap_block,
            },
            "resilience": {
                "engine": engine.stats.as_dict(),
                "pools": engine.pool_reports(),
            },
        }
        # Incident bundles at the top level so operators (and the
        # acceptance suite) need not dig through the workload block;
        # the slo/query_log rollups live there already.
        if harness.recorder is not None:
            self.report["incidents"] = harness.recorder.summary()

    def __getitem__(self, key: str):
        return self.report[key]

    def to_json(self) -> str:
        """Canonical JSON: the unit of same-seed byte identity."""
        return json.dumps(self.report, sort_keys=True, indent=2) + "\n"


def run_chaos(spec: WorkloadSpec, plan: ChaosPlan,
              **harness_kwargs) -> ChaosReport:
    """Build and run one chaos harness; returns its report."""
    return ChaosHarness(spec, plan, **harness_kwargs).run()
