"""Composable, seeded chaos plans.

A :class:`ChaosPlan` is a *pure description*: a seed plus a tuple of
:class:`Fault` windows, each naming a kind, a virtual-time window and a
target. Nothing here touches clocks, caches or endpoints — the harness
(:mod:`repro.chaos.harness`) compiles the plan into scheduler timer
events and wrapper flags. Keeping the description inert is what makes
chaos runs replayable: the same ``(seed, faults)`` pair always compiles
to the same injections at the same virtual instants, so two runs of one
plan produce byte-identical reports.

All randomness in the chaos layer flows from :meth:`ChaosPlan.rng`:
seeded, per-stream ``random.Random`` instances (this module is the only
one in ``repro.chaos`` allowed to import :mod:`random` — the
determinism lint enforces that).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..resilience.policy import _MIX

__all__ = [
    "FAULT_KINDS",
    "ENDPOINT_FLAP",
    "LATENCY_SPIKE",
    "WORKER_DEATH",
    "DAP_CORRUPTION",
    "DAP_EVICTION_STORM",
    "PLAN_CACHE_INVALIDATION",
    "BUDGET_SQUEEZE",
    "Fault",
    "ChaosPlan",
    "endpoint_flap",
    "latency_spike",
    "worker_death",
    "dap_corruption",
    "dap_eviction_storm",
    "plan_cache_invalidation",
    "budget_squeeze",
]

#: Kill one federation source (or one replica of a pooled source) for
#: the window: every request it would serve raises ``InjectedFault``.
ENDPOINT_FLAP = "endpoint_flap"
#: Add ``magnitude`` seconds of *virtual* latency to one source's
#: requests for the window (advances the shared VirtualClock, so
#: deadlines really do burn down while the slow replica "works").
LATENCY_SPIKE = "latency_spike"
#: During the window, each task submitted to the chaos-wrapped worker
#: executor dies with probability ``magnitude`` — the work ran, the
#: result is lost (:class:`~repro.parallel.WorkerDeath`).
WORKER_DEATH = "worker_death"
#: Corrupt every DAP response body for the window (decode fails, the
#: client retries, then falls back to stale cache if it can).
DAP_CORRUPTION = "dap_corruption"
#: Shrink the DapCache to ``int(magnitude)`` entries for the window —
#: an eviction storm under whatever fetch traffic is in flight.
DAP_EVICTION_STORM = "dap_eviction_storm"
#: Drop cached query plans at ``at_s`` — one template (``target``
#: indexes the registration order) or all of them (``target == -1``).
PLAN_CACHE_INVALIDATION = "plan_cache_invalidation"
#: Replace one tenant's default deadline with ``magnitude`` seconds for
#: the window: requests arriving inside it carry near-empty budgets.
BUDGET_SQUEEZE = "budget_squeeze"

FAULT_KINDS = (
    ENDPOINT_FLAP,
    LATENCY_SPIKE,
    WORKER_DEATH,
    DAP_CORRUPTION,
    DAP_EVICTION_STORM,
    PLAN_CACHE_INVALIDATION,
    BUDGET_SQUEEZE,
)


@dataclass(frozen=True)
class Fault:
    """One fault window: what breaks, when, for how long, how hard.

    ``target`` selects the victim by index — a federation source, a
    replica, a tenant or a template depending on ``kind`` (the harness
    documents each mapping). ``magnitude`` is the kind's intensity
    knob: spike seconds, death probability, squeezed deadline seconds,
    storm cache size.
    """

    kind: str
    at_s: float
    duration_s: float = 0.0
    target: int = 0
    magnitude: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {list(FAULT_KINDS)}")
        if self.at_s < 0:
            raise ValueError(f"{self.kind}: at_s must be >= 0")
        if self.duration_s < 0:
            raise ValueError(f"{self.kind}: duration_s must be >= 0")

    @property
    def until_s(self) -> float:
        return self.at_s + self.duration_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "target": self.target,
            "magnitude": self.magnitude,
        }


# -- fault constructors (the readable way to write a plan) -----------------
def endpoint_flap(at_s: float, duration_s: float,
                  source: int = 0, replica: int = -1) -> Fault:
    """Source *source* goes dark for the window. With ``replica >= 0``
    only that replica of a pooled source flaps (encoded in the target
    as ``(source + 1) * 100 + replica``, so replica targets are always
    >= 100 and never collide with whole-source indices — the harness
    decodes it)."""
    target = source if replica < 0 else (source + 1) * 100 + replica
    return Fault(ENDPOINT_FLAP, at_s, duration_s, target=target)


def latency_spike(at_s: float, duration_s: float, delay_s: float,
                  source: int = 0, replica: int = -1) -> Fault:
    target = source if replica < 0 else (source + 1) * 100 + replica
    return Fault(LATENCY_SPIKE, at_s, duration_s, target=target,
                 magnitude=delay_s)


def worker_death(at_s: float, duration_s: float,
                 rate: float = 0.5) -> Fault:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"worker death rate must be in [0, 1]: {rate}")
    return Fault(WORKER_DEATH, at_s, duration_s, magnitude=rate)


def dap_corruption(at_s: float, duration_s: float) -> Fault:
    return Fault(DAP_CORRUPTION, at_s, duration_s)


def dap_eviction_storm(at_s: float, duration_s: float,
                       max_entries: int = 1) -> Fault:
    if max_entries < 0:
        raise ValueError("storm max_entries must be >= 0")
    return Fault(DAP_EVICTION_STORM, at_s, duration_s,
                 magnitude=float(max_entries))


def plan_cache_invalidation(at_s: float, template: int = -1) -> Fault:
    """Invalidate one template's plan (or all, ``template=-1``) at
    *at_s* — mid-flight from the perspective of queued requests."""
    return Fault(PLAN_CACHE_INVALIDATION, at_s, target=template)


def budget_squeeze(at_s: float, duration_s: float,
                   tenant: int = 0, deadline_s: float = 0.001) -> Fault:
    if deadline_s <= 0:
        raise ValueError("squeezed deadline_s must be > 0")
    return Fault(BUDGET_SQUEEZE, at_s, duration_s, target=tenant,
                 magnitude=deadline_s)


@dataclass(frozen=True)
class ChaosPlan:
    """A seed plus an inert tuple of fault windows.

    The seed feeds every random decision the compiled plan makes
    (which tasks die inside a ``worker_death`` window, for instance)
    through :meth:`rng` — per-stream so two consumers never share a
    draw sequence by accident.
    """

    seed: int = 0
    faults: Tuple[Fault, ...] = ()

    def __post_init__(self):
        # Tolerate (and normalize) a list literal at the call site.
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    def rng(self, stream: str) -> random.Random:
        """A seeded RNG private to *stream* (stable across runs and
        processes — the stream name hashes with CRC32, not ``hash``)."""
        return random.Random(
            self.seed * _MIX + zlib.crc32(stream.encode("utf-8")))

    def by_kind(self, kind: str) -> List[Fault]:
        return [f for f in self.faults if f.kind == kind]

    @property
    def kinds(self) -> List[str]:
        """The distinct fault kinds this plan injects, sorted."""
        return sorted({f.kind for f in self.faults})

    @property
    def horizon_s(self) -> float:
        """The virtual time the last fault window closes."""
        return max((f.until_s for f in self.faults), default=0.0)

    def concurrent_kinds_at(self, t: float) -> List[str]:
        """Fault kinds whose windows cover virtual time *t*."""
        return sorted({f.kind for f in self.faults
                       if f.at_s <= t < max(f.until_s, f.at_s + 1e-12)})

    def max_concurrent_kinds(self) -> int:
        """The most distinct kinds ever active at one instant (the
        acceptance bar asks for >= 3 concurrent kinds)."""
        edges = sorted({f.at_s for f in self.faults})
        return max((len(self.concurrent_kinds_at(t)) for t in edges),
                   default=0)

    def summary(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "kinds": self.kinds,
            "faults": [f.as_dict() for f in self.faults],
        }
