"""Deterministic chaos engineering for the whole serving stack.

The paper's platform promises "easy access" on top of notoriously
flaky ingredients — remote SPARQL endpoints, DAP servers, shared
worker pools. This package stress-tests the repo's resilience story
end to end: a :class:`ChaosPlan` (a seed plus fault windows) is
compiled by the :class:`ChaosHarness` onto the virtual-time workload
harness, injecting endpoint flaps, latency spikes, worker deaths,
cache corruption/eviction storms, plan-cache invalidations and budget
squeezes at exact virtual instants, while the
:class:`InvariantChecker` asserts what must hold regardless: bounded
time, typed errors only, request conservation, consistent degraded
blocks — and byte-identical reports for the same seed.

See DESIGN.md "Failure domains" for the fault-kind x layer matrix.
"""

from .harness import (
    ChaosDapServer,
    ChaosEndpoint,
    ChaosExecutor,
    ChaosHarness,
    ChaosReport,
    chaos_tenants,
    run_chaos,
)
from .invariants import (
    ALLOWED_ERROR_CODES,
    InvariantChecker,
    InvariantViolation,
    assert_deterministic,
)
from .plan import (
    BUDGET_SQUEEZE,
    DAP_CORRUPTION,
    DAP_EVICTION_STORM,
    ENDPOINT_FLAP,
    FAULT_KINDS,
    LATENCY_SPIKE,
    PLAN_CACHE_INVALIDATION,
    WORKER_DEATH,
    ChaosPlan,
    Fault,
    budget_squeeze,
    dap_corruption,
    dap_eviction_storm,
    endpoint_flap,
    latency_spike,
    plan_cache_invalidation,
    worker_death,
)

__all__ = [
    "ChaosPlan",
    "Fault",
    "FAULT_KINDS",
    "ENDPOINT_FLAP",
    "LATENCY_SPIKE",
    "WORKER_DEATH",
    "DAP_CORRUPTION",
    "DAP_EVICTION_STORM",
    "PLAN_CACHE_INVALIDATION",
    "BUDGET_SQUEEZE",
    "endpoint_flap",
    "latency_spike",
    "worker_death",
    "dap_corruption",
    "dap_eviction_storm",
    "plan_cache_invalidation",
    "budget_squeeze",
    "ChaosHarness",
    "ChaosReport",
    "ChaosEndpoint",
    "ChaosDapServer",
    "ChaosExecutor",
    "chaos_tenants",
    "run_chaos",
    "ALLOWED_ERROR_CODES",
    "InvariantChecker",
    "InvariantViolation",
    "assert_deterministic",
]
