"""What must stay true no matter what the chaos plan breaks.

The chaos harness is only useful with teeth: after a run, the
:class:`InvariantChecker` walks the :class:`~repro.chaos.ChaosReport`
and asserts the properties the whole stack promises *under* injected
failure, not merely in its absence:

- **bounded virtual time** — the event loop drained; no request hung
  the simulated service past the configured horizon;
- **typed errors only** — every failed request carries a stable wire
  code from the service error vocabulary; ``internal_error`` (the
  "an exception leaked" bucket) never appears;
- **conservation** — requests are neither lost nor double-counted:
  ``submitted == completed + shed + budget_exceeded + failed`` per
  tenant and in total, and the audit trail has one record per
  submission;
- **degraded consistency** — every degraded block's completeness adds
  up (``answered + |failed_sources| == total``), and stale/truncation
  markers are well-formed;
- **DAP accounting** — under eviction storms and corruption the cache
  never exceeds its bound and classifies every lookup exactly once
  (``hits + misses + stale_hits == lookups``).

Determinism is the meta-invariant: :func:`assert_deterministic` runs a
report factory twice and requires byte-identical JSON.

Violations raise :class:`InvariantViolation` (an ``AssertionError``,
so pytest renders them natively); :meth:`InvariantChecker.check_all`
returns the per-invariant verdict map the chaos smoke job prints.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .harness import ChaosReport

__all__ = ["ALLOWED_ERROR_CODES", "InvariantViolation",
           "InvariantChecker", "assert_deterministic"]

#: Every wire code a chaos-run request may legitimately fail with.
#: ``internal_error`` is deliberately absent: its appearance means an
#: exception escaped the typed-error mapping somewhere in the stack.
ALLOWED_ERROR_CODES = frozenset({
    "overloaded",
    "quota_exceeded",
    "deadline_exceeded",
    "budget_exceeded",
    "row_limit_exceeded",
    "scan_limit_exceeded",
    "fetch_limit_exceeded",
    "cancelled",
    "upstream_unavailable",
    "circuit_open",
    "worker_died",
})


class InvariantViolation(AssertionError):
    """A chaos invariant did not survive the run."""


class InvariantChecker:
    """Post-run assertions over one :class:`ChaosReport`."""

    def __init__(self, report: ChaosReport,
                 max_virtual_s: float = 600.0):
        self.report = report
        self.max_virtual_s = max_virtual_s

    # -- individual invariants ---------------------------------------------
    def check_bounded_time(self) -> None:
        totals = self.report["workload"]["totals"]
        duration = totals["virtual_duration_s"]
        if not duration < self.max_virtual_s:
            raise InvariantViolation(
                f"virtual time ran away: {duration}s >= "
                f"{self.max_virtual_s}s horizon (a request hung)")
        if self.report.harness.scheduler._events:
            raise InvariantViolation(
                "scheduler stopped with events still queued")

    def check_typed_errors(self) -> None:
        offenders: List[str] = []
        for record in self.report.records:
            if record.error is None:
                continue
            code = record.error.get("code")
            if code not in ALLOWED_ERROR_CODES:
                offenders.append(
                    f"seq {record.seq}: {code!r} "
                    f"({record.error.get('message', '')[:80]})")
        if offenders:
            raise InvariantViolation(
                "untyped/unexpected error codes escaped the service:\n"
                + "\n".join(offenders))

    def check_conservation(self) -> None:
        tenants: Dict[str, Dict] = self.report["workload"]["tenants"]
        for name, block in tenants.items():
            shed = (block["shed_quota"] + block["shed_overload"]
                    + block["shed_timeout"])
            accounted = (block["completed"] + shed
                         + block["budget_exceeded"] + block["failed"])
            if block["submitted"] != accounted:
                raise InvariantViolation(
                    f"tenant {name!r} leaks requests: submitted "
                    f"{block['submitted']} != accounted {accounted} "
                    f"({block})")
        totals = self.report["workload"]["totals"]
        accounted = (totals["completed"] + totals["shed"]
                     + totals["budget_exceeded"] + totals["failed"])
        if totals["submitted"] != accounted:
            raise InvariantViolation(
                f"totals leak requests: submitted "
                f"{totals['submitted']} != accounted {accounted}")
        if len(self.report.records) != totals["submitted"]:
            raise InvariantViolation(
                f"audit trail mismatch: {len(self.report.records)} "
                f"records for {totals['submitted']} submissions")

    def check_degraded_consistency(self) -> None:
        for record in self.report.records:
            block = record.degraded
            if block is None:
                continue
            comp = block["completeness"]
            answered, total = comp["answered"], comp["total"]
            failed = comp["failed_sources"]
            if answered + len(failed) != total or answered < 0:
                raise InvariantViolation(
                    f"seq {record.seq}: inconsistent completeness "
                    f"{comp}")
            if block["stale_serves"] < 0 \
                    or not isinstance(block["truncated"], bool):
                raise InvariantViolation(
                    f"seq {record.seq}: malformed degraded block "
                    f"{block}")

    def check_dap_accounting(self) -> None:
        harness = self.report.harness
        cache = harness.dap_cache
        if cache is None:
            return
        counts = harness.dap_counts
        served = counts["fresh"] + counts["stale"] + counts["failed"]
        if counts["ticks"] != served:
            raise InvariantViolation(
                f"DAP ticks unaccounted: {counts}")
        lookups = cache.hits + cache.misses + cache.stale_hits
        if lookups != counts["ticks"]:
            raise InvariantViolation(
                f"cache classified {lookups} lookups for "
                f"{counts['ticks']} ticks (double or dropped count)")
        if cache.max_entries is not None \
                and len(cache) > cache.max_entries:
            raise InvariantViolation(
                f"cache over bound: {len(cache)} > "
                f"{cache.max_entries}")

    # -- the bundle --------------------------------------------------------
    CHECKS = (
        "bounded_time",
        "typed_errors",
        "conservation",
        "degraded_consistency",
        "dap_accounting",
    )

    def check_all(self) -> Dict[str, str]:
        """Run every invariant; returns ``{name: "ok"}`` or raises the
        first :class:`InvariantViolation` encountered.

        A violation is an incident: when the run carried a flight
        recorder, its ring is snapshotted under ``invariant:<name>``
        before the violation propagates, so the evidence window is
        frozen at the moment of detection."""
        recorder = getattr(self.report.harness, "recorder", None)
        verdicts: Dict[str, str] = {}
        for name in self.CHECKS:
            try:
                getattr(self, "check_" + name)()
            except InvariantViolation:
                if recorder is not None:
                    recorder.snapshot(f"invariant:{name}")
                raise
            verdicts[name] = "ok"
        return verdicts


def assert_deterministic(build: Callable[[], ChaosReport]
                         ) -> ChaosReport:
    """Run *build* twice; byte-identical reports or a violation.

    This is the run-twice meta-invariant: a chaos run is a pure
    function of its ``(spec, plan)`` pair. Returns the first report so
    callers can keep asserting against it.
    """
    first = build()
    second = build()
    a, b = first.to_json(), second.to_json()
    if a != b:
        for line_a, line_b in zip(a.splitlines(), b.splitlines()):
            if line_a != line_b:
                raise InvariantViolation(
                    "same seed, different report: first diverging "
                    f"line\n  run 1: {line_a}\n  run 2: {line_b}")
        raise InvariantViolation(
            "same seed, different report lengths "
            f"({len(a)} vs {len(b)} bytes)")
    return first
