"""The OPeNDAP / netCDF-style dataset model.

A :class:`DapDataset` is a set of named N-dimensional variables over
shared dimensions, each with attribute dictionaries, plus global
attributes — the common model of netCDF, HDF and the DAP2 protocol.
Data are held as numpy arrays; CF conventions (coordinate variables,
``units: days since ...`` time encoding, ``_FillValue``) are supported
by helpers here.
"""

from __future__ import annotations

import re
from datetime import datetime, timedelta, timezone
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class DapError(ValueError):
    """Raised for malformed datasets, URLs or constraint expressions."""


class Variable:
    """A named array with dimensions and attributes."""

    def __init__(self, name: str, dims: Sequence[str], data,
                 attributes: Optional[Dict[str, object]] = None):
        self.name = name
        self.dims: Tuple[str, ...] = tuple(dims)
        self.data = np.asarray(data)
        if self.data.ndim != len(self.dims):
            raise DapError(
                f"variable {name!r}: {self.data.ndim} axes but "
                f"{len(self.dims)} dimensions declared"
            )
        self.attributes: Dict[str, object] = dict(attributes or {})

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def copy(self) -> "Variable":
        return Variable(self.name, self.dims, self.data.copy(),
                        dict(self.attributes))

    def __repr__(self) -> str:
        dims = ", ".join(f"{d}={n}" for d, n in zip(self.dims, self.shape))
        return f"<Variable {self.name}({dims}) {self.dtype}>"


class DapDataset:
    """A collection of variables sharing dimensions, plus global attrs."""

    def __init__(self, name: str,
                 attributes: Optional[Dict[str, object]] = None):
        self.name = name
        self.variables: Dict[str, Variable] = {}
        self.attributes: Dict[str, object] = dict(attributes or {})
        #: True when served from an expired cache entry after the
        #: remote fetch failed (degraded mode); see RemoteDataset.fetch.
        self.stale = False

    # -- construction ---------------------------------------------------------
    def add_variable(self, name: str, dims: Sequence[str], data,
                     attributes: Optional[Dict[str, object]] = None
                     ) -> Variable:
        var = Variable(name, dims, data, attributes)
        for dim, size in zip(var.dims, var.shape):
            existing = self.dimensions.get(dim)
            if existing is not None and existing != size:
                raise DapError(
                    f"dimension {dim!r} size conflict: {existing} vs {size}"
                )
        self.variables[name] = var
        return var

    # -- introspection --------------------------------------------------------
    @property
    def dimensions(self) -> Dict[str, int]:
        dims: Dict[str, int] = {}
        for var in self.variables.values():
            for dim, size in zip(var.dims, var.shape):
                dims[dim] = size
        return dims

    def coordinate(self, dim: str) -> Optional[Variable]:
        """The CF coordinate variable for a dimension, if present."""
        var = self.variables.get(dim)
        if var is not None and var.dims == (dim,):
            return var
        return None

    @property
    def nbytes(self) -> int:
        return sum(v.nbytes for v in self.variables.values())

    def __contains__(self, name: str) -> bool:
        return name in self.variables

    def __getitem__(self, name: str) -> Variable:
        try:
            return self.variables[name]
        except KeyError:
            raise DapError(f"no variable {name!r} in {self.name}") from None

    def copy(self, name: Optional[str] = None) -> "DapDataset":
        out = DapDataset(name or self.name, dict(self.attributes))
        out.stale = self.stale
        for var in self.variables.values():
            out.variables[var.name] = var.copy()
        return out

    # -- subsetting ------------------------------------------------------------
    def isel(self, **indexers) -> "DapDataset":
        """Integer/slice subsetting along named dimensions."""
        out = DapDataset(self.name, dict(self.attributes))
        for var in self.variables.values():
            slicer = tuple(
                indexers.get(dim, slice(None)) for dim in var.dims
            )
            data = var.data[slicer]
            new_dims = [
                dim for dim, idx in zip(var.dims, slicer)
                if not isinstance(idx, int)
            ]
            out.variables[var.name] = Variable(
                var.name, new_dims, data, dict(var.attributes)
            )
        return out

    def __repr__(self) -> str:
        dims = ", ".join(f"{d}={n}" for d, n in self.dimensions.items())
        return (
            f"<DapDataset {self.name} [{dims}] "
            f"{len(self.variables)} variables>"
        )


# ---------------------------------------------------------------------------
# CF time handling
# ---------------------------------------------------------------------------

_TIME_UNITS_RE = re.compile(
    r"^(seconds|minutes|hours|days)\s+since\s+(\d{4}-\d{2}-\d{2})"
    r"(?:[T ](\d{2}:\d{2}(?::\d{2})?))?",
    re.IGNORECASE,
)

_UNIT_SECONDS = {
    "seconds": 1.0,
    "minutes": 60.0,
    "hours": 3600.0,
    "days": 86400.0,
}


def parse_time_units(units: str) -> Tuple[float, datetime]:
    """Parse CF time units into (seconds per step, epoch)."""
    m = _TIME_UNITS_RE.match(units.strip())
    if not m:
        raise DapError(f"unsupported time units {units!r}")
    unit, day, clock = m.group(1).lower(), m.group(2), m.group(3)
    epoch = datetime.fromisoformat(day + ("T" + clock if clock else "T00:00"))
    return _UNIT_SECONDS[unit], epoch.replace(tzinfo=timezone.utc)


def decode_time(var: Variable) -> List[datetime]:
    """Decode a CF time coordinate variable into datetimes (UTC)."""
    units = var.attributes.get("units")
    if not units:
        raise DapError(f"time variable {var.name!r} has no units attribute")
    step, epoch = parse_time_units(str(units))
    return [
        epoch + timedelta(seconds=float(v) * step)
        for v in np.ravel(var.data)
    ]


def encode_time(times: Iterable[datetime], units: str) -> np.ndarray:
    """Encode datetimes into a CF numeric time array for *units*."""
    step, epoch = parse_time_units(units)
    values = []
    for t in times:
        if t.tzinfo is None:
            t = t.replace(tzinfo=timezone.utc)
        values.append((t - epoch).total_seconds() / step)
    return np.asarray(values)


def apply_fill_and_scale(var: Variable) -> np.ndarray:
    """Decoded values: mask _FillValue to NaN, apply scale/offset."""
    data = var.data.astype(float)
    fill = var.attributes.get("_FillValue")
    if fill is not None:
        data = np.where(var.data == fill, np.nan, data)
    scale = float(var.attributes.get("scale_factor", 1.0))
    offset = float(var.attributes.get("add_offset", 0.0))
    return data * scale + offset
