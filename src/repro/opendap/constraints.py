"""DAP2 constraint expressions: projections with hyperslabs + selections.

Syntax (the part appended to a dataset URL after ``?``)::

    LAI[0:10][5:2:9],time&time>=100&lat<52.0

- a comma list of projected variables, each with optional per-dimension
  hyperslabs ``[start]``, ``[start:stop]`` or ``[start:stride:stop]``
  (DAP slices are inclusive of ``stop``);
- ``&``-separated selections comparing a 1-D coordinate variable with a
  constant, which restrict every variable sharing that dimension.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .model import DapDataset, DapError, Variable


@dataclass(frozen=True)
class Hyperslab:
    start: int
    stop: int  # inclusive, per the DAP spec
    stride: int = 1

    def to_slice(self) -> slice:
        return slice(self.start, self.stop + 1, self.stride)


@dataclass(frozen=True)
class Projection:
    variable: str
    slabs: Tuple[Hyperslab, ...] = ()


@dataclass(frozen=True)
class Selection:
    variable: str
    op: str  # < <= > >= = !=
    value: float


@dataclass
class ConstraintExpression:
    projections: List[Projection] = field(default_factory=list)
    selections: List[Selection] = field(default_factory=list)

    def canonical(self) -> str:
        """Canonical text form (used as a cache key)."""
        proj = ",".join(
            p.variable
            + "".join(
                f"[{s.start}:{s.stride}:{s.stop}]" for s in p.slabs
            )
            for p in sorted(self.projections, key=lambda p: p.variable)
        )
        sel = "&".join(
            f"{s.variable}{s.op}{s.value:g}"
            for s in sorted(self.selections,
                            key=lambda s: (s.variable, s.op, s.value))
        )
        return proj + ("&" + sel if sel else "")

    @property
    def is_empty(self) -> bool:
        return not self.projections and not self.selections


_SLAB_RE = re.compile(r"\[(\d+)(?::(\d+))?(?::(\d+))?\]")
_PROJ_RE = re.compile(r"^([\w.-]+)((?:\[[^\]]*\])*)$")
_SEL_RE = re.compile(r"^([\w.-]+)(<=|>=|!=|=|<|>)([-+0-9.eE]+)$")


def parse_constraint(text: str) -> ConstraintExpression:
    """Parse a constraint expression string (may be empty)."""
    ce = ConstraintExpression()
    text = text.strip()
    if not text:
        return ce
    parts = text.split("&")
    projection_part = parts[0]
    selection_parts = parts[1:]
    if _SEL_RE.match(projection_part):
        # leading selection with no projection list
        selection_parts.insert(0, projection_part)
        projection_part = ""
    if projection_part:
        for clause in projection_part.split(","):
            m = _PROJ_RE.match(clause.strip())
            if not m:
                raise DapError(f"bad projection clause {clause!r}")
            name, slab_text = m.groups()
            if _SLAB_RE.sub("", slab_text):
                raise DapError(f"bad hyperslab syntax in {clause!r}")
            slabs = []
            for sm in _SLAB_RE.finditer(slab_text):
                a, b, c = sm.groups()
                if c is not None:
                    slabs.append(Hyperslab(int(a), int(c), int(b)))
                elif b is not None:
                    slabs.append(Hyperslab(int(a), int(b)))
                else:
                    slabs.append(Hyperslab(int(a), int(a)))
            ce.projections.append(Projection(name, tuple(slabs)))
    for clause in selection_parts:
        clause = clause.strip()
        if not clause:
            continue
        m = _SEL_RE.match(clause)
        if not m:
            raise DapError(f"bad selection clause {clause!r}")
        name, op, value = m.groups()
        try:
            numeric = float(value)
        except ValueError:
            raise DapError(
                f"selection value {value!r} is not numeric"
            ) from None
        ce.selections.append(Selection(name, op, numeric))
    return ce


_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "!=": np.not_equal,
}


def apply_constraint(dataset: DapDataset,
                     ce: ConstraintExpression) -> DapDataset:
    """Evaluate a constraint expression, returning the subset dataset."""
    # 1. selections restrict dimensions via their coordinate variables
    dim_indices: Dict[str, np.ndarray] = {}
    for sel in ce.selections:
        var = dataset.variables.get(sel.variable)
        if var is None:
            raise DapError(f"selection on unknown variable {sel.variable!r}")
        if len(var.dims) != 1:
            raise DapError(
                f"selections require 1-D coordinate variables, "
                f"{sel.variable!r} has dims {var.dims}"
            )
        mask = _OPS[sel.op](var.data.astype(float), sel.value)
        indices = np.nonzero(mask)[0]
        dim = var.dims[0]
        if dim in dim_indices:
            dim_indices[dim] = np.intersect1d(dim_indices[dim], indices)
        else:
            dim_indices[dim] = indices

    # 2. choose projected variables (all when no projection list given)
    if ce.projections:
        names = [p.variable for p in ce.projections]
        missing = [n for n in names if n not in dataset.variables]
        if missing:
            raise DapError(f"projection of unknown variables {missing}")
        # Projected data variables drag their coordinate variables along,
        # like a netCDF-aware DAP server does.
        keep = list(names)
        for n in names:
            for dim in dataset.variables[n].dims:
                if dim in dataset.variables and dim not in keep:
                    keep.append(dim)
        slab_map = {p.variable: p.slabs for p in ce.projections}
        # A hyperslab on a data variable also slices the coordinate
        # variables of the affected dimensions (netCDF-aware behaviour).
        for p in ce.projections:
            var = dataset.variables[p.variable]
            for dim, slab in zip(var.dims, p.slabs):
                if dim in dataset.variables and dim not in slab_map:
                    slab_map[dim] = (slab,)
    else:
        keep = list(dataset.variables)
        slab_map = {}

    out = DapDataset(dataset.name, dict(dataset.attributes))
    for name in keep:
        var = dataset.variables[name]
        data = var.data
        slabs = slab_map.get(name, ())
        if slabs:
            if len(slabs) != len(var.dims):
                raise DapError(
                    f"{name!r}: {len(slabs)} hyperslabs for "
                    f"{len(var.dims)} dimensions"
                )
            slicer = tuple(s.to_slice() for s in slabs)
            data = data[slicer]
        else:
            # apply selection-derived dimension restrictions
            for axis, dim in enumerate(var.dims):
                if dim in dim_indices:
                    data = np.take(data, dim_indices[dim], axis=axis)
        out.variables[name] = Variable(
            name, var.dims, data, dict(var.attributes)
        )
    return out
