"""NcML (NetCDF Markup Language) rendering, parsing and aggregation.

The paper uses NcML in two ways:

- the NcML *service* merges a dataset's DAS and DDS into one XML
  document (:func:`render_ncml` / :func:`parse_ncml`);
- each VITO dataset carries a netCDF *NcML aggregation* that joins the
  per-date files along the time dimension and is updated automatically
  as new dates arrive (:func:`aggregate_join_existing`), and the CMS
  uses NcML to blend post-hoc metadata over non-compliant sources
  (:func:`apply_ncml_overrides`).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Sequence
from xml.sax.saxutils import escape, quoteattr

import numpy as np

from .dds import dap_type
from .model import DapDataset, DapError, Variable

NCML_NS = "http://www.unidata.ucar.edu/namespaces/netcdf/ncml-2.2"


def render_ncml(dataset: DapDataset, location: str = "") -> str:
    """Render a dataset's structure+attributes as an NcML document."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<netcdf xmlns="{NCML_NS}"'
        + (f" location={quoteattr(location)}" if location else "")
        + ">",
    ]
    for dim, size in dataset.dimensions.items():
        lines.append(f'  <dimension name={quoteattr(dim)} length="{size}"/>')
    for key, value in dataset.attributes.items():
        lines.append(_attr_xml(key, value, indent="  "))
    for var in dataset.variables.values():
        shape = " ".join(var.dims)
        lines.append(
            f"  <variable name={quoteattr(var.name)} "
            f"shape={quoteattr(shape)} "
            f"type={quoteattr(dap_type(var.dtype).lower())}>"
        )
        for key, value in var.attributes.items():
            lines.append(_attr_xml(key, value, indent="    "))
        lines.append("  </variable>")
    lines.append("</netcdf>")
    return "\n".join(lines) + "\n"


def _attr_xml(key: str, value, indent: str) -> str:
    attr_type = (
        "int" if isinstance(value, int) and not isinstance(value, bool)
        else "double" if isinstance(value, float)
        else "String"
    )
    return (
        f"{indent}<attribute name={quoteattr(key)} "
        f"type={quoteattr(attr_type)} value={quoteattr(str(value))}/>"
    )


def parse_ncml(text: str) -> Dict:
    """Parse an NcML document into a structural description dict."""
    root = ET.fromstring(text)
    if not root.tag.endswith("netcdf"):
        raise DapError("not an NcML document")

    def local(tag: str) -> str:
        return tag.rsplit("}", 1)[-1]

    out = {
        "location": root.get("location", ""),
        "dimensions": {},
        "attributes": {},
        "variables": {},
    }
    for child in root:
        tag = local(child.tag)
        if tag == "dimension":
            out["dimensions"][child.get("name")] = int(child.get("length"))
        elif tag == "attribute":
            out["attributes"][child.get("name")] = _parse_attr(child)
        elif tag == "variable":
            var_entry = {
                "shape": (child.get("shape") or "").split(),
                "type": child.get("type", ""),
                "attributes": {},
            }
            for sub in child:
                if local(sub.tag) == "attribute":
                    var_entry["attributes"][sub.get("name")] = _parse_attr(sub)
            out["variables"][child.get("name")] = var_entry
    return out


def _parse_attr(element) -> object:
    value = element.get("value", "")
    attr_type = element.get("type", "String")
    if attr_type == "int":
        return int(value)
    if attr_type == "double":
        return float(value)
    return value


def aggregate_join_existing(datasets: Sequence[DapDataset],
                            dim: str = "time",
                            name: str = "") -> DapDataset:
    """Join per-date datasets along an existing dimension.

    The VITO deployment exposes each product as one aggregated dataset
    that grows as new dates are published; this is that aggregation.
    """
    if not datasets:
        raise DapError("nothing to aggregate")
    first = datasets[0]
    out = DapDataset(name or first.name, dict(first.attributes))
    for var_name, first_var in first.variables.items():
        parts = []
        for ds in datasets:
            if var_name not in ds.variables:
                raise DapError(
                    f"aggregation member missing variable {var_name!r}"
                )
            parts.append(ds.variables[var_name].data)
        if dim in first_var.dims:
            axis = first_var.dims.index(dim)
            data = np.concatenate(parts, axis=axis)
        else:
            data = first_var.data
        out.variables[var_name] = Variable(
            var_name, first_var.dims, data, dict(first_var.attributes)
        )
    return out


def apply_ncml_overrides(dataset: DapDataset, ncml_text: str) -> DapDataset:
    """Blend NcML-declared attributes over a dataset (CMS post-hoc fix).

    Source values win only where NcML does not redefine them — NcML is
    the modifier document, per the Unidata semantics.
    """
    overrides = parse_ncml(ncml_text)
    out = dataset.copy()
    out.attributes.update(overrides["attributes"])
    for var_name, entry in overrides["variables"].items():
        if var_name in out.variables:
            out.variables[var_name].attributes.update(entry["attributes"])
    return out
