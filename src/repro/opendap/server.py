"""In-process OPeNDAP server with a network latency model.

The server mounts :class:`DapDataset` objects (or callables producing
them) under URL paths and answers the DAP2 service endpoints:

- ``<path>.dds``  — structure
- ``<path>.dds?<ce>`` — structure of the constrained subset
- ``<path>.das``  — attributes
- ``<path>.dods?<ce>`` — binary data for the constrained subset
- ``<path>.ncml`` — NcML view (structure + attributes as XML)

Because everything runs in one process, network cost is *simulated*: a
configurable per-request latency plus per-byte transfer time, charged by
sleeping (benchmarks) or by accounting only (tests). This is the
substitution for the VITO-hosted Hyrax deployment described in the
paper; the protocol surface is what the SDL and the Ontop-spatial
adapter consume.
"""

from __future__ import annotations

import fnmatch
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from .constraints import apply_constraint, parse_constraint
from .das import render_das
from .dds import render_dds
from .dods import encode_dods
from .model import DapDataset, DapError

DatasetSource = Union[DapDataset, Callable[[], DapDataset]]


class LatencyModel:
    """Simulated network cost: base round-trip + throughput-limited body."""

    def __init__(self, base_s: float = 0.0, per_mb_s: float = 0.0,
                 sleep: bool = True):
        self.base_s = base_s
        self.per_mb_s = per_mb_s
        self.sleep = sleep
        self.total_simulated_s = 0.0
        self.request_count = 0
        self.bytes_served = 0

    def charge(self, nbytes: int) -> float:
        cost = self.base_s + (nbytes / 1_000_000.0) * self.per_mb_s
        self.request_count += 1
        self.bytes_served += nbytes
        self.total_simulated_s += cost
        if self.sleep and cost > 0:
            time.sleep(cost)
        return cost

    def reset(self) -> None:
        self.total_simulated_s = 0.0
        self.request_count = 0
        self.bytes_served = 0


class DapServer:
    """Serves mounted datasets over the DAP2 protocol surface."""

    def __init__(self, host: str,
                 latency: Optional[LatencyModel] = None):
        self.host = host
        self.latency = latency or LatencyModel(sleep=False)
        self._mounts: Dict[str, DatasetSource] = {}
        self.access_log: List[Tuple[str, str]] = []

    # -- catalog ----------------------------------------------------------
    def mount(self, path: str, source: DatasetSource) -> None:
        """Mount a dataset (or a zero-arg factory) under *path*."""
        self._mounts[path.strip("/")] = source

    def unmount(self, path: str) -> None:
        self._mounts.pop(path.strip("/"), None)

    def paths(self, pattern: str = "*") -> List[str]:
        return sorted(
            p for p in self._mounts if fnmatch.fnmatch(p, pattern)
        )

    def dataset(self, path: str) -> DapDataset:
        source = self._mounts.get(path.strip("/"))
        if source is None:
            raise DapError(f"no dataset mounted at {path!r} on {self.host}")
        return source() if callable(source) else source

    # -- protocol ----------------------------------------------------------
    def request(self, path_and_query: str) -> bytes:
        """Handle one DAP request; returns the raw response body."""
        path, __, query = path_and_query.partition("?")
        path = path.strip("/")
        for suffix in (".dds", ".das", ".dods", ".ascii", ".ncml"):
            if path.endswith(suffix):
                base = path[: -len(suffix)]
                service = suffix[1:]
                break
        else:
            raise DapError(
                f"request {path!r} must end in .dds/.das/.dods/.ascii/.ncml"
            )
        dataset = self.dataset(base)
        self.access_log.append((base, service))
        ce = parse_constraint(query)
        if service == "dds":
            subset = dataset if ce.is_empty else apply_constraint(dataset, ce)
            body = render_dds(subset).encode("utf-8")
        elif service == "das":
            body = render_das(dataset).encode("utf-8")
        elif service == "dods":
            subset = dataset if ce.is_empty else apply_constraint(dataset, ce)
            body = encode_dods(subset)
        elif service == "ascii":
            subset = dataset if ce.is_empty else apply_constraint(dataset, ce)
            body = _render_ascii(subset).encode("utf-8")
        else:  # ncml
            from .ncml import render_ncml

            body = render_ncml(dataset).encode("utf-8")
        self.latency.charge(len(body))
        return body

    def url(self, path: str) -> str:
        return f"dap://{self.host}/{path.strip('/')}"

    def catalog_xml(self) -> str:
        """A THREDDS-style catalog of every mounted dataset.

        Real deployments expose ``catalog.xml`` so harvesters (our CMS,
        the SDL) can discover dataset paths without guessing.
        """
        from xml.sax.saxutils import quoteattr

        lines = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            f'<catalog name={quoteattr(self.host)} '
            'xmlns="http://www.unidata.ucar.edu/namespaces/thredds/'
            'InvCatalog/v1.0">',
            '  <service name="dap" serviceType="OPeNDAP" base="/"/>',
        ]
        for path in self.paths():
            lines.append(
                f"  <dataset name={quoteattr(path.rsplit('/', 1)[-1])} "
                f"urlPath={quoteattr(path)}/>"
            )
        lines.append("</catalog>")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"<DapServer {self.host} ({len(self._mounts)} datasets)>"


def _render_ascii(dataset: DapDataset) -> str:
    lines = [f"Dataset: {dataset.name}"]
    for var in dataset.variables.values():
        lines.append(f"{var.name}, shape={var.shape}")
        flat = var.data.ravel()
        preview = ", ".join(str(v) for v in flat[:20])
        if flat.size > 20:
            preview += ", ..."
        lines.append(preview)
    return "\n".join(lines) + "\n"


class ServerRegistry:
    """Resolves ``dap://host/path`` URLs to in-process servers.

    Stands in for DNS + HTTP: clients look servers up by host name.
    """

    def __init__(self):
        self._servers: Dict[str, DapServer] = {}

    def register(self, server: DapServer) -> DapServer:
        self._servers[server.host] = server
        return server

    def wrap(self, host: str, wrapper) -> DapServer:
        """Replace a registered server with ``wrapper(server)`` in place.

        This is how fault-injection (or any other request middleware)
        slides between clients and a server without re-mounting data::

            registry.wrap("vito.test",
                          lambda s: FaultyServer(s, schedule))
        """
        server = self._servers.get(host)
        if server is None:
            raise DapError(f"unknown DAP host {host!r}")
        wrapped = wrapper(server)
        self._servers[host] = wrapped
        return wrapped

    def resolve(self, url: str) -> Tuple[DapServer, str]:
        """Split a dap:// URL into (server, path-with-query)."""
        if not url.startswith("dap://"):
            raise DapError(f"not a dap:// URL: {url!r}")
        rest = url[len("dap://"):]
        host, __, path = rest.partition("/")
        server = self._servers.get(host)
        if server is None:
            raise DapError(f"unknown DAP host {host!r}")
        return server, path

    def clear(self) -> None:
        self._servers.clear()


#: Default process-wide registry (tests may build private ones).
DEFAULT_REGISTRY = ServerRegistry()
