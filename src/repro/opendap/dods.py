"""Binary data encoding for DAP responses.

Real DAP2 sends XDR-encoded binary after a DDS header; we keep the same
shape — a structured header followed by raw array bytes — so transfer
sizes are realistic and measurable, which the latency model uses to
simulate network cost.
"""

from __future__ import annotations

import json
import struct
from typing import Tuple

import numpy as np

from .model import DapDataset, DapError, Variable

_MAGIC = b"DODS"


def encode_dods(dataset: DapDataset) -> bytes:
    """Encode a dataset into the wire format."""
    header = {
        "name": dataset.name,
        "attributes": dataset.attributes,
        "variables": [],
    }
    payloads = []
    for var in dataset.variables.values():
        data = var.data
        if data.dtype == object:
            blob = json.dumps([str(x) for x in data.ravel()]).encode("utf-8")
            dtype_name = "string"
        else:
            blob = np.ascontiguousarray(data).tobytes()
            dtype_name = data.dtype.name
        header["variables"].append(
            {
                "name": var.name,
                "dims": list(var.dims),
                "shape": list(var.shape),
                "dtype": dtype_name,
                "attributes": var.attributes,
                "nbytes": len(blob),
            }
        )
        payloads.append(blob)
    header_bytes = json.dumps(header).encode("utf-8")
    return (
        _MAGIC
        + struct.pack(">I", len(header_bytes))
        + header_bytes
        + b"".join(payloads)
    )


def decode_dods(blob: bytes) -> DapDataset:
    """Decode wire bytes back into a dataset."""
    if blob[:4] != _MAGIC:
        raise DapError("not a DODS payload")
    (header_len,) = struct.unpack(">I", blob[4:8])
    header = json.loads(blob[8: 8 + header_len].decode("utf-8"))
    dataset = DapDataset(header["name"], header.get("attributes", {}))
    offset = 8 + header_len
    for meta in header["variables"]:
        nbytes = meta["nbytes"]
        raw = blob[offset: offset + nbytes]
        offset += nbytes
        if meta["dtype"] == "string":
            values = json.loads(raw.decode("utf-8"))
            data = np.array(values, dtype=object).reshape(meta["shape"])
        else:
            data = np.frombuffer(
                raw, dtype=np.dtype(meta["dtype"])
            ).reshape(meta["shape"]).copy()
        dataset.variables[meta["name"]] = Variable(
            meta["name"], meta["dims"], data, meta.get("attributes", {})
        )
    return dataset
