"""NetcdfSubset and WCS-style coverage services.

VITO exposes three services per dataset (Section 3.1): OPeNDAP, the
NetcdfSubset service and the NCML service. NetcdfSubset subsets by
*coordinates* (bbox + time window) rather than array indices.

The :class:`WebCoverageService` implements the OGC WCS access pattern
the paper compares against in Section 5 — bbox-only subsetting with no
index-aligned caching — so experiment E11 can contrast cache behaviour.
"""

from __future__ import annotations

from datetime import datetime
from typing import Dict, Optional, Tuple

import numpy as np

from .model import DapDataset, DapError, Variable, decode_time

BBox = Tuple[float, float, float, float]


def subset_by_coords(dataset: DapDataset,
                     bbox: Optional[BBox] = None,
                     time_range: Optional[Tuple[datetime, datetime]] = None,
                     lon_var: str = "lon",
                     lat_var: str = "lat",
                     time_var: str = "time") -> DapDataset:
    """Coordinate-space subsetting (the NetcdfSubset service)."""
    indexers: Dict[str, np.ndarray] = {}
    if bbox is not None:
        minx, miny, maxx, maxy = bbox
        lon = dataset[lon_var].data.astype(float)
        lat = dataset[lat_var].data.astype(float)
        indexers[lon_var] = np.nonzero((lon >= minx) & (lon <= maxx))[0]
        indexers[lat_var] = np.nonzero((lat >= miny) & (lat <= maxy))[0]
    if time_range is not None:
        start, end = time_range
        times = decode_time(dataset[time_var])
        mask = [start <= t <= end for t in times]
        indexers[time_var] = np.nonzero(mask)[0]

    out = DapDataset(dataset.name, dict(dataset.attributes))
    for var in dataset.variables.values():
        data = var.data
        for axis, dim in enumerate(var.dims):
            if dim in indexers:
                data = np.take(data, indexers[dim], axis=axis)
        out.variables[var.name] = Variable(
            var.name, var.dims, data, dict(var.attributes)
        )
    return out


def index_window_for_bbox(dataset: DapDataset, bbox: BBox,
                          lon_var: str = "lon",
                          lat_var: str = "lat"
                          ) -> Dict[str, Tuple[int, int]]:
    """Map a bbox onto inclusive index windows over lon/lat dimensions.

    This is the key to OPeNDAP's superior caching (Section 5): requests
    are expressed in array indices, which repeat exactly across panning
    viewports, unlike free-form bbox floats.
    """
    minx, miny, maxx, maxy = bbox
    lon = dataset[lon_var].data.astype(float)
    lat = dataset[lat_var].data.astype(float)
    # Snap to grid cells: a cell is selected when its extent (centre ±
    # half spacing) overlaps the bbox. This makes jittered viewports map
    # to identical index windows — the property that gives DAP its cache
    # advantage over bbox-keyed WCS.
    half_lon = (abs(lon[1] - lon[0]) / 2.0) if lon.size > 1 else 0.0
    half_lat = (abs(lat[1] - lat[0]) / 2.0) if lat.size > 1 else 0.0
    lon_idx = np.nonzero((lon >= minx - half_lon) & (lon <= maxx + half_lon))[0]
    lat_idx = np.nonzero((lat >= miny - half_lat) & (lat <= maxy + half_lat))[0]
    if lon_idx.size == 0 or lat_idx.size == 0:
        raise DapError(f"bbox {bbox} selects no grid cells")
    return {
        lon_var: (int(lon_idx[0]), int(lon_idx[-1])),
        lat_var: (int(lat_idx[0]), int(lat_idx[-1])),
    }


class WebCoverageService:
    """A WCS-style facade: coverage requests keyed by raw bbox.

    Caching is bbox-keyed; two viewports differing by a fraction of a
    pixel miss the cache even when they cover the same grid cells.
    """

    def __init__(self, dataset: DapDataset):
        self.dataset = dataset
        self._cache: Dict[Tuple, DapDataset] = {}
        self.hits = 0
        self.misses = 0

    def get_coverage(self, variable: str, bbox: BBox) -> DapDataset:
        key = (variable, bbox)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        subset = subset_by_coords(self.dataset, bbox=bbox)
        result = DapDataset(self.dataset.name, dict(self.dataset.attributes))
        for name in (variable, "lon", "lat", "time"):
            if name in subset:
                result.variables[name] = subset[name]
        self._cache[key] = result
        return result

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
