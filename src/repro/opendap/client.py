"""OPeNDAP client: open a remote dataset, browse structure, fetch slices.

The client mirrors the pydap/netCDF4 usage pattern the paper's SDL
builds on: ``open_url`` fetches only DDS + DAS; data moves only when a
constrained ``.dods`` request is issued. An optional client-side cache
keyed on the *canonical constraint expression* reproduces the paper's
observation that DAP caching by array indices beats bbox-keyed WCS
caching for panning viewports (Section 5).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from .constraints import parse_constraint
from .das import apply_das, parse_das
from .dds import parse_dds
from .dods import decode_dods
from .model import DapDataset, DapError, decode_time
from .server import DEFAULT_REGISTRY, ServerRegistry


class DapCache:
    """A TTL cache for DAP responses keyed by canonical constraint."""

    def __init__(self, ttl_s: float = 600.0,
                 clock=time.monotonic):
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: Dict[Tuple[str, str], Tuple[float, bytes]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, url: str, constraint: str) -> Optional[bytes]:
        key = (url, constraint)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        stamp, body = entry
        if self._clock() - stamp > self.ttl_s:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return body

    def put(self, url: str, constraint: str, body: bytes) -> None:
        self._entries[(url, constraint)] = (self._clock(), body)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class RemoteDataset:
    """A lazy proxy for one dataset on a DAP server."""

    def __init__(self, url: str, registry: ServerRegistry,
                 cache: Optional[DapCache] = None):
        self.url = url.rstrip("/")
        self._registry = registry
        self.cache = cache
        self._server, self._path = registry.resolve(self.url)
        dds_text = self._raw_request(self._path + ".dds").decode("utf-8")
        self.name, self._structure = parse_dds(dds_text)
        das_text = self._raw_request(self._path + ".das").decode("utf-8")
        self._attributes = parse_das(das_text)

    # -- metadata ----------------------------------------------------------
    @property
    def variable_names(self) -> List[str]:
        return [v["name"] for v in self._structure]

    def dims_of(self, variable: str) -> List[Tuple[str, int]]:
        for v in self._structure:
            if v["name"] == variable:
                return list(v["dims"])
        raise DapError(f"no variable {variable!r} at {self.url}")

    @property
    def attributes(self) -> Dict[str, Dict[str, object]]:
        """Per-container attributes (``NC_GLOBAL`` holds globals)."""
        return self._attributes

    def global_attributes(self) -> Dict[str, object]:
        return dict(self._attributes.get("NC_GLOBAL", {}))

    # -- data -----------------------------------------------------------------
    def _raw_request(self, path_and_query: str) -> bytes:
        return self._server.request(path_and_query)

    def fetch(self, constraint: str = "") -> DapDataset:
        """Fetch (a subset of) the data as a concrete dataset."""
        canonical = parse_constraint(constraint).canonical()
        if self.cache is not None:
            body = self.cache.get(self.url, canonical)
            if body is not None:
                return self._decode(body)
        query = ("?" + canonical) if canonical else ""
        body = self._raw_request(self._path + ".dods" + query)
        if self.cache is not None:
            self.cache.put(self.url, canonical, body)
        return self._decode(body)

    def _decode(self, body: bytes) -> DapDataset:
        dataset = decode_dods(body)
        apply_das(dataset, self._attributes)
        return dataset

    def times(self, time_var: str = "time") -> List:
        """Decode the time coordinate (fetching only that variable)."""
        subset = self.fetch(time_var)
        return decode_time(subset[time_var])

    def __repr__(self) -> str:
        return f"<RemoteDataset {self.url} vars={self.variable_names}>"


def open_url(url: str, registry: Optional[ServerRegistry] = None,
             cache: Optional[DapCache] = None) -> RemoteDataset:
    """Open a ``dap://host/path`` URL against a server registry."""
    return RemoteDataset(url, registry or DEFAULT_REGISTRY, cache=cache)
