"""OPeNDAP client: open a remote dataset, browse structure, fetch slices.

The client mirrors the pydap/netCDF4 usage pattern the paper's SDL
builds on: ``open_url`` fetches only DDS + DAS; data moves only when a
constrained ``.dods`` request is issued. An optional client-side cache
keyed on the *canonical constraint expression* reproduces the paper's
observation that DAP caching by array indices beats bbox-keyed WCS
caching for panning viewports (Section 5).

Remote access is resilient: a :class:`~repro.resilience.RetryPolicy`
(optionally with a circuit breaker) wraps every request, and when all
retries fail the cache can degrade to serving an *expired* entry,
flagged ``stale=True`` on the returned dataset.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..resilience import CircuitBreaker, ResilienceStats, RetryPolicy
from .constraints import parse_constraint
from .das import apply_das, parse_das
from .dds import parse_dds
from .dods import decode_dods
from .model import DapDataset, DapError, decode_time
from .server import DEFAULT_REGISTRY, ServerRegistry


class DapCache:
    """A thread-safe LRU/TTL cache for DAP responses.

    Keys are ``(url, canonical constraint)``. ``max_entries`` bounds
    the size (least-recently-used entries are evicted on ``put``), so a
    long-running SDL session cannot grow it without limit. With
    ``serve_stale=True`` expired entries are *kept*: :meth:`get` still
    reports a miss, but :meth:`get_stale` can hand the old body to a
    caller whose refetch just failed (graceful degradation). When that
    happens the request is *reclassified*: the provisional miss is
    rolled back and counted as a ``stale_hit`` instead, so one logical
    request contributes to exactly one counter. A successful refetch
    (:meth:`put`) confirms the miss and clears the reclassification
    window.
    """

    def __init__(self, ttl_s: float = 600.0,
                 clock=time.monotonic,
                 max_entries: Optional[int] = None,
                 serve_stale: bool = False):
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be >= 0 (or None)")
        self.ttl_s = ttl_s
        self._clock = clock
        self.max_entries = max_entries
        self.serve_stale = serve_stale
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple[str, str], Tuple[float, bytes]]" \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.evictions = 0
        # Keys whose last get() missed on an *expired-but-kept* entry;
        # a get_stale() on such a key reclassifies that miss as a
        # stale_hit, a put() confirms the miss as a real refetch.
        self._pending_stale: set = set()

    def get(self, url: str, constraint: str) -> Optional[bytes]:
        key = (url, constraint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stamp, body = entry
            if self._clock() - stamp > self.ttl_s:
                if not self.serve_stale:
                    del self._entries[key]
                else:
                    self._pending_stale.add(key)
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return body

    def get_stale(self, url: str, constraint: str) -> Optional[bytes]:
        """An entry's body regardless of age (None if never cached).

        Serving a key whose preceding :meth:`get` missed on an expired
        entry reclassifies that miss as a ``stale_hit`` — the request
        was ultimately satisfied from cache, just with old data.
        """
        with self._lock:
            entry = self._entries.get(key := (url, constraint))
            if entry is None:
                return None
            self._entries.move_to_end(key)
            if key in self._pending_stale:
                self._pending_stale.discard(key)
                self.misses -= 1
            self.stale_hits += 1
            return entry[1]

    def put(self, url: str, constraint: str, body: bytes) -> None:
        key = (url, constraint)
        with self._lock:
            self._pending_stale.discard(key)
            self._entries[key] = (self._clock(), body)
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    evicted, __ = self._entries.popitem(last=False)
                    self._pending_stale.discard(evicted)
                    self.evictions += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.stale_hits
        return (self.hits + self.stale_hits) / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pending_stale.clear()
            self.hits = 0
            self.misses = 0
            self.stale_hits = 0
            self.evictions = 0


class _NullSpan:
    """A no-op stand-in so untraced code paths need no branching."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def record(self, key: str, n: int = 1) -> None:
        pass


def _null_span() -> _NullSpan:
    return _NULL_SPAN


_NULL_SPAN = _NullSpan()


class RemoteDataset:
    """A lazy proxy for one dataset on a DAP server."""

    def __init__(self, url: str, registry: ServerRegistry,
                 cache: Optional[DapCache] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 stats: Optional[ResilienceStats] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 tracer=None):
        self.url = url.rstrip("/")
        self._registry = registry
        self.cache = cache
        self.retry_policy = retry_policy
        self.stats = stats if stats is not None else ResilienceStats()
        self.breaker = breaker
        self.tracer = tracer
        self._server, self._path = registry.resolve(self.url)
        # Request + decode + parse retry as one unit, so a corrupted
        # metadata payload is re-requested like any failed attempt.
        with self._maybe_span("dap.metadata", url=self.url):
            self.name, self._structure = self._run_resilient(
                lambda: parse_dds(
                    self._server.request(self._path + ".dds").decode("utf-8")
                )
            )
            self._attributes = self._run_resilient(
                lambda: parse_das(
                    self._server.request(self._path + ".das").decode("utf-8")
                )
            )

    # -- metadata ----------------------------------------------------------
    @property
    def variable_names(self) -> List[str]:
        return [v["name"] for v in self._structure]

    def dims_of(self, variable: str) -> List[Tuple[str, int]]:
        for v in self._structure:
            if v["name"] == variable:
                return list(v["dims"])
        raise DapError(f"no variable {variable!r} at {self.url}")

    @property
    def attributes(self) -> Dict[str, Dict[str, object]]:
        """Per-container attributes (``NC_GLOBAL`` holds globals)."""
        return self._attributes

    def global_attributes(self) -> Dict[str, object]:
        return dict(self._attributes.get("NC_GLOBAL", {}))

    # -- data -----------------------------------------------------------------
    def _maybe_span(self, name: str, tracer=None, **attributes):
        # `tracer` overrides the dataset's own (parallel prefetch hands
        # each task a private tracer; the pool merges the spans).
        tracer = self.tracer if tracer is None else tracer
        if tracer is None:
            return _null_span()
        return tracer.span(name, **attributes)

    def _run_resilient(self, fn, budget=None, tracer=None):
        if self.retry_policy is None:
            return fn()
        budget_s = budget.remaining_s() if budget is not None else None
        return self.retry_policy.run(fn, stats=self.stats,
                                     breaker=self.breaker,
                                     budget_s=budget_s,
                                     tracer=(self.tracer if tracer is None
                                             else tracer),
                                     retry_budget=getattr(
                                         budget, "retry_budget", None))

    def _raw_request(self, path_and_query: str) -> bytes:
        return self._run_resilient(
            lambda: self._server.request(path_and_query)
        )

    def fetch(self, constraint: str = "", budget=None,
              tracer=None) -> DapDataset:
        """Fetch (a subset of) the data as a concrete dataset.

        One *logical* request: the retry policy re-issues it on
        failure, including on a corrupted payload (decoding happens
        inside the retried unit). If every attempt fails and the cache
        holds an expired entry for this constraint, that body is served
        instead with ``stale=True`` set on the result.

        ``budget`` (a :class:`~repro.governance.QueryBudget`) charges
        the fetch against the owning query and caps retries at the
        query's remaining deadline. Cache hits are not charged — they
        cost the server nothing. ``tracer`` overrides the dataset's
        tracer for this call (used by parallel prefetch tasks, which
        must not touch the shared active-span stack).
        """
        canonical = parse_constraint(constraint).canonical()
        with self._maybe_span("dap.fetch", tracer=tracer, url=self.url,
                              constraint=canonical) as span:
            if self.cache is not None:
                body = self.cache.get(self.url, canonical)
                if body is not None:
                    span.record("cache_hits")
                    return self._decode(body)
            query = ("?" + canonical) if canonical else ""
            target = self._path + ".dods" + query
            if budget is not None:
                budget.charge_fetch()

            def attempt() -> Tuple[bytes, DapDataset]:
                raw = self._server.request(target)
                return raw, self._decode(raw)

            try:
                body, dataset = self._run_resilient(attempt, budget=budget,
                                                    tracer=tracer)
            except Exception:
                if self.cache is not None:
                    stale = self.cache.get_stale(self.url, canonical)
                    if stale is not None:
                        self.stats.stale_serves += 1
                        span.record("stale_serves")
                        degraded = self._decode(stale)
                        degraded.stale = True
                        return degraded
                raise
            span.record("fetches")
            if self.cache is not None:
                self.cache.put(self.url, canonical, body)
            return dataset

    def _decode(self, body: bytes) -> DapDataset:
        dataset = decode_dods(body)
        apply_das(dataset, self._attributes)
        return dataset

    def times(self, time_var: str = "time") -> List:
        """Decode the time coordinate (fetching only that variable)."""
        subset = self.fetch(time_var)
        return decode_time(subset[time_var])

    def __repr__(self) -> str:
        return f"<RemoteDataset {self.url} vars={self.variable_names}>"


def open_url(url: str, registry: Optional[ServerRegistry] = None,
             cache: Optional[DapCache] = None,
             retry_policy: Optional[RetryPolicy] = None,
             stats: Optional[ResilienceStats] = None,
             breaker: Optional[CircuitBreaker] = None,
             tracer=None) -> RemoteDataset:
    """Open a ``dap://host/path`` URL against a server registry."""
    return RemoteDataset(url, registry or DEFAULT_REGISTRY, cache=cache,
                         retry_policy=retry_policy, stats=stats,
                         breaker=breaker, tracer=tracer)
