"""DDS (Dataset Descriptor Structure) rendering and parsing.

The DDS describes a dataset's structure: the variables, their types and
the relationships between their dimensions — exactly as served by a DAP2
server at ``<dataset-url>.dds``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

import numpy as np

from .model import DapDataset, DapError

_NUMPY_TO_DAP = {
    "int8": "Byte",
    "uint8": "Byte",
    "int16": "Int16",
    "uint16": "UInt16",
    "int32": "Int32",
    "uint32": "UInt32",
    "int64": "Int32",  # DAP2 has no 64-bit integer
    "float32": "Float32",
    "float64": "Float64",
}

_DAP_TO_NUMPY = {
    "Byte": "uint8",
    "Int16": "int16",
    "UInt16": "uint16",
    "Int32": "int32",
    "UInt32": "uint32",
    "Float32": "float32",
    "Float64": "float64",
    "String": "object",
}


def dap_type(dtype: np.dtype) -> str:
    name = np.dtype(dtype).name
    if name.startswith("str") or name == "object":
        return "String"
    try:
        return _NUMPY_TO_DAP[name]
    except KeyError:
        raise DapError(f"no DAP type for dtype {name!r}") from None


def render_dds(dataset: DapDataset) -> str:
    """Render the DDS text for a dataset (grids flattened to arrays)."""
    lines = ["Dataset {"]
    for var in dataset.variables.values():
        dims = "".join(
            f"[{dim} = {size}]" for dim, size in zip(var.dims, var.shape)
        )
        lines.append(f"    {dap_type(var.dtype)} {var.name}{dims};")
    lines.append(f"}} {dataset.name};")
    return "\n".join(lines) + "\n"


_VAR_RE = re.compile(
    r"^\s*(?P<type>\w+)\s+(?P<name>[\w.-]+)(?P<dims>(?:\[[^\]]*\])*)\s*;\s*$"
)
_DIM_RE = re.compile(r"\[\s*(?:(?P<dim>[\w.-]+)\s*=\s*)?(?P<size>\d+)\s*\]")


def parse_dds(text: str) -> Tuple[str, List[Dict]]:
    """Parse DDS text into (dataset name, variable descriptors).

    Each descriptor is ``{"name", "dtype", "dims": [(dim, size), ...]}``.
    """
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines or not lines[0].strip().startswith("Dataset"):
        raise DapError("not a DDS document")
    m = re.match(r"^\}\s*([\w.-]+)\s*;", lines[-1].strip())
    if not m:
        raise DapError("DDS missing dataset name")
    name = m.group(1)
    variables = []
    for line in lines[1:-1]:
        vm = _VAR_RE.match(line)
        if not vm:
            raise DapError(f"bad DDS variable line: {line!r}")
        dims = [
            (dm.group("dim") or f"dim{i}", int(dm.group("size")))
            for i, dm in enumerate(_DIM_RE.finditer(vm.group("dims")))
        ]
        dap = vm.group("type")
        if dap not in _DAP_TO_NUMPY:
            raise DapError(f"unknown DAP type {dap!r}")
        variables.append(
            {
                "name": vm.group("name"),
                "dtype": np.dtype(_DAP_TO_NUMPY[dap])
                if dap != "String" else np.dtype(object),
                "dims": dims,
            }
        )
    return name, variables
