"""DAS (Dataset Attribute Structure) rendering and parsing.

The DAS carries per-variable and global attributes — served at
``<dataset-url>.das``. Global attributes live in the conventional
``NC_GLOBAL`` container.
"""

from __future__ import annotations

import re
from typing import Dict, Tuple

from .model import DapDataset, DapError


def _attr_type(value) -> str:
    if isinstance(value, bool):
        return "String"
    if isinstance(value, int):
        return "Int32"
    if isinstance(value, float):
        return "Float64"
    return "String"


def _attr_text(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, bool):
        return f'"{str(value).lower()}"'
    return repr(value) if isinstance(value, float) else str(value)


def render_das(dataset: DapDataset) -> str:
    """Render the DAS text for a dataset."""
    lines = ["Attributes {"]
    for var in dataset.variables.values():
        lines.append(f"    {var.name} {{")
        for key, value in var.attributes.items():
            lines.append(
                f"        {_attr_type(value)} {key} {_attr_text(value)};"
            )
        lines.append("    }")
    lines.append("    NC_GLOBAL {")
    for key, value in dataset.attributes.items():
        lines.append(
            f"        {_attr_type(value)} {key} {_attr_text(value)};"
        )
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


_CONTAINER_RE = re.compile(r"^\s*([\w.-]+)\s*\{\s*$")
_ATTR_RE = re.compile(
    r'^\s*(\w+)\s+([\w.:-]+)\s+(".*"|[-+\w.eE]+)\s*;\s*$'
)


def parse_das(text: str) -> Dict[str, Dict[str, object]]:
    """Parse DAS text into ``{container: {attr: value}}``.

    Global attributes appear under the ``NC_GLOBAL`` key.
    """
    lines = text.splitlines()
    if not lines or not lines[0].strip().startswith("Attributes"):
        raise DapError("not a DAS document")
    containers: Dict[str, Dict[str, object]] = {}
    current = None
    for line in lines[1:]:
        stripped = line.strip()
        if not stripped:
            continue
        if stripped == "}":
            if current is None:
                break  # closes the outer Attributes block
            current = None
            continue
        m = _CONTAINER_RE.match(line)
        if m and current is None:
            current = m.group(1)
            containers[current] = {}
            continue
        m = _ATTR_RE.match(line)
        if m and current is not None:
            dap_type, name, raw = m.groups()
            containers[current][name] = _parse_value(dap_type, raw)
            continue
        raise DapError(f"bad DAS line: {line!r}")
    return containers


def _parse_value(dap_type: str, raw: str):
    if raw.startswith('"'):
        return raw[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    if dap_type in ("Int16", "Int32", "UInt16", "UInt32", "Byte"):
        return int(raw)
    if dap_type in ("Float32", "Float64"):
        return float(raw)
    return raw


def apply_das(dataset: DapDataset,
              containers: Dict[str, Dict[str, object]]) -> DapDataset:
    """Attach parsed DAS attributes to a dataset in place."""
    for name, attrs in containers.items():
        if name == "NC_GLOBAL":
            dataset.attributes.update(attrs)
        elif name in dataset.variables:
            dataset.variables[name].attributes.update(attrs)
    return dataset
