"""OPeNDAP framework: dataset model, DAP2 protocol, NcML, subsetting."""

from .client import DapCache, RemoteDataset, open_url
from .constraints import (
    ConstraintExpression,
    Hyperslab,
    Projection,
    Selection,
    apply_constraint,
    parse_constraint,
)
from .das import apply_das, parse_das, render_das
from .dds import parse_dds, render_dds
from .dods import decode_dods, encode_dods
from .model import (
    DapDataset,
    DapError,
    Variable,
    apply_fill_and_scale,
    decode_time,
    encode_time,
    parse_time_units,
)
from .ncml import (
    aggregate_join_existing,
    apply_ncml_overrides,
    parse_ncml,
    render_ncml,
)
from .server import (
    DEFAULT_REGISTRY,
    DapServer,
    LatencyModel,
    ServerRegistry,
)
from .subset import (
    WebCoverageService,
    index_window_for_bbox,
    subset_by_coords,
)

__all__ = [
    "ConstraintExpression",
    "DapCache",
    "DapDataset",
    "DapError",
    "DapServer",
    "DEFAULT_REGISTRY",
    "Hyperslab",
    "LatencyModel",
    "Projection",
    "RemoteDataset",
    "Selection",
    "ServerRegistry",
    "Variable",
    "WebCoverageService",
    "aggregate_join_existing",
    "apply_constraint",
    "apply_das",
    "apply_fill_and_scale",
    "apply_ncml_overrides",
    "decode_dods",
    "decode_time",
    "encode_dods",
    "encode_time",
    "index_window_for_bbox",
    "open_url",
    "parse_constraint",
    "parse_das",
    "parse_dds",
    "parse_ncml",
    "parse_time_units",
    "render_das",
    "render_dds",
    "render_ncml",
    "subset_by_coords",
]
