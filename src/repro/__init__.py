"""repro — a from-scratch reproduction of the Copernicus App Lab stack.

The package implements, in pure Python, the systems described in
"The Copernicus App Lab project: Easy Access to Copernicus Data"
(EDBT 2019): an OPeNDAP data-access layer over synthetic Copernicus
Global Land products, the MadIS extensible SQL layer, the Ontop-spatial
OBDA engine with its OPeNDAP adapter, the Strabon spatiotemporal RDF
store, GeoTriples, Silk/JedAI interlinking, the RAMANI streaming data
library and Maps-API, the Sextant map builder, catalog/metadata tooling
(DRS, ACDD, NcML), schema.org EO dataset annotations + search, a small
cloud-platform simulator, and the Geographica benchmark harness.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

__version__ = "1.0.0"
