"""Geospatial file-format readers for Sextant layers.

Sextant "create[s] thematic maps by combining geospatial and temporal
information that exists in a number of heterogeneous data sources
ranging from standard SPARQL endpoints, to GeoSPARQL endpoints, or
well-adopted geospatial file formats, like KML, GML and GeoTIFF".

This module parses KML and (a pragmatic subset of) GML into features;
raster layers come from :class:`repro.opendap.DapDataset` objects (the
GeoTIFF stand-in).
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from ..geometry import (
    Feature,
    FeatureCollection,
    GeometryError,
    LineString,
    Point,
    Polygon,
)

KML_NS = "http://www.opengis.net/kml/2.2"
GML_NS = "http://www.opengis.net/gml"


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _parse_coord_text(text: str, swap: bool = False) -> List[tuple]:
    """Parse 'lon,lat[,alt]' tuples (KML) or 'x y x y ...' lists (GML)."""
    coords = []
    if "," in text:
        for chunk in text.split():
            parts = chunk.split(",")
            coords.append((float(parts[0]), float(parts[1])))
    else:
        numbers = [float(x) for x in text.split()]
        pairs = list(zip(numbers[0::2], numbers[1::2]))
        coords.extend(pairs)
    if swap:
        coords = [(y, x) for x, y in coords]
    return coords


def parse_kml(text: str) -> FeatureCollection:
    """Parse KML Placemarks (Point / LineString / Polygon) into features."""
    root = ET.fromstring(text)
    fc = FeatureCollection()
    for placemark in root.iter():
        if _local(placemark.tag) != "Placemark":
            continue
        properties: Dict[str, object] = {}
        geometry = None
        feature_id = placemark.get("id")
        for child in placemark.iter():
            tag = _local(child.tag)
            if tag == "name" and child.text:
                properties["name"] = child.text.strip()
            elif tag == "description" and child.text:
                properties["description"] = child.text.strip()
            elif tag == "SimpleData" and child.text:
                properties[child.get("name", "field")] = child.text.strip()
            elif tag in ("Point", "LineString", "Polygon") and \
                    geometry is None:
                geometry = _kml_geometry(child)
        if geometry is not None:
            fc.append(Feature(geometry, properties, feature_id))
    return fc


def _kml_geometry(element):
    tag = _local(element.tag)
    if tag == "Point":
        coords = _coords_of(element)
        return Point(*coords[0])
    if tag == "LineString":
        return LineString(_coords_of(element))
    # Polygon: outerBoundaryIs/LinearRing + innerBoundaryIs*
    shell = None
    holes = []
    for boundary in element:
        btag = _local(boundary.tag)
        if btag == "outerBoundaryIs":
            shell = _coords_of(boundary)
        elif btag == "innerBoundaryIs":
            holes.append(_coords_of(boundary))
    if shell is None:
        raise GeometryError("KML polygon without outer boundary")
    return Polygon(shell, holes)


def _coords_of(element) -> List[tuple]:
    for node in element.iter():
        if _local(node.tag) == "coordinates" and node.text:
            return _parse_coord_text(node.text.strip())
    raise GeometryError("KML geometry without coordinates")


def parse_gml(text: str, axis_order: str = "lonlat") -> FeatureCollection:
    """Parse GML featureMembers with Point/LineString/Polygon geometries.

    ``axis_order='latlon'`` swaps coordinates (EPSG:4326 axis order).
    """
    swap = axis_order == "latlon"
    root = ET.fromstring(text)
    fc = FeatureCollection()
    for member in root.iter():
        if _local(member.tag) not in ("featureMember", "member"):
            continue
        for feature_el in member:
            properties: Dict[str, object] = {}
            geometry = None
            for child in feature_el.iter():
                tag = _local(child.tag)
                if tag == "Point":
                    geometry = Point(*_gml_coords(child, swap)[0])
                elif tag == "LineString":
                    geometry = LineString(_gml_coords(child, swap))
                elif tag == "Polygon":
                    geometry = _gml_polygon(child, swap)
                elif (
                    child is not feature_el
                    and child.text and child.text.strip()
                    and len(list(child)) == 0
                    and tag not in ("pos", "posList", "coordinates",
                                    "lowerCorner", "upperCorner")
                ):
                    properties[tag] = child.text.strip()
            if geometry is not None:
                fc.append(Feature(geometry, properties,
                                  _gml_id(feature_el)))
    return fc


def _gml_id(element) -> Optional[str]:
    for key, value in element.attrib.items():
        if key.endswith("id"):
            return value
    return None


def _gml_coords(element, swap: bool) -> List[tuple]:
    for node in element.iter():
        tag = _local(node.tag)
        if tag in ("pos", "posList", "coordinates") and node.text:
            return _parse_coord_text(node.text.strip(), swap=swap)
    raise GeometryError("GML geometry without coordinates")


def _gml_polygon(element, swap: bool) -> Polygon:
    shell = None
    holes = []
    for node in element.iter():
        tag = _local(node.tag)
        if tag == "exterior":
            shell = _gml_coords(node, swap)
        elif tag == "interior":
            holes.append(_gml_coords(node, swap))
    if shell is None:
        raise GeometryError("GML polygon without exterior ring")
    return Polygon(shell, holes)
