"""SVG and HTML renderers for Sextant thematic maps.

Figure 4 of the paper is a Sextant screenshot; our reproducible
artifact is this renderer's output: an SVG per time step (LAI circles
coloured by value over administrative outlines, CORINE/Urban Atlas
polygons and OSM parks) and a standalone HTML page with a time slider.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple
from xml.sax.saxutils import escape


def _safe_id(name: str) -> str:
    """Layer names become XML id attributes; strip anything unsafe."""
    return re.sub(r"[^\w.-]+", "-", name).strip("-") or "layer"

from ..geometry import LineString, Point, Polygon, flatten

# A compact viridis-like ramp (low → high).
_RAMP = [
    "#440154", "#46327e", "#365c8d", "#277f8e", "#1fa187",
    "#4ac16d", "#a0da39", "#fde725",
]


def value_color(value: float, lo: float, hi: float) -> str:
    """Map a value onto the colour ramp."""
    if hi <= lo:
        return _RAMP[-1]
    f = max(0.0, min(1.0, (value - lo) / (hi - lo)))
    return _RAMP[min(len(_RAMP) - 1, int(f * len(_RAMP)))]


class _Projector:
    """Linear lon/lat → SVG pixel projection with padding."""

    def __init__(self, bounds, width: int, height: int, pad: float = 0.04):
        minx, miny, maxx, maxy = bounds
        dx = (maxx - minx) or 1e-6
        dy = (maxy - miny) or 1e-6
        self.minx = minx - dx * pad
        self.miny = miny - dy * pad
        self.maxx = maxx + dx * pad
        self.maxy = maxy + dy * pad
        self.width = width
        self.height = height

    def __call__(self, lon: float, lat: float) -> Tuple[float, float]:
        x = (lon - self.minx) / (self.maxx - self.minx) * self.width
        y = (1 - (lat - self.miny) / (self.maxy - self.miny)) * self.height
        return (round(x, 2), round(y, 2))


def _path_of(coords, project) -> str:
    points = [project(x, y) for x, y in coords]
    steps = [f"M {points[0][0]} {points[0][1]}"]
    steps.extend(f"L {x} {y}" for x, y in points[1:])
    return " ".join(steps)


def render_svg(thematic_map, width: int = 800, height: int = 600,
               time_key: Optional[str] = None) -> str:
    """Render one frame of the map as an SVG document."""
    project = _Projector(thematic_map.bounds(), width, height)
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<title>{escape(thematic_map.name)}</title>',
        f'<rect width="{width}" height="{height}" fill="#f2f0e9"/>',
    ]
    for layer in thematic_map.layers:
        parts.append(f'<g id="layer-{_safe_id(layer.name)}">')
        value_range = layer.value_range()
        for feature in layer.features_at(time_key):
            parts.append(
                _feature_svg(feature, layer, project, value_range)
            )
        parts.append("</g>")
    parts.append(_legend_svg(thematic_map, width))
    if time_key:
        parts.append(
            f'<text x="12" y="{height - 12}" font-size="14" '
            f'fill="#333">{escape(time_key)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def _feature_svg(feature, layer, project, value_range) -> str:
    style = layer.style
    fill = style.fill
    if layer.value_property and value_range and \
            layer.value_property in feature.properties:
        fill = value_color(
            float(feature.properties[layer.value_property]),
            *value_range,
        )
    title = ""
    name = feature.properties.get("name")
    if name:
        title = f"<title>{escape(str(name))}</title>"
    parts = []
    for geom in flatten(feature.geometry):
        if isinstance(geom, Point):
            x, y = project(geom.x, geom.y)
            parts.append(
                f'<circle cx="{x}" cy="{y}" r="{style.radius}" '
                f'fill="{fill}" fill-opacity="{style.opacity}" '
                f'stroke="{style.stroke}" stroke-width="0.5">{title}'
                "</circle>"
            )
        elif isinstance(geom, Polygon):
            d_parts = [
                _path_of(ring.vertices, project) + " Z"
                for ring in geom.rings()
            ]
            parts.append(
                f'<path d="{" ".join(d_parts)}" fill="{fill}" '
                f'fill-opacity="{style.opacity}" fill-rule="evenodd" '
                f'stroke="{style.stroke}" stroke-width="1">{title}</path>'
            )
        elif isinstance(geom, LineString):
            parts.append(
                f'<path d="{_path_of(geom.vertices, project)}" '
                f'fill="none" stroke="{style.stroke}" '
                f'stroke-width="1.5" stroke-opacity="{style.opacity}">'
                f"{title}</path>"
            )
    return "".join(parts)


def _legend_svg(thematic_map, width: int) -> str:
    entries = []
    y = 18
    for layer in thematic_map.layers:
        entries.append(
            f'<rect x="{width - 190}" y="{y - 11}" width="12" height="12" '
            f'fill="{layer.style.fill}" '
            f'fill-opacity="{layer.style.opacity}"/>'
            f'<text x="{width - 172}" y="{y}" font-size="12" fill="#333">'
            f"{escape(layer.name)}</text>"
        )
        y += 18
    return (
        f'<g id="legend"><rect x="{width - 200}" y="0" width="200" '
        f'height="{y}" fill="#ffffff" fill-opacity="0.85"/>'
        + "".join(entries) + "</g>"
    )


def render_html(thematic_map, width: int = 800, height: int = 600) -> str:
    """A standalone HTML page: one SVG frame per time step + slider."""
    timeline = thematic_map.timeline() or [None]
    frames = [
        render_svg(thematic_map, width, height, time_key)
        for time_key in timeline
    ]
    labels = [escape(str(t)) if t else "static" for t in timeline]
    frame_divs = "\n".join(
        f'<div class="frame" id="frame-{i}" '
        f'style="display:{"block" if i == 0 else "none"}">{svg}</div>'
        for i, svg in enumerate(frames)
    )
    slider = ""
    if len(frames) > 1:
        slider = f"""
  <input type="range" min="0" max="{len(frames) - 1}" value="0"
         id="timeslider" style="width:{width}px">
  <span id="timelabel">{labels[0]}</span>
  <script>
    var labels = {labels!r};
    document.getElementById('timeslider').addEventListener('input',
      function () {{
        var idx = parseInt(this.value);
        document.querySelectorAll('.frame').forEach(function (el, i) {{
          el.style.display = (i === idx) ? 'block' : 'none';
        }});
        document.getElementById('timelabel').textContent = labels[idx];
      }});
  </script>"""
    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>{escape(thematic_map.name)}</title></head>
<body>
  <h1>{escape(thematic_map.name)}</h1>
  <p>{escape(thematic_map.description)}</p>
  {frame_divs}
  {slider}
</body></html>
"""
