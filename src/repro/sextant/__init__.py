"""Sextant: visualization of time-evolving linked geospatial data."""

from .core import Layer, SextantError, Style, ThematicMap
from .formats import parse_gml, parse_kml
from .map_ontology import find_maps, map_descriptor_from_rdf, map_to_rdf
from .svg import render_html, render_svg, value_color

__all__ = [
    "Layer",
    "SextantError",
    "Style",
    "ThematicMap",
    "find_maps",
    "map_descriptor_from_rdf",
    "map_to_rdf",
    "parse_gml",
    "parse_kml",
    "render_html",
    "render_svg",
    "value_color",
]
