"""Sextant: thematic maps over linked geospatial data.

A :class:`ThematicMap` stacks :class:`Layer` objects from heterogeneous
sources: (Geo)SPARQL endpoints, GeoJSON/KML/GML files and raster
coverages. Features may carry a ``time`` property, giving the map a
timeline — the basis of Figure 4's time-evolving "greenness of Paris".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Feature, FeatureCollection, Geometry, wkt_loads
from ..geometry.wkt import split_crs
from ..opendap import DapDataset, decode_time
from ..opendap.model import apply_fill_and_scale
from ..rdf.terms import Literal


class SextantError(ValueError):
    """Raised for malformed layers or unusable sources."""


@dataclass
class Style:
    fill: str = "#2a7f3f"
    stroke: str = "#1b4e27"
    opacity: float = 0.7
    radius: float = 4.0  # for point features


@dataclass
class Layer:
    """One thematic layer: features + style + provenance descriptor."""

    name: str
    features: FeatureCollection
    style: Style = field(default_factory=Style)
    value_property: Optional[str] = None   # drives choropleth colouring
    time_property: Optional[str] = None    # drives the timeline
    source: Dict[str, str] = field(default_factory=dict)

    def times(self) -> List[str]:
        if self.time_property is None:
            return []
        out = sorted(
            {
                str(f.properties[self.time_property])
                for f in self.features
                if self.time_property in f.properties
            }
        )
        return out

    def features_at(self, time_key: Optional[str]) -> List[Feature]:
        if self.time_property is None or time_key is None:
            return list(self.features)
        return [
            f for f in self.features
            if str(f.properties.get(self.time_property)) == time_key
        ]

    def value_range(self) -> Optional[Tuple[float, float]]:
        if self.value_property is None:
            return None
        values = [
            float(f.properties[self.value_property])
            for f in self.features
            if self.value_property in f.properties
        ]
        if not values:
            return None
        return (min(values), max(values))


class ThematicMap:
    """An ordered stack of layers plus map-level metadata."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.layers: List[Layer] = []

    # -- layer constructors ----------------------------------------------------
    def add_layer(self, layer: Layer) -> Layer:
        self.layers.append(layer)
        return layer

    def add_geojson_layer(self, name: str, fc: FeatureCollection,
                          style: Optional[Style] = None,
                          value_property: Optional[str] = None,
                          time_property: Optional[str] = None) -> Layer:
        return self.add_layer(
            Layer(name, fc, style or Style(),
                  value_property=value_property,
                  time_property=time_property,
                  source={"type": "geojson"})
        )

    def add_kml_layer(self, name: str, kml_text: str,
                      style: Optional[Style] = None) -> Layer:
        from .formats import parse_kml

        return self.add_layer(
            Layer(name, parse_kml(kml_text), style or Style(),
                  source={"type": "kml"})
        )

    def add_gml_layer(self, name: str, gml_text: str,
                      style: Optional[Style] = None) -> Layer:
        from .formats import parse_gml

        return self.add_layer(
            Layer(name, parse_gml(gml_text), style or Style(),
                  source={"type": "gml"})
        )

    def add_sparql_layer(self, name: str, endpoint, query: str,
                         geom_var: str = "wkt",
                         value_var: Optional[str] = None,
                         time_var: Optional[str] = None,
                         label_var: Optional[str] = None,
                         style: Optional[Style] = None) -> Layer:
        """Run a (Geo)SPARQL query and build a feature per result row.

        *endpoint* is anything with a ``query(text)`` method (a Graph, a
        Strabon store, an Ontop-spatial engine or a federation).
        """
        result = endpoint.query(query)
        fc = FeatureCollection()
        for i, row in enumerate(result):
            geom_term = row.get(geom_var)
            if geom_term is None:
                continue
            geometry = _term_to_geometry(geom_term)
            properties: Dict[str, object] = {}
            if value_var is not None and row.get(value_var) is not None:
                properties[value_var] = _term_value(row[value_var])
            if time_var is not None and row.get(time_var) is not None:
                properties[time_var] = str(row[time_var])
            if label_var is not None and row.get(label_var) is not None:
                properties["name"] = str(row[label_var])
            fc.append(Feature(geometry, properties, feature_id=str(i)))
        if not fc.features:
            raise SextantError(
                f"query for layer {name!r} produced no geometries"
            )
        return self.add_layer(
            Layer(
                name, fc, style or Style(),
                value_property=value_var, time_property=time_var,
                source={"type": "sparql", "query": query},
            )
        )

    def add_raster_layer(self, name: str, dataset: DapDataset,
                         variable: str,
                         style: Optional[Style] = None,
                         time_index: Optional[int] = None) -> Layer:
        """A coverage (GeoTIFF stand-in) as per-cell polygon features."""
        import numpy as np

        values = apply_fill_and_scale(dataset[variable])
        times = decode_time(dataset["time"]) if "time" in dataset else [None]
        lats = dataset["lat"].data.astype(float)
        lons = dataset["lon"].data.astype(float)
        half_lon = abs(lons[1] - lons[0]) / 2 if len(lons) > 1 else 0.005
        half_lat = abs(lats[1] - lats[0]) / 2 if len(lats) > 1 else 0.005
        fc = FeatureCollection()
        time_range = (
            range(len(times)) if time_index is None else [time_index]
        )
        from ..geometry import Polygon

        for ti in time_range:
            stamp = times[ti].isoformat() if times[ti] else None
            for yi, lat in enumerate(lats):
                for xi, lon in enumerate(lons):
                    value = values[ti, yi, xi]
                    if np.isnan(value):
                        continue
                    cell = Polygon.box(
                        lon - half_lon, lat - half_lat,
                        lon + half_lon, lat + half_lat,
                    )
                    props = {"value": float(value)}
                    if stamp:
                        props["time"] = stamp
                    fc.append(Feature(cell, props))
        return self.add_layer(
            Layer(
                name, fc, style or Style(),
                value_property="value",
                time_property="time" if len(time_range) > 1 else None,
                source={"type": "raster", "variable": variable},
            )
        )

    # -- timeline ------------------------------------------------------------------
    def timeline(self) -> List[str]:
        """All distinct time keys across temporal layers, sorted."""
        keys = set()
        for layer in self.layers:
            keys.update(layer.times())
        return sorted(keys)

    # -- export ----------------------------------------------------------------------
    def bounds(self) -> Tuple[float, float, float, float]:
        boxes = [
            f.geometry.bounds
            for layer in self.layers
            for f in layer.features
        ]
        if not boxes:
            raise SextantError("map has no features")
        return (
            min(b[0] for b in boxes),
            min(b[1] for b in boxes),
            max(b[2] for b in boxes),
            max(b[3] for b in boxes),
        )

    def to_geojson(self) -> Dict[str, object]:
        """A layered GeoJSON document (one FeatureCollection per layer)."""
        return {
            "type": "SextantMap",
            "name": self.name,
            "description": self.description,
            "timeline": self.timeline(),
            "layers": [
                {
                    "name": layer.name,
                    "style": vars(layer.style),
                    "value_property": layer.value_property,
                    "time_property": layer.time_property,
                    "source": layer.source,
                    "features": layer.features.to_geojson(),
                }
                for layer in self.layers
            ],
        }

    def to_svg(self, width: int = 800, height: int = 600,
               time_key: Optional[str] = None) -> str:
        from .svg import render_svg

        return render_svg(self, width=width, height=height,
                          time_key=time_key)

    def to_html(self, width: int = 800, height: int = 600) -> str:
        from .svg import render_html

        return render_html(self, width=width, height=height)

    def __repr__(self) -> str:
        return f"<ThematicMap {self.name!r} ({len(self.layers)} layers)>"


def _term_to_geometry(term) -> Geometry:
    if isinstance(term, Literal):
        return wkt_loads(term.lexical)
    return wkt_loads(str(term))


def _term_value(term):
    if isinstance(term, Literal):
        value = term.value
        return value if isinstance(value, (int, float)) else str(value)
    return str(term)
