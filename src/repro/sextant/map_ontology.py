"""Sextant's map ontology: maps as shareable RDF.

"Each thematic map is represented using a map ontology that assists on
modelling these maps in RDF and allow for easy sharing, editing and
search mechanisms over existing maps" (Section 3.3).

Layers keep their *source descriptors* (endpoint queries, formats), so
a map loaded from RDF can be re-executed against live endpoints.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..rdf import Graph, IRI, Literal, MAP, RDF
from .core import Layer, Style, ThematicMap


def map_to_rdf(thematic_map: ThematicMap, map_iri: str,
               graph: Optional[Graph] = None) -> Graph:
    """Serialize a map's structure (not its features) to RDF."""
    graph = graph if graph is not None else Graph()
    graph.bind("map", str(MAP))
    subject = IRI(map_iri)
    graph.add(subject, RDF.type, MAP.Map)
    graph.add(subject, MAP.hasName, Literal(thematic_map.name))
    if thematic_map.description:
        graph.add(subject, MAP.hasDescription,
                  Literal(thematic_map.description))
    for index, layer in enumerate(thematic_map.layers):
        layer_iri = IRI(f"{map_iri}/layer/{index}")
        graph.add(subject, MAP.hasLayer, layer_iri)
        graph.add(layer_iri, RDF.type, MAP.Layer)
        graph.add(layer_iri, MAP.hasName, Literal(layer.name))
        graph.add(layer_iri, MAP.layerIndex, Literal(index))
        graph.add(layer_iri, MAP.hasFill, Literal(layer.style.fill))
        graph.add(layer_iri, MAP.hasStroke, Literal(layer.style.stroke))
        graph.add(layer_iri, MAP.hasOpacity, Literal(layer.style.opacity))
        if layer.value_property:
            graph.add(layer_iri, MAP.valueProperty,
                      Literal(layer.value_property))
        if layer.time_property:
            graph.add(layer_iri, MAP.timeProperty,
                      Literal(layer.time_property))
        for key, value in layer.source.items():
            graph.add(layer_iri, MAP.term("source" + key.capitalize()),
                      Literal(str(value)))
    return graph


def map_descriptor_from_rdf(graph: Graph, map_iri: str) -> Dict:
    """Read a map descriptor back: name, description, ordered layers."""
    subject = IRI(map_iri)
    if (subject, RDF.type, MAP.Map) not in graph:
        raise KeyError(f"{map_iri} is not a map:Map in this graph")
    name = graph.value(subject, MAP.hasName)
    description = graph.value(subject, MAP.hasDescription)
    layers: List[Dict] = []
    for layer_iri in graph.objects(subject, MAP.hasLayer):
        entry = {
            "name": str(graph.value(layer_iri, MAP.hasName)),
            "index": graph.value(layer_iri, MAP.layerIndex).value,
            "style": Style(
                fill=str(graph.value(layer_iri, MAP.hasFill)),
                stroke=str(graph.value(layer_iri, MAP.hasStroke)),
                opacity=float(
                    graph.value(layer_iri, MAP.hasOpacity).value
                ),
            ),
            "source": {},
        }
        value_prop = graph.value(layer_iri, MAP.valueProperty)
        if value_prop is not None:
            entry["value_property"] = str(value_prop)
        time_prop = graph.value(layer_iri, MAP.timeProperty)
        if time_prop is not None:
            entry["time_property"] = str(time_prop)
        for triple in graph.triples((layer_iri, None, None)):
            local = triple.p.local_name
            if local.startswith("source"):
                entry["source"][local[len("source"):].lower()] = str(triple.o)
        layers.append(entry)
    layers.sort(key=lambda e: e["index"])
    return {
        "name": str(name) if name else map_iri,
        "description": str(description) if description else "",
        "layers": layers,
    }


def find_maps(graph: Graph, name_contains: str = "") -> List[str]:
    """Search shared maps by name substring (the 'search mechanism')."""
    out = []
    for subject in graph.subjects(RDF.type, MAP.Map):
        name = graph.value(subject, MAP.hasName)
        if name is None:
            continue
        if name_contains.lower() in str(name).lower():
            out.append(str(subject))
    return sorted(out)
