"""Per-query resource budgets and cooperative cancellation.

A :class:`QueryBudget` is created when a query is admitted and threaded
as a cancellation token through every layer that does work on the
query's behalf: the SPARQL evaluator charges triples it scans, the
federation engine and DAP client charge remote fetches (and cap retry
backoff by the remaining deadline), the MadIS virtual-table layer
charges materialized rows, and result assembly charges result rows.

Each ``charge_*`` call is a *cancellation point*: when the wall-clock
deadline (measured on an injectable clock, so tests never sleep) has
passed, or a limit is crossed, or :meth:`QueryBudget.cancel` was
called, a typed :class:`BudgetExceeded` subclass is raised carrying a
snapshot of the work done so far — callers can report exactly how far
the query got.

Deadlines come in two strengths. By default they are *hard*: any
cancellation point past the deadline raises :class:`DeadlineExceeded`.
A budget switched to soft deadlines (``hard_deadline = False``, used by
federated queries in ``partial_results`` mode) stops raising at local
cancellation points, so work already fetched can still be joined and
returned, while remote dispatch sites consult :attr:`deadline_expired`
and degrade instead.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional


class BudgetExceeded(RuntimeError):
    """Base of every budget violation; carries partial work stats.

    ``snapshot`` is the budget's :meth:`QueryBudget.snapshot` at raise
    time: elapsed seconds, triples scanned, rows emitted, remote
    fetches issued, and the configured limits.
    """

    def __init__(self, message: str,
                 snapshot: Optional[Dict[str, object]] = None):
        super().__init__(message)
        self.snapshot: Dict[str, object] = dict(snapshot or {})


class DeadlineExceeded(BudgetExceeded):
    """The query ran past its wall-clock deadline."""


class RowLimitExceeded(BudgetExceeded):
    """The query produced more result rows than its budget allows."""


class ScanLimitExceeded(BudgetExceeded):
    """The query scanned more triples than its budget allows."""


class FetchLimitExceeded(BudgetExceeded):
    """The query issued more remote fetches than its budget allows."""


class QueryCancelled(BudgetExceeded):
    """The query was cancelled explicitly (user abort, shutdown)."""


class QueryBudget:
    """A resource envelope for one query, usable as a cancel token.

    All limits are optional; a budget with none configured never raises
    and only accounts. The clock is injectable so deadline behaviour is
    deterministic under test. The deadline countdown starts at
    construction (queries construct their budget on admission).
    """

    def __init__(self, deadline_s: Optional[float] = None,
                 max_rows: Optional[int] = None,
                 max_triples: Optional[int] = None,
                 max_fetches: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic,
                 hard_deadline: bool = True):
        self.deadline_s = deadline_s
        self.max_rows = max_rows
        self.max_triples = max_triples
        self.max_fetches = max_fetches
        self.clock = clock
        self.hard_deadline = hard_deadline
        self.started_at = clock()
        self.rows = 0
        self.triples_scanned = 0
        self.remote_fetches = 0
        self._cancel_reason: Optional[str] = None
        #: Optional :class:`~repro.resilience.RetryBudget` this query
        #: draws on: retries and hedges issued on the query's behalf
        #: (federation dispatch, DAP fetches, endpoint pools) must win
        #: a token from it. The service tier attaches the owning
        #: tenant's shared bucket here at admission.
        self.retry_budget = None
        # One budget is shared by every task of a parallel fan-out
        # (the worker pool propagates it per task), so the counter
        # increments must not lose updates across threads.
        self._lock = threading.Lock()

    @classmethod
    def unlimited(cls, clock: Callable[[], float] = time.monotonic
                  ) -> "QueryBudget":
        """An accounting-only budget that never cancels anything."""
        return cls(clock=clock)

    # -- time --------------------------------------------------------------
    def elapsed_s(self) -> float:
        return self.clock() - self.started_at

    def remaining_s(self) -> Optional[float]:
        """Seconds of deadline left (``None`` without a deadline)."""
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - self.elapsed_s())

    @property
    def deadline_expired(self) -> bool:
        return (self.deadline_s is not None
                and self.elapsed_s() >= self.deadline_s)

    def headroom(self) -> Optional[float]:
        """Fraction of the deadline still unused, in [0, 1]."""
        if self.deadline_s is None or self.deadline_s <= 0:
            return None
        return max(0.0, 1.0 - self.elapsed_s() / self.deadline_s)

    # -- cancellation ------------------------------------------------------
    def cancel(self, reason: str = "cancelled") -> None:
        """Request cooperative cancellation; the next charge raises."""
        self._cancel_reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancel_reason is not None

    def check_deadline(self) -> None:
        """A pure cancellation point: no work is charged.

        Raises :class:`QueryCancelled` after :meth:`cancel`, and
        :class:`DeadlineExceeded` past a *hard* deadline.
        """
        if self._cancel_reason is not None:
            raise QueryCancelled(self._cancel_reason, self.snapshot())
        if self.hard_deadline and self.deadline_expired:
            raise DeadlineExceeded(
                f"query deadline of {self.deadline_s:g}s exceeded "
                f"after {self.elapsed_s():.3f}s",
                self.snapshot(),
            )

    # -- charges -----------------------------------------------------------
    def charge_triples(self, n: int = 1) -> None:
        """Account *n* scanned triples (or spatial candidates)."""
        with self._lock:
            self.triples_scanned += n
        self.check_deadline()
        if (self.max_triples is not None
                and self.triples_scanned > self.max_triples):
            raise ScanLimitExceeded(
                f"scanned {self.triples_scanned} triples "
                f"(budget {self.max_triples})",
                self.snapshot(),
            )

    def charge_rows(self, n: int = 1) -> None:
        """Account *n* produced rows (result rows, VT rows, chunks)."""
        with self._lock:
            self.rows += n
        self.check_deadline()
        if self.max_rows is not None and self.rows > self.max_rows:
            raise RowLimitExceeded(
                f"produced {self.rows} rows (budget {self.max_rows})",
                self.snapshot(),
            )

    def charge_fetch(self, n: int = 1) -> None:
        """Account *n* remote fetches (endpoint calls, DAP requests)."""
        with self._lock:
            self.remote_fetches += n
        self.check_deadline()
        if (self.max_fetches is not None
                and self.remote_fetches > self.max_fetches):
            raise FetchLimitExceeded(
                f"issued {self.remote_fetches} remote fetches "
                f"(budget {self.max_fetches})",
                self.snapshot(),
            )

    # -- reporting ---------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The work accounted so far plus the configured limits."""
        return {
            "elapsed_s": self.elapsed_s(),
            "remaining_s": self.remaining_s(),
            "rows": self.rows,
            "triples_scanned": self.triples_scanned,
            "remote_fetches": self.remote_fetches,
            "deadline_s": self.deadline_s,
            "max_rows": self.max_rows,
            "max_triples": self.max_triples,
            "max_fetches": self.max_fetches,
            "cancelled": self.cancelled,
        }

    def __repr__(self) -> str:
        return (
            f"<QueryBudget deadline={self.deadline_s} "
            f"rows={self.rows}/{self.max_rows} "
            f"triples={self.triples_scanned}/{self.max_triples} "
            f"fetches={self.remote_fetches}/{self.max_fetches}>"
        )
