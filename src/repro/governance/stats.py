"""Counters and histograms for the governance layer.

One :class:`GovernanceStats` block sits next to the resilience
counters: where :class:`~repro.resilience.ResilienceStats` answers "how
flaky was the network", this block answers "how loaded was the query
layer and where did budgets bite" — queries admitted/shed, typed budget
outcomes, and a histogram of how much deadline headroom successful
queries finished with (the early-warning signal that a deadline is
about to start killing real traffic).

Like the resilience counters, the fields live on a
:class:`~repro.observability.labeled.LabeledCounters` tree: reading a
field returns own + per-label child totals, and
``stats.labeled(engine="federation")`` attributes outcomes per
component without double counting. The block is exported through the
metrics registry via
:func:`repro.observability.bridge.register_governance`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..observability.labeled import LabeledCounters
from .budget import (
    BudgetExceeded,
    DeadlineExceeded,
    FetchLimitExceeded,
    QueryBudget,
    QueryCancelled,
    RowLimitExceeded,
    ScanLimitExceeded,
)

#: Headroom histogram bucket count: bucket i covers [i/10, (i+1)/10).
HEADROOM_BUCKETS = 10


class GovernanceStats(LabeledCounters):
    """Counters kept by admission controllers and governed entry points.

    - ``admitted``: queries that obtained an execution slot;
    - ``shed``: queries rejected with ``Overloaded`` (pool + queue full
      or queue wait timed out);
    - ``completed``: admitted queries that finished inside budget;
    - ``deadline_exceeded`` / ``row_limit_exceeded`` /
      ``scan_limit_exceeded`` / ``fetch_limit_exceeded`` /
      ``cancelled``: admitted queries killed by each budget dimension;
    - ``headroom_histogram``: for completed queries that carried a
      deadline, which tenth of the deadline was still unused when they
      finished (index 0 = finished with <10% headroom — nearly late).
    """

    FIELDS = (
        "admitted",
        "shed",
        "completed",
        "deadline_exceeded",
        "row_limit_exceeded",
        "scan_limit_exceeded",
        "fetch_limit_exceeded",
        "cancelled",
    )

    def __init__(self, _labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(_labels)
        self.headroom_histogram: List[int] = [0] * HEADROOM_BUCKETS
        self.headroom_sum: float = 0.0

    def reset(self) -> None:
        super().reset()
        self.headroom_histogram = [0] * HEADROOM_BUCKETS
        self.headroom_sum = 0.0

    # -- recording ---------------------------------------------------------
    def record_headroom(self, budget: Optional[QueryBudget]) -> None:
        if budget is None:
            return
        headroom = budget.headroom()
        if headroom is None:
            return
        bucket = min(HEADROOM_BUCKETS - 1,
                     int(headroom * HEADROOM_BUCKETS))
        self.headroom_histogram[bucket] += 1
        self.headroom_sum += headroom

    def record_outcome(self, exc: Optional[BaseException],
                       budget: Optional[QueryBudget] = None) -> None:
        """Classify one finished (admitted) query by how it ended.

        ``exc`` is ``None`` for a clean completion, else the exception
        that terminated the query; only :class:`BudgetExceeded`
        subclasses are counted as governance outcomes — anything else
        (an application error) counts as completed-with-error nowhere,
        by design: governance only tracks what governance did.
        """
        if exc is None:
            self.completed += 1
            self.record_headroom(budget)
        elif isinstance(exc, QueryCancelled):
            self.cancelled += 1
        elif isinstance(exc, DeadlineExceeded):
            self.deadline_exceeded += 1
        elif isinstance(exc, RowLimitExceeded):
            self.row_limit_exceeded += 1
        elif isinstance(exc, ScanLimitExceeded):
            self.scan_limit_exceeded += 1
        elif isinstance(exc, FetchLimitExceeded):
            self.fetch_limit_exceeded += 1

    # -- reporting ---------------------------------------------------------
    def combined_headroom_histogram(self) -> List[int]:
        """Own histogram plus every labeled child's, bucket-wise."""
        combined = list(self.headroom_histogram)
        for child in self._children.values():
            for i, count in enumerate(child.combined_headroom_histogram()):
                combined[i] += count
        return combined

    def combined_headroom_sum(self) -> float:
        total = self.headroom_sum
        for child in self._children.values():
            total += child.combined_headroom_sum()
        return total

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = super().as_dict()
        out["headroom_histogram"] = self.combined_headroom_histogram()
        return out

    def merge(self, other: "GovernanceStats") -> "GovernanceStats":
        """Add *other*'s counters into this block (returns self)."""
        if other is self:
            return self
        super().merge(other)
        for i, count in enumerate(other.combined_headroom_histogram()):
            self.headroom_histogram[i] += count
        self.headroom_sum += other.combined_headroom_sum()
        return self
