"""Admission control: bounded concurrency with overload shedding.

An :class:`AdmissionController` guards a query entry point with a fixed
pool of execution slots and a bounded wait queue. A query that cannot
get a slot *and* cannot queue is shed immediately with a typed
:class:`Overloaded` error carrying a retry-after hint — the
load-shedding answer to "never queue unboundedly": past the configured
depth the caller learns *now* that the system is saturated, instead of
discovering it after a long queue wait that was doomed anyway.

The controller is thread-safe. Queued waiters block on a condition
variable and are woken as slots free up (FIFO fairness is delegated to
the condition's wakeup order); a waiter whose budget deadline or queue
timeout runs out is shed on wakeup.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, TypeVar

from .budget import BudgetExceeded, QueryBudget
from .stats import GovernanceStats

T = TypeVar("T")


class Overloaded(RuntimeError):
    """The query was shed: no execution slot and no queue room.

    ``retry_after_s`` is a hint for how long the caller should wait
    before retrying (the controller's estimate of slot turnover).
    """

    def __init__(self, message: str, retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class _Slot:
    """Context manager returned by :meth:`AdmissionController.admit`."""

    def __init__(self, controller: "AdmissionController"):
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "_Slot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class AdmissionController:
    """A bounded concurrent-query slot pool with a bounded wait queue.

    - up to ``max_concurrent`` queries hold slots at once;
    - up to ``max_queue_depth`` more may wait for a slot (0 = fail
      fast: any query beyond the pool is shed immediately);
    - a waiter gives up after ``queue_timeout_s`` (or its budget's
      remaining deadline, whichever is smaller) and is shed.

    ``retry_after_hint_s`` seeds the :class:`Overloaded` hint returned
    to shed callers.
    """

    def __init__(self, max_concurrent: int = 8,
                 max_queue_depth: int = 0,
                 queue_timeout_s: Optional[float] = None,
                 retry_after_hint_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 stats: Optional[GovernanceStats] = None):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue_depth = max_queue_depth
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_hint_s = retry_after_hint_s
        self.clock = clock
        self.stats = stats if stats is not None else GovernanceStats()
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0

    # -- introspection -----------------------------------------------------
    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    @property
    def queued(self) -> int:
        with self._cond:
            return self._waiting

    # -- slot pool ---------------------------------------------------------
    def admit(self, budget: Optional[QueryBudget] = None,
              timeout_s: Optional[float] = None) -> _Slot:
        """Obtain an execution slot or raise :class:`Overloaded`.

        Returns a context manager that releases the slot on exit. The
        effective queue wait is the smallest of *timeout_s*, the
        controller's ``queue_timeout_s`` and the budget's remaining
        deadline — a query must never queue longer than it has left to
        live.
        """
        wait_limit = self._wait_limit(budget, timeout_s)
        with self._cond:
            if self._active < self.max_concurrent:
                self._active += 1
                self.stats.admitted += 1
                return _Slot(self)
            if self._waiting >= self.max_queue_depth:
                self.stats.shed += 1
                raise Overloaded(
                    f"slot pool full ({self.max_concurrent} active, "
                    f"{self._waiting} queued, depth limit "
                    f"{self.max_queue_depth})",
                    retry_after_s=self.retry_after_hint_s,
                )
            self._waiting += 1
            deadline = (None if wait_limit is None
                        else self.clock() + wait_limit)
            try:
                while self._active >= self.max_concurrent:
                    remaining = (None if deadline is None
                                 else deadline - self.clock())
                    if remaining is not None and remaining <= 0:
                        self.stats.shed += 1
                        raise Overloaded(
                            "queue wait exceeded "
                            f"{wait_limit:g}s with no free slot",
                            retry_after_s=self.retry_after_hint_s,
                        )
                    self._cond.wait(timeout=remaining)
            finally:
                self._waiting -= 1
            self._active += 1
            self.stats.admitted += 1
            return _Slot(self)

    def _wait_limit(self, budget: Optional[QueryBudget],
                    timeout_s: Optional[float]) -> Optional[float]:
        limits = [
            limit for limit in (
                timeout_s,
                self.queue_timeout_s,
                budget.remaining_s() if budget is not None else None,
            ) if limit is not None
        ]
        return min(limits) if limits else None

    def _release(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify()

    # -- governed execution ------------------------------------------------
    def run(self, fn: Callable[[], T],
            budget: Optional[QueryBudget] = None,
            timeout_s: Optional[float] = None) -> T:
        """Run *fn* inside a slot, classifying the outcome into stats.

        Budget violations raised by *fn* are counted by type (deadline,
        rows, scan, fetches, cancelled) and re-raised; clean
        completions record deadline headroom into the histogram.
        """
        with self.admit(budget=budget, timeout_s=timeout_s):
            try:
                result = fn()
            except BudgetExceeded as exc:
                self.stats.record_outcome(exc, budget)
                raise
            self.stats.record_outcome(None, budget)
            return result
