"""Query-layer resource governance.

PR 1's resilience layer bounds what a *flaky network* can do to one
remote call; this package bounds what one *query* can do to the whole
service. Three pieces:

- :class:`QueryBudget` — a per-query envelope (wall-clock deadline on
  an injectable clock, max result rows, max triples scanned, max
  remote fetches) threaded through the serving stack as a cooperative
  cancellation token. Every layer charges the work it does; crossing a
  limit raises a typed :class:`BudgetExceeded` subclass carrying a
  snapshot of the partial work.
- :class:`AdmissionController` — a bounded concurrent-query slot pool
  with a bounded wait queue; excess load is shed with a typed
  :class:`Overloaded` error (retry-after hint) instead of queueing
  unboundedly.
- :class:`GovernanceStats` — admitted/shed/budget-outcome counters and
  deadline-headroom histograms, exposed alongside the resilience
  report.
"""

from .admission import AdmissionController, Overloaded
from .budget import (
    BudgetExceeded,
    DeadlineExceeded,
    FetchLimitExceeded,
    QueryBudget,
    QueryCancelled,
    RowLimitExceeded,
    ScanLimitExceeded,
)
from .stats import HEADROOM_BUCKETS, GovernanceStats

__all__ = [
    "AdmissionController",
    "BudgetExceeded",
    "DeadlineExceeded",
    "FetchLimitExceeded",
    "GovernanceStats",
    "HEADROOM_BUCKETS",
    "Overloaded",
    "QueryBudget",
    "QueryCancelled",
    "RowLimitExceeded",
    "ScanLimitExceeded",
]
