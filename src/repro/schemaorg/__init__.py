"""schema.org dataset annotations (with EO extension) + search engine."""

from .annotate import (
    DatasetAnnotation,
    EO_PROPERTIES,
    annotation_from_dap,
    from_jsonld,
    to_jsonld,
    to_rdf,
)
from .search import (
    DatasetSearchEngine,
    GAZETTEER,
    SearchHit,
)

__all__ = [
    "DatasetAnnotation",
    "DatasetSearchEngine",
    "EO_PROPERTIES",
    "GAZETTEER",
    "SearchHit",
    "annotation_from_dap",
    "from_jsonld",
    "to_jsonld",
    "to_rdf",
]
