"""schema.org Dataset annotations with the paper's EO extension.

Section 5: the project "designed an extension to the community
vocabulary schema.org, appropriate for annotating EO data in general
and Copernicus data in particular, by extending the class Dataset with
subclasses and properties which cover the EO dataset metadata defined
in the specification OGC 17-003".

Annotations render as JSON-LD (what a webmaster embeds so search
engines can index the dataset) and as RDF (what a search engine's
knowledge graph ingests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..geometry import Geometry, wkt_dumps, wkt_loads
from ..rdf import Graph, IRI, Literal, RDF, SDO, SDOEO

#: EO-extension properties (OGC 17-003 / O&M EO profile inspired).
EO_PROPERTIES = (
    "platform",          # e.g. PROBA-V, Sentinel-2
    "instrument",        # sensor
    "processingLevel",   # L0..L4 / information products
    "productType",       # LAI, NDVI, land cover ...
    "acquisitionType",   # NOMINAL / CALIBRATION
    "orbitType",         # LEO / GEO
    "resolution",        # e.g. "300m"
    "thematicArea",      # land / marine / atmosphere / ...
)


@dataclass
class DatasetAnnotation:
    """One dataset's discoverability record."""

    identifier: str
    name: str
    description: str = ""
    keywords: List[str] = field(default_factory=list)
    provider: str = ""
    license: str = ""
    url: str = ""
    spatial: Optional[Geometry] = None
    temporal_start: Optional[str] = None
    temporal_end: Optional[str] = None
    eo: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        unknown = set(self.eo) - set(EO_PROPERTIES)
        if unknown:
            raise ValueError(
                f"unknown EO extension properties {sorted(unknown)}; "
                f"allowed: {EO_PROPERTIES}"
            )


def to_jsonld(annotation: DatasetAnnotation) -> Dict[str, object]:
    """Render the JSON-LD block a dataset landing page would embed."""
    doc: Dict[str, object] = {
        "@context": {
            "@vocab": str(SDO),
            "eo": str(SDOEO),
        },
        "@type": "eo:EODataset" if annotation.eo else "Dataset",
        "@id": annotation.identifier,
        "name": annotation.name,
    }
    if annotation.description:
        doc["description"] = annotation.description
    if annotation.keywords:
        doc["keywords"] = ", ".join(annotation.keywords)
    if annotation.provider:
        doc["provider"] = {
            "@type": "Organization", "name": annotation.provider,
        }
    if annotation.license:
        doc["license"] = annotation.license
    if annotation.url:
        doc["url"] = annotation.url
    if annotation.spatial is not None:
        minx, miny, maxx, maxy = annotation.spatial.bounds
        doc["spatialCoverage"] = {
            "@type": "Place",
            "geo": {
                "@type": "GeoShape",
                # schema.org box: "lat lon lat lon" (SW NE corners)
                "box": f"{miny} {minx} {maxy} {maxx}",
            },
        }
    if annotation.temporal_start:
        end = annotation.temporal_end or ".."
        doc["temporalCoverage"] = f"{annotation.temporal_start}/{end}"
    for key, value in sorted(annotation.eo.items()):
        doc[f"eo:{key}"] = value
    return doc


def from_jsonld(doc: Dict[str, object]) -> DatasetAnnotation:
    """Parse a JSON-LD Dataset/EODataset block back into an annotation."""
    keywords = doc.get("keywords", "")
    if isinstance(keywords, str):
        keywords = [k.strip() for k in keywords.split(",") if k.strip()]
    provider = doc.get("provider", "")
    if isinstance(provider, dict):
        provider = provider.get("name", "")
    spatial = None
    coverage = doc.get("spatialCoverage")
    if isinstance(coverage, dict):
        box = coverage.get("geo", {}).get("box")
        if box:
            miny, minx, maxy, maxx = (float(v) for v in box.split())
            from ..geometry import Polygon

            spatial = Polygon.box(minx, miny, maxx, maxy)
    temporal_start = temporal_end = None
    temporal = doc.get("temporalCoverage")
    if isinstance(temporal, str) and "/" in temporal:
        temporal_start, temporal_end = temporal.split("/", 1)
        if temporal_end == "..":
            temporal_end = None
    eo = {
        key[len("eo:"):]: str(value)
        for key, value in doc.items()
        if key.startswith("eo:")
    }
    return DatasetAnnotation(
        identifier=str(doc.get("@id", "")),
        name=str(doc.get("name", "")),
        description=str(doc.get("description", "")),
        keywords=keywords,
        provider=str(provider),
        license=str(doc.get("license", "")),
        url=str(doc.get("url", "")),
        spatial=spatial,
        temporal_start=temporal_start,
        temporal_end=temporal_end,
        eo=eo,
    )


def to_rdf(annotation: DatasetAnnotation,
           graph: Optional[Graph] = None) -> Graph:
    """Lift an annotation into the search engine's knowledge graph."""
    graph = graph if graph is not None else Graph()
    subject = IRI(annotation.identifier)
    graph.add(subject, RDF.type, SDO.Dataset)
    if annotation.eo:
        graph.add(subject, RDF.type, SDOEO.EODataset)
    graph.add(subject, SDO.name, Literal(annotation.name))
    if annotation.description:
        graph.add(subject, SDO.description,
                  Literal(annotation.description))
    for keyword in annotation.keywords:
        graph.add(subject, SDO.keywords, Literal(keyword))
    if annotation.provider:
        graph.add(subject, SDO.provider, Literal(annotation.provider))
    if annotation.license:
        graph.add(subject, SDO.license, Literal(annotation.license))
    if annotation.spatial is not None:
        from ..rdf.terms import GEO_WKT_LITERAL

        graph.add(
            subject, SDO.spatialCoverage,
            Literal(wkt_dumps(annotation.spatial),
                    datatype=GEO_WKT_LITERAL),
        )
    if annotation.temporal_start:
        graph.add(subject, SDO.temporalCoverage,
                  Literal(annotation.temporal_start))
    for key, value in annotation.eo.items():
        graph.add(subject, SDOEO.term(key), Literal(value))
    return graph


def annotation_from_dap(url: str, attributes: Dict[str, object],
                        spatial: Optional[Geometry] = None,
                        eo: Optional[Dict[str, str]] = None
                        ) -> DatasetAnnotation:
    """Build an annotation from a DAP dataset's (ACDD) global attrs."""
    keywords = str(attributes.get("keywords", ""))
    return DatasetAnnotation(
        identifier=url,
        name=str(attributes.get("title", url)),
        description=str(attributes.get("summary", "")),
        keywords=[k.strip() for k in keywords.split(",") if k.strip()],
        provider=str(attributes.get("institution", "")),
        license=str(attributes.get("license", "")),
        url=url,
        spatial=spatial,
        temporal_start=_opt_str(attributes.get("time_coverage_start")),
        temporal_end=_opt_str(attributes.get("time_coverage_end")),
        eo=eo or {},
    )


def _opt_str(value) -> Optional[str]:
    return None if value is None else str(value)
