"""A dataset search engine over schema.org annotations.

Reproduces the capability the paper motivates: "search engines will be
able to answer sophisticated user questions involving datasets such as:
'Is there a land cover dataset produced by the European Environmental
Agency covering the area of Torino, Italy?'" — the engine indexes
JSON-LD annotations into a knowledge graph and answers keyword +
provider + spatial questions over it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry import Geometry, Point
from .annotate import DatasetAnnotation, from_jsonld

#: A small gazetteer for place-name resolution in questions.
GAZETTEER: Dict[str, Point] = {
    "torino": Point(7.686, 45.070),
    "turin": Point(7.686, 45.070),
    "paris": Point(2.352, 48.857),
    "athens": Point(23.727, 37.984),
    "brussels": Point(4.352, 50.847),
    "amsterdam": Point(4.897, 52.377),
    "berlin": Point(13.405, 52.520),
    "rome": Point(12.496, 41.903),
}

_STOPWORDS = {
    "is", "there", "a", "an", "the", "dataset", "datasets", "produced",
    "by", "covering", "area", "of", "in", "for", "with", "and", "that",
    "which", "do", "we", "have", "any", "about", "italy", "france",
    "germany", "greece",
}


@dataclass
class SearchHit:
    annotation: DatasetAnnotation
    score: float
    matched_keywords: List[str]

    def __repr__(self) -> str:
        return f"<SearchHit {self.annotation.name!r} score={self.score:.2f}>"


class DatasetSearchEngine:
    """Keyword + provider + spatial retrieval over indexed annotations."""

    def __init__(self):
        self._annotations: Dict[str, DatasetAnnotation] = {}

    # -- indexing -------------------------------------------------------------
    def index(self, annotation: DatasetAnnotation) -> None:
        self._annotations[annotation.identifier] = annotation

    def index_jsonld(self, doc: Dict[str, object]) -> None:
        self.index(from_jsonld(doc))

    def __len__(self) -> int:
        return len(self._annotations)

    # -- retrieval ---------------------------------------------------------------
    def search(self, text: str = "",
               provider: Optional[str] = None,
               covering: Optional[Geometry] = None,
               limit: int = 10) -> List[SearchHit]:
        """Ranked search: keyword score, filtered by provider/coverage."""
        query_tokens = _tokens(text)
        hits: List[SearchHit] = []
        for annotation in self._annotations.values():
            if provider is not None and not _provider_matches(
                annotation.provider, provider
            ):
                continue
            if covering is not None:
                if annotation.spatial is None or not \
                        annotation.spatial.intersects(covering):
                    continue
            doc_tokens = _annotation_tokens(annotation)
            matched = [t for t in query_tokens if t in doc_tokens]
            if query_tokens and not matched:
                continue
            score = len(matched) / len(query_tokens) if query_tokens else 0.5
            if provider is not None:
                score += 0.25
            if covering is not None:
                score += 0.25
            hits.append(SearchHit(annotation, score, matched))
        hits.sort(key=lambda h: (-h.score, h.annotation.name))
        return hits[:limit]

    def answer(self, question: str) -> Tuple[bool, List[SearchHit]]:
        """Answer a natural-language-ish dataset question.

        Resolution strategy: place names via the gazetteer, providers by
        matching indexed provider strings, remaining content words as
        keywords. Returns (yes/no, supporting hits).
        """
        place = None
        lowered = question.lower()
        for name, point in GAZETTEER.items():
            if re.search(rf"\b{name}\b", lowered):
                place = point
                break
        provider = None
        for annotation in self._annotations.values():
            if annotation.provider and \
                    annotation.provider.lower() in lowered:
                provider = annotation.provider
                break
        keyword_text = lowered
        if provider:
            keyword_text = keyword_text.replace(provider.lower(), " ")
        content = [
            t for t in _tokens(keyword_text)
            if t not in GAZETTEER
        ]
        hits = self.search(
            " ".join(content), provider=provider, covering=place
        )
        return (bool(hits), hits)


def _tokens(text: str) -> List[str]:
    return [
        t for t in re.split(r"[^0-9a-z]+", text.lower())
        if len(t) > 1 and t not in _STOPWORDS
    ]


def _annotation_tokens(annotation: DatasetAnnotation) -> set:
    parts = [annotation.name, annotation.description,
             " ".join(annotation.keywords)]
    parts.extend(annotation.eo.values())
    return set(_tokens(" ".join(parts)))


def _provider_matches(indexed: str, wanted: str) -> bool:
    a, b = indexed.lower(), wanted.lower()
    return a == b or a in b or b in a
