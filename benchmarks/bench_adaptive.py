"""Adaptive execution benchmark: feedback-driven re-planning on skew.

The workload is the classic cardinality-misestimation trap: a
hub-skewed social graph where the *mean* fan-out of ``follows`` is
tiny (most users follow one person) but every hub follows thousands —
so the per-probe index estimate puts the ``follows`` scan early and a
static plan enumerates the full hub fan-out before the selective
``vip``/``city`` scans prune it.

Three executions of the same query, same graph, same seed:

- **static** — no feedback, planner order as estimated;
- **adaptive (cold)** — empty StatsStore + ``replan_ratio``: the
  divergence check fires mid-query and re-orders the remaining
  patterns (``replans`` >= 1);
- **adaptive (warm)** — a store fed by one prior run of the static
  order: the planner starts from the selective order outright
  (``src=feedback`` in EXPLAIN), no replan needed.

The reported ``*_reduction`` factors are total enumerated intermediate
rows (the sum of scan-node actuals) relative to static; the regression
gate pins both at >= 5x. ``identical_runs`` re-runs the warm query on
a frozen snapshot and must be byte-identical (1.0).

Emits ``out/BENCH_adaptive.json``; regenerate the committed baseline
in ``--smoke`` mode (what the adaptive-smoke CI job runs)::

    python -m pytest benchmarks/bench_adaptive.py \
        --run-benchmarks --smoke -q
    cp out/BENCH_adaptive.json benchmarks/baselines/
"""

import time

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql import StatsStore, query

pytestmark = pytest.mark.benchmark

EX = "http://example.org/"

HUBS = 10
VIP_EVERY = 100
CITY_EVERY = 5

SKEW_QUERY = (
    "SELECT ?h ?u WHERE { "
    f"?h <{EX}type> <{EX}Hub> . "
    f"?h <{EX}follows> ?u . "
    f"?u <{EX}vip> ?o . "
    f"?u <{EX}city> <{EX}paris> . }}"
)


def build_skew_graph(followers: int) -> Graph:
    g = Graph()
    users = [IRI(f"{EX}user/{i}") for i in range(followers)]
    for i in range(HUBS):
        hub = IRI(f"{EX}hub/{i}")
        g.add(hub, IRI(EX + "type"), IRI(EX + "Hub"))
        for u in users:
            g.add(hub, IRI(EX + "follows"), u)
    for i, u in enumerate(users):
        g.add(u, IRI(EX + "follows"), users[(i + 1) % followers])
        if i % VIP_EVERY == 0:
            g.add(u, IRI(EX + "vip"), Literal("true"))
        if i % CITY_EVERY == 0:
            g.add(u, IRI(EX + "city"), IRI(EX + "paris"))
    return g


def intermediate_rows(result) -> int:
    """Total triples the scans enumerated — the join's real work."""
    return sum(n.actual_rows for n in result.plan.walk()
               if n.label == "IndexScan")


def test_adaptive_replanning_on_skew(smoke, emit_bench, record_summary):
    # smoke still has to arm the trap: the per-probe follows estimate
    # (~11) must undercut the vip scan's triple count (followers/100)
    followers = 2000 if smoke else 5000
    g = build_skew_graph(followers)

    start = time.perf_counter()

    static = query(g, SKEW_QUERY)
    static_rows = intermediate_rows(static)

    cold_store = StatsStore()
    cold = query(g, SKEW_QUERY, stats=cold_store, replan_ratio=2.0)
    cold_rows = intermediate_rows(cold)
    replans = sum(n.replans for n in cold.plan.walk())

    # warm the store with one clean run of the static order, then let
    # the planner consult that feedback up front
    warm_store = StatsStore()
    query(g, SKEW_QUERY, stats=warm_store)
    warm = query(g, SKEW_QUERY, stats=warm_store)
    warm_rows = intermediate_rows(warm)

    wall_s = time.perf_counter() - start

    # feedback must never change the answer
    assert len(static) == len(cold) == len(warm)
    assert replans >= 1, "skew must trigger a mid-query re-plan"
    assert "src=feedback" in warm.explain()
    assert warm_rows <= cold_rows  # planning ahead beats re-planning

    cold_reduction = static_rows / cold_rows
    warm_reduction = static_rows / warm_rows
    # the acceptance floor: feedback-driven re-planning cuts the
    # enumerated intermediate rows by at least 5x on this skew
    assert cold_reduction >= 5.0, (static_rows, cold_rows)
    assert warm_reduction >= 5.0, (static_rows, warm_rows)

    # frozen-snapshot replay is byte-identical
    frozen = StatsStore().load_snapshot(warm_store.snapshot()).freeze()
    r1 = query(g, SKEW_QUERY, stats=frozen, replan_ratio=2.0)
    r2 = query(g, SKEW_QUERY, stats=frozen, replan_ratio=2.0)
    identical = float(
        r1.to_json() == r2.to_json() and r1.explain() == r2.explain())

    metrics = {
        "followers": followers,
        "result_rows": len(static),
        "static_intermediate_rows": static_rows,
        "cold_intermediate_rows": cold_rows,
        "warm_intermediate_rows": warm_rows,
        "cold_reduction": round(cold_reduction, 3),
        "warm_reduction": round(warm_reduction, 3),
        "replans": replans,
        "identical_runs": identical,
    }
    emit_bench("adaptive", skew=metrics, wall_s=round(wall_s, 3))
    record_summary("adaptive execution on hub skew", [
        f"hubs={HUBS} followers={followers} "
        f"(follows mean ~{(HUBS * followers + followers) // (HUBS + followers)}/subject, "
        f"hub fan-out {followers})",
        f"intermediate rows: static={static_rows} "
        f"cold-adaptive={cold_rows} warm-feedback={warm_rows}",
        f"reduction: cold {cold_reduction:.1f}x (replans={replans}), "
        f"warm {warm_reduction:.1f}x",
        f"frozen replay identical: {bool(identical)}",
    ])
