"""Sharded data plane benchmark: the shard x worker scan matrix.

The graph's batched scan path (``Graph.scan_batches``) fans an
unbound-subject scan out over its hash shards and runs the per-shard
scans on a WorkerPool, merging the sorted runs back into one canonical
stream. On a pure in-memory graph the per-shard work is a dict walk —
far too cheap for thread-level parallelism to win — so this benchmark
injects a simulated per-triple IO cost through the ``Graph.scan_cost``
hook (the knob a disk- or network-backed shard would turn): every
shard scan sleeps ``n_matches * PER_TRIPLE_S``. Total simulated cost
is constant across shard counts, which makes the matrix honest: the
only thing that changes between cells is how much of that fixed cost
runs concurrently.

The sweep runs the same scan query at shards 1/2/4 x workers 1/2/4 and
asserts:

- results are byte-identical (``to_json``) at every cell, and
- the 4-shard/4-worker cell beats 1x1 by >= 2.5x scan throughput.

A second leg drives the deterministic partition-spill hash join
against a hard in-memory build-side ceiling (``spill_threshold``) and
reports the observed ``peak_build_rows`` — the regression gate pins it
at the ceiling with tolerance 1.0, so the memory bound is a tested
invariant, not documentation.

Emits ``out/BENCH_shards.json``; regenerate the committed baseline in
``--smoke`` mode (what the shard-smoke CI job runs)::

    python -m pytest benchmarks/bench_shards.py \
        --run-benchmarks --smoke -q
    cp out/BENCH_shards.json benchmarks/baselines/
"""

import time

import pytest

import repro.sparql.spill as spill_mod
from repro.parallel import ThreadExecutor, WorkerPool
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql import query

pytestmark = pytest.mark.benchmark

EX = "http://example.org/"

SHARD_COUNTS = (1, 2, 4)
WORKER_COUNTS = (1, 2, 4)

#: Simulated IO budget for one full scan, split evenly per triple: the
#: 1x1 cell pays all of it serially, the 4x4 cell pays ~1/4 of it on
#: each of four concurrent workers.
TOTAL_SCAN_COST_S = 0.8

SCAN_QUERY = f"SELECT ?s ?v WHERE {{ ?s <{EX}val> ?v . }}"

SPILL_QUERY = (
    f"SELECT ?s ?v WHERE {{ "
    f"?s <{EX}type> <{EX}A> . "
    f"{{ SELECT ?s ?v WHERE {{ ?s <{EX}val> ?v }} }} }}"
)


def build_graph(subjects: int, shards=None) -> Graph:
    g = Graph(shards=shards)
    for i in range(subjects):
        s = IRI(f"{EX}s/{i}")
        g.add(s, IRI(EX + "type"), IRI(EX + ("A" if i % 2 else "B")))
        g.add(s, IRI(EX + "val"), Literal(str(i)))
    return g


def test_shard_worker_scan_matrix(smoke, emit_bench, record_summary):
    subjects = 600 if smoke else 2400
    per_triple_s = TOTAL_SCAN_COST_S / subjects

    start = time.perf_counter()
    seconds_by_cell = {}
    payloads = set()
    for n_shards in SHARD_COUNTS:
        g = build_graph(subjects, shards=n_shards)
        g.scan_cost = lambda shard, n: time.sleep(n * per_triple_s)
        for workers in WORKER_COUNTS:
            pool = (WorkerPool(workers, ThreadExecutor(workers))
                    if workers > 1 else None)
            try:
                t0 = time.perf_counter()
                result = query(g, SCAN_QUERY, pool=pool, batch_size=256)
                cell_s = time.perf_counter() - t0
            finally:
                if pool is not None:
                    pool.close()
            assert len(result) == subjects
            seconds_by_cell[f"s{n_shards}w{workers}"] = round(cell_s, 4)
            payloads.add(result.to_json())

    identical = float(len(payloads) == 1)
    assert identical == 1.0, (
        f"{len(payloads)} distinct result payloads across the matrix")
    speedup = (seconds_by_cell["s1w1"] / seconds_by_cell["s4w4"])
    assert speedup >= 2.5, seconds_by_cell

    # -- spill leg: bounded build side under a hard ceiling ---------------
    threshold = 32
    observed = []
    spill_mod.SPILL_OBSERVER = observed.append
    try:
        g = build_graph(subjects // 2, shards=2)
        baseline = query(g, SPILL_QUERY)
        spilled = query(g, SPILL_QUERY, spill_threshold=threshold)
    finally:
        spill_mod.SPILL_OBSERVER = None
    assert observed, "spill join never materialized"
    stats = observed[0]
    spill_identical = float(baseline.to_json() == spilled.to_json())
    assert spill_identical == 1.0
    assert stats["peak_build_rows"] <= threshold, stats

    wall_s = time.perf_counter() - start

    emit_bench(
        "shards",
        scan={
            "subjects": subjects,
            "seconds_by_cell": seconds_by_cell,
            "speedup_4x4": round(speedup, 3),
            "identical_results": identical,
        },
        spill={
            "threshold": threshold,
            "build_rows": stats["build_rows"],
            "peak_build_rows": stats["peak_build_rows"],
            "spilled_rows": stats["spilled_rows"],
            "identical_results": spill_identical,
        },
        wall_s=round(wall_s, 3),
    )
    record_summary("sharded data plane: shard x worker matrix", [
        f"subjects={subjects} simulated scan cost "
        f"{TOTAL_SCAN_COST_S:.1f}s split per-triple",
        "cell seconds: " + " ".join(
            f"{k}={v:.2f}" for k, v in sorted(seconds_by_cell.items())),
        f"speedup 4 shards x 4 workers: {speedup:.2f}x "
        f"(identical results at all {len(seconds_by_cell)} cells)",
        f"spill join: build={stats['build_rows']} rows, ceiling "
        f"{threshold}, observed peak {stats['peak_build_rows']}, "
        f"spilled {stats['spilled_rows']}",
    ])
