"""Resilience overhead: what do retries and degraded modes cost?

Three measurements, all wall-clock-meaningful yet sleep-free (backoff
and injected delays run against a fake clock):

- the per-request overhead of routing a fault-free workload through a
  RetryPolicy (should be noise);
- the amortized cost of a workload where every 3rd request fails and is
  retried;
- the throughput of stale-cache degradation when the host is down.
"""

import time

import numpy as np
import pytest

from repro.opendap import DapCache, DapServer, ServerRegistry, open_url
from repro.resilience import FaultSchedule, FaultyServer, RetryPolicy

pytestmark = pytest.mark.benchmark

N_FETCHES = 300
LAI_URL = "dap://vito.test/Copernicus/LAI"


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


def _registry():
    from repro.opendap import DapDataset

    ds = DapDataset("LAI")
    ds.add_variable("time", ["time"], np.arange(4, dtype=np.int32),
                    {"units": "days since 2018-01-01"})
    ds.add_variable("lat", ["lat"], np.linspace(48.8, 48.92, 5))
    ds.add_variable("lon", ["lon"], np.linspace(2.2, 2.5, 6))
    ds.add_variable("LAI", ["time", "lat", "lon"],
                    np.random.default_rng(0).uniform(0, 6, (4, 5, 6)))
    reg = ServerRegistry()
    server = DapServer("vito.test")
    server.mount("Copernicus/LAI", ds)
    reg.register(server)
    return reg


def _constraints():
    return [f"LAI[{i % 4}:{i % 4}][0:4][0:5]" for i in range(N_FETCHES)]


def _policy(clock):
    return RetryPolicy(max_attempts=3, base_delay_s=0.05,
                       clock=clock, sleep=clock.sleep)


def _timed_fetches(remote):
    start = time.perf_counter()
    for ce in _constraints():
        remote.fetch(ce)
    return time.perf_counter() - start


def test_retry_policy_overhead_fault_free(record_summary):
    plain = open_url(LAI_URL, _registry())
    t_plain = _timed_fetches(plain)

    clock = _Clock()
    retried = open_url(LAI_URL, _registry(), retry_policy=_policy(clock))
    t_retry = _timed_fetches(retried)

    overhead = (t_retry / t_plain - 1.0) * 100.0
    record_summary("Resilience: retry-policy overhead (fault-free)", [
        f"{N_FETCHES} fetches plain:        {t_plain * 1e3:8.1f} ms",
        f"{N_FETCHES} fetches via policy:   {t_retry * 1e3:8.1f} ms",
        f"overhead:                   {overhead:+6.1f} %",
    ])
    assert retried.stats.retries == 0


def test_retry_amortization_every_third_failing(record_summary):
    clock = _Clock()
    registry = _registry()
    registry.wrap("vito.test",
                  lambda s: FaultyServer(s, FaultSchedule(fail_every=3)))
    remote = open_url(LAI_URL, registry, retry_policy=_policy(clock))
    elapsed = _timed_fetches(remote)
    stats = remote.stats
    record_summary("Resilience: every-3rd-request failing", [
        f"logical requests:  {stats.logical_requests}",
        f"physical attempts: {stats.attempts}",
        f"retries:           {stats.retries}",
        f"simulated backoff: {clock.now:8.2f} s (fake clock)",
        f"real wall time:    {elapsed * 1e3:8.1f} ms",
    ])
    assert stats.failures == 0


def test_stale_serve_throughput_host_down(record_summary):
    clock = _Clock()
    registry = _registry()
    cache = DapCache(ttl_s=60, clock=clock, serve_stale=True)
    faulty = registry.wrap("vito.test",
                           lambda s: FaultyServer(s, FaultSchedule()))
    remote = open_url(LAI_URL, registry, cache=cache,
                      retry_policy=_policy(clock))
    for ce in _constraints():
        remote.fetch(ce)  # prime the cache
    clock.now += 120  # everything expires
    faulty.schedule = FaultSchedule.dead()

    start = time.perf_counter()
    for ce in _constraints():
        assert remote.fetch(ce).stale
    elapsed = time.perf_counter() - start
    record_summary("Resilience: stale-cache degradation (host down)", [
        f"stale serves:      {remote.stats.stale_serves}",
        f"failed refetches:  {remote.stats.failures}",
        f"wall time:         {elapsed * 1e3:8.1f} ms "
        f"({N_FETCHES / elapsed:,.0f} stale serves/s)",
    ])
