"""Resilience overhead: what do retries and degraded modes cost?

Three measurements, all wall-clock-meaningful yet sleep-free (backoff
and injected delays run against a fake clock):

- the per-request overhead of routing a fault-free workload through a
  RetryPolicy (should be noise);
- the amortized cost of a workload where every 3rd request fails and is
  retried;
- the throughput of stale-cache degradation when the host is down;
- the tail-latency effect of hedged requests through an EndpointPool,
  with and without slow-endpoint injection (emits out/BENCH_chaos.json
  for the chaos-smoke regression gate).
"""

import time

import numpy as np
import pytest

from repro.opendap import DapCache, DapServer, ServerRegistry, open_url
from repro.resilience import (EndpointPool, FaultSchedule, FaultyServer,
                              RetryPolicy)

pytestmark = pytest.mark.benchmark

N_FETCHES = 300
LAI_URL = "dap://vito.test/Copernicus/LAI"


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


def _registry():
    from repro.opendap import DapDataset

    ds = DapDataset("LAI")
    ds.add_variable("time", ["time"], np.arange(4, dtype=np.int32),
                    {"units": "days since 2018-01-01"})
    ds.add_variable("lat", ["lat"], np.linspace(48.8, 48.92, 5))
    ds.add_variable("lon", ["lon"], np.linspace(2.2, 2.5, 6))
    ds.add_variable("LAI", ["time", "lat", "lon"],
                    np.random.default_rng(0).uniform(0, 6, (4, 5, 6)))
    reg = ServerRegistry()
    server = DapServer("vito.test")
    server.mount("Copernicus/LAI", ds)
    reg.register(server)
    return reg


def _constraints():
    return [f"LAI[{i % 4}:{i % 4}][0:4][0:5]" for i in range(N_FETCHES)]


def _policy(clock):
    return RetryPolicy(max_attempts=3, base_delay_s=0.05,
                       clock=clock, sleep=clock.sleep)


def _timed_fetches(remote):
    start = time.perf_counter()
    for ce in _constraints():
        remote.fetch(ce)
    return time.perf_counter() - start


def test_retry_policy_overhead_fault_free(record_summary):
    plain = open_url(LAI_URL, _registry())
    t_plain = _timed_fetches(plain)

    clock = _Clock()
    retried = open_url(LAI_URL, _registry(), retry_policy=_policy(clock))
    t_retry = _timed_fetches(retried)

    overhead = (t_retry / t_plain - 1.0) * 100.0
    record_summary("Resilience: retry-policy overhead (fault-free)", [
        f"{N_FETCHES} fetches plain:        {t_plain * 1e3:8.1f} ms",
        f"{N_FETCHES} fetches via policy:   {t_retry * 1e3:8.1f} ms",
        f"overhead:                   {overhead:+6.1f} %",
    ])
    assert retried.stats.retries == 0


def test_retry_amortization_every_third_failing(record_summary):
    clock = _Clock()
    registry = _registry()
    registry.wrap("vito.test",
                  lambda s: FaultyServer(s, FaultSchedule(fail_every=3)))
    remote = open_url(LAI_URL, registry, retry_policy=_policy(clock))
    elapsed = _timed_fetches(remote)
    stats = remote.stats
    record_summary("Resilience: every-3rd-request failing", [
        f"logical requests:  {stats.logical_requests}",
        f"physical attempts: {stats.attempts}",
        f"retries:           {stats.retries}",
        f"simulated backoff: {clock.now:8.2f} s (fake clock)",
        f"real wall time:    {elapsed * 1e3:8.1f} ms",
    ])
    assert stats.failures == 0


# -- hedged-request tail-latency sweep ------------------------------------
#
# All latency here is *virtual*: the work function advances a fake
# clock by a seeded per-request draw, so every percentile below is a
# deterministic function of the seed — exactly reproducible across
# machines, which is what lets the chaos-smoke CI job gate these
# numbers against a committed baseline.
SPIKE_S = 0.100          # a slow endpoint serves in ~100 ms, not ~10 ms
SLOW_FRACTION = 0.10     # 10 % of requests hit one


def _hedge_sweep(n_requests, hedge, inject):
    """Drive *n_requests* through a 3-replica pool; return the
    per-request effective latencies (what a client would see) and the
    pool (for its counters).

    The slow-endpoint injection is request-bound — the spiked draw
    hits the *primary* attempt only, modelling a transient stall (GC
    pause, cold shard) that a hedge to a sibling replica escapes.
    """
    rng = np.random.default_rng(7)
    base = rng.uniform(0.008, 0.012, size=(n_requests, 2))
    slow = rng.random(n_requests) < SLOW_FRACTION
    clock = _Clock()
    pool = EndpointPool(
        "sweep", [(f"r{i}", f"replica-{i}") for i in range(3)],
        clock=clock, hedge=hedge,
        # p80 of the pool-wide window sits just above the fast band, so
        # every spiked request (and only ~20 % of fast ones) hedges.
        hedge_quantile=0.8, hedge_warmup=16)
    latencies = []
    for i in range(n_requests):
        attempt = [0]

        def work(endpoint, child, i=i, attempt=attempt):
            delay = base[i][min(attempt[0], 1)]
            if inject and slow[i] and attempt[0] == 0:
                delay += SPIKE_S
            attempt[0] += 1
            clock.now += delay
            return endpoint

        pool.call(work)
        latencies.append(pool.last_outcome.effective_latency_s)
    return np.asarray(latencies), pool


def test_hedged_tail_latency_sweep(record_summary, emit_bench, smoke):
    n = 600 if smoke else 2000

    def stats(latencies):
        return {"p50_s": round(float(np.percentile(latencies, 50)), 6),
                "p99_s": round(float(np.percentile(latencies, 99)), 6),
                "mean_s": round(float(latencies.mean()), 6)}

    plain_lat, _ = _hedge_sweep(n, hedge=False, inject=True)
    hedged_lat, pool = _hedge_sweep(n, hedge=True, inject=True)
    plain, hedged = stats(plain_lat), stats(hedged_lat)
    improvement = plain["p99_s"] / hedged["p99_s"]
    amplification = pool.counters["dispatches"] / n

    nf_plain_lat, _ = _hedge_sweep(n, hedge=False, inject=False)
    nf_hedged_lat, nf_pool = _hedge_sweep(n, hedge=True, inject=False)
    nf_plain, nf_hedged = stats(nf_plain_lat), stats(nf_hedged_lat)

    record_summary("Resilience: hedged requests vs p99 "
                   f"({SLOW_FRACTION:.0%} slow-endpoint injection)", [
        f"requests per run:        {n}",
        f"injected   p99 unhedged: {plain['p99_s'] * 1e3:8.1f} ms",
        f"injected   p99 hedged:   {hedged['p99_s'] * 1e3:8.1f} ms "
        f"({improvement:.1f}x better)",
        f"hedges fired / won:      {pool.counters['hedges']} / "
        f"{pool.counters['hedge_wins']}",
        f"dispatch amplification:  {amplification:5.2f}x",
        f"no-fault   p99 unhedged: {nf_plain['p99_s'] * 1e3:8.1f} ms",
        f"no-fault   p99 hedged:   {nf_hedged['p99_s'] * 1e3:8.1f} ms",
    ])
    emit_bench(
        "chaos",
        hedging={
            "requests": n,
            "slow_fraction": SLOW_FRACTION,
            "spike_s": SPIKE_S,
            "injected": {
                "unhedged": plain,
                "hedged": hedged,
                "p99_improvement": round(improvement, 4),
                "hedges": pool.counters["hedges"],
                "hedge_wins": pool.counters["hedge_wins"],
                "dispatch_amplification": round(amplification, 4),
            },
            "no_fault": {
                "unhedged": nf_plain,
                "hedged": nf_hedged,
                "p99_ratio": round(
                    nf_hedged["p99_s"] / nf_plain["p99_s"], 4),
                "hedges": nf_pool.counters["hedges"],
            },
        },
    )
    # The acceptance bar, asserted where it is measured: hedging must
    # beat the injected tail and must not regress the healthy one.
    assert hedged["p99_s"] < plain["p99_s"]
    assert nf_hedged["p99_s"] <= nf_plain["p99_s"] * 1.05


def test_stale_serve_throughput_host_down(record_summary):
    clock = _Clock()
    registry = _registry()
    cache = DapCache(ttl_s=60, clock=clock, serve_stale=True)
    faulty = registry.wrap("vito.test",
                           lambda s: FaultyServer(s, FaultSchedule()))
    remote = open_url(LAI_URL, registry, cache=cache,
                      retry_policy=_policy(clock))
    for ce in _constraints():
        remote.fetch(ce)  # prime the cache
    clock.now += 120  # everything expires
    faulty.schedule = FaultSchedule.dead()

    start = time.perf_counter()
    for ce in _constraints():
        assert remote.fetch(ce).stale
    elapsed = time.perf_counter() - start
    record_summary("Resilience: stale-cache degradation (host down)", [
        f"stale serves:      {remote.stats.stale_serves}",
        f"failed refetches:  {remote.stats.failures}",
        f"wall time:         {elapsed * 1e3:8.1f} ms "
        f"({N_FETCHES / elapsed:,.0f} stale serves/s)",
    ])
