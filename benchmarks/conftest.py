"""Shared benchmark fixtures.

The simulated network latency (DAP round trips) is what makes the
virtual-vs-materialized comparison meaningful: the LatencyModel sleeps
for a base round-trip per request plus a throughput term per byte,
calibrated to a plausible WAN (30 ms RTT, ~4 MB/s effective).
"""

import json
import os
import pathlib

import pytest

from repro.core import GreennessCaseStudy
from repro.opendap import LatencyModel


def pytest_addoption(parser):
    parser.addoption(
        "--run-benchmarks", action="store_true", default=False,
        help="run modules marked `benchmark` (never part of the "
             "tier-1 `python -m pytest -x -q` gate)",
    )
    parser.addoption(
        "--profile", action="store_true", default=False,
        help="after each benchmark, run one extra traced pass: print "
             "the top-5 spans by self-time and write the full trace "
             "JSON under out/TRACE_<name>.json",
    )
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="shrink workloads to CI scale; the parallel sweeps emit "
             "the same out/BENCH_*.json metrics from seconds-long runs "
             "(the bench-smoke regression gate runs in this mode)",
    )


def pytest_collection_modifyitems(config, items):
    """Opt-out: `benchmark`-marked items only run on explicit request.

    The tier-1 gate collects `tests/` only, so this is belt and braces
    for direct `pytest benchmarks` invocations.
    """
    if config.getoption("--run-benchmarks") \
            or os.environ.get("RUN_BENCHMARKS"):
        return
    skip = pytest.mark.skip(reason="benchmark: pass --run-benchmarks "
                                   "(or set RUN_BENCHMARKS) to run")
    for item in items:
        if "benchmark" in item.keywords:
            item.add_marker(skip)

SUMMARY_PATH = pathlib.Path(__file__).resolve().parent.parent / "out" \
    / "experiment_summaries.txt"
OUT_DIR = SUMMARY_PATH.parent


@pytest.fixture(scope="session")
def smoke(request):
    return bool(request.config.getoption("--smoke"))


@pytest.fixture(scope="session")
def emit_bench():
    """Merge metric fields into out/BENCH_<name>.json.

    Benchmark emitters write under out/ only (gitignored); the
    committed reference copies that benchmarks/check_regression.py
    compares against live in benchmarks/baselines/.
    """
    def emit(name, **fields):
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / f"BENCH_{name}.json"
        data = json.loads(path.read_text()) if path.exists() else {}
        data.update(fields)
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    return emit


@pytest.fixture(scope="session")
def record_summary():
    """Print an experiment summary and persist it to out/ for
    EXPERIMENTS.md."""
    SUMMARY_PATH.parent.mkdir(exist_ok=True)

    def record(title, lines):
        block = f"\n=== {title} ===\n" + "\n".join(lines) + "\n"
        print(block)
        with open(SUMMARY_PATH, "a", encoding="utf-8") as fh:
            fh.write(block)

    return record

class Profiler:
    """One traced pass per benchmark (outside the timed rounds, so the
    tracing overhead never pollutes the measured numbers)."""

    def __init__(self, out_dir):
        self.out_dir = out_dir

    def profile(self, name, fn):
        """Run ``fn(tracer)`` once under a fresh tracer; print the
        top-5 spans by self-time and dump the trace JSON."""
        from repro.observability import Tracer, dump_trace, top_spans

        tracer = Tracer()
        result = fn(tracer)
        # the last root: warm-up/priming runs may have produced earlier
        # trace trees on the same tracer
        root = tracer.roots[-1]
        lines = [f"\n--- profile: {name} (top spans by self-time) ---"]
        for span in top_spans(root, n=5):
            lines.append(
                f"  {span.name:<32} "
                f"self={span.self_time_s * 1e3:9.3f} ms  "
                f"total={span.duration_s * 1e3:9.3f} ms"
            )
        path = self.out_dir / f"TRACE_{name}.json"
        path.write_text(dump_trace(root) + "\n", encoding="utf-8")
        lines.append(f"  trace: {path}")
        print("\n".join(lines))
        return result


@pytest.fixture(scope="session")
def profiler(request):
    """``None`` unless --profile was passed; benchmarks guard on it."""
    if not request.config.getoption("--profile"):
        return None
    SUMMARY_PATH.parent.mkdir(exist_ok=True)
    return Profiler(SUMMARY_PATH.parent)


WAN_BASE_S = 0.03
WAN_PER_MB_S = 0.25


@pytest.fixture(scope="session")
def case_study():
    """The Section-4 scenario with WAN-like latency on the DAP server."""
    return GreennessCaseStudy(
        n_dekads=3,
        cloud_fraction=0.0,
        latency=LatencyModel(base_s=WAN_BASE_S, per_mb_s=WAN_PER_MB_S,
                             sleep=True),
    )


@pytest.fixture(scope="session")
def materialized_store(case_study):
    """Strabon store built once (materialization cost is paid offline)."""
    return case_study.materialized_store()
