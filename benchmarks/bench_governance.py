"""Governance overhead and shed latency.

Two questions a capacity planner asks before turning budgets on:

- what does threading a QueryBudget through the evaluator cost on a
  workload that never hits a limit (queries/sec with vs without), and
- when the admission controller sheds, how fast does the caller learn
  (shed latency p99 — the whole point of load shedding is that the
  answer is "immediately").

Emits ``out/BENCH_governance.json`` for trend tracking.
"""

import json
import pathlib
import time

import pytest

from repro.governance import AdmissionController, Overloaded, QueryBudget
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql import query

pytestmark = pytest.mark.benchmark

OUT_PATH = pathlib.Path(__file__).resolve().parent.parent / "out" \
    / "BENCH_governance.json"

N_QUERIES = 150
N_SHED_PROBES = 2000

QUERY = """
PREFIX lai: <http://www.app-lab.eu/lai/>
SELECT ?obs ?value WHERE {
  ?obs lai:lai ?value .
  FILTER(?value > 1.0)
} ORDER BY ?obs LIMIT 50
"""


def _graph(n=400):
    g = Graph()
    lai = "http://www.app-lab.eu/lai/"
    for i in range(n):
        g.add(IRI(f"{lai}obs/{i}"), IRI(f"{lai}lai"),
              Literal(float(i % 7)))
    return g


def _qps(g, make_budget):
    start = time.perf_counter()
    for __ in range(N_QUERIES):
        query(g, QUERY, budget=make_budget())
    return N_QUERIES / (time.perf_counter() - start)


def test_budget_overhead_qps(record_summary):
    g = _graph()
    qps_plain = _qps(g, lambda: None)
    qps_governed = _qps(
        g, lambda: QueryBudget(deadline_s=30.0, max_rows=10_000,
                               max_triples=1_000_000, max_fetches=100)
    )
    overhead = (qps_plain / qps_governed - 1.0) * 100.0
    record_summary("Governance: budget overhead on in-limit workload", [
        f"queries/sec ungoverned: {qps_plain:10.1f}",
        f"queries/sec governed:   {qps_governed:10.1f}",
        f"overhead:               {overhead:+9.1f} %",
    ])
    _emit(qps_plain=qps_plain, qps_governed=qps_governed)


def test_shed_latency_p99(record_summary):
    admission = AdmissionController(max_concurrent=1, max_queue_depth=0)
    slot = admission.admit()  # saturate the pool
    try:
        latencies = []
        for __ in range(N_SHED_PROBES):
            start = time.perf_counter()
            with pytest.raises(Overloaded):
                admission.admit()
            latencies.append(time.perf_counter() - start)
    finally:
        slot.release()
    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[int(len(latencies) * 0.99)]
    record_summary("Governance: shed latency (pool full, no queue)", [
        f"probes:       {N_SHED_PROBES}",
        f"shed p50:     {p50 * 1e6:8.1f} us",
        f"shed p99:     {p99 * 1e6:8.1f} us",
        f"sheds/sec:    {1.0 / max(p50, 1e-9):,.0f}",
    ])
    assert admission.stats.shed == N_SHED_PROBES
    _emit(shed_latency_p50_s=p50, shed_latency_p99_s=p99)


def _emit(**fields):
    OUT_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if OUT_PATH.exists():
        data = json.loads(OUT_PATH.read_text())
    data.update(fields)
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
