"""Experiments E2/E9 — the case-study queries and the Figure 4 map."""

import pytest

from repro.core.casestudy import LISTING1, PREFIXES

pytestmark = pytest.mark.benchmark

TIMINGS = {}


def test_listing1_bois_de_boulogne(benchmark, materialized_store):
    """Listing 1: LAI of the Bois de Boulogne (spatial join on parks)."""
    result = benchmark.pedantic(
        materialized_store.query, args=(LISTING1,), rounds=3, iterations=1
    )
    TIMINGS["listing1"] = benchmark.stats.stats.median
    assert len(result) == 12  # 4 grid points x 3 dekads


def test_park_vs_industrial(benchmark, case_study, materialized_store):
    green, industrial = benchmark.pedantic(
        case_study.park_vs_industrial_lai,
        args=(materialized_store,), rounds=1, iterations=1,
    )
    TIMINGS["green"] = green
    TIMINGS["industrial"] = industrial
    assert green > industrial


def test_figure4_map_build(benchmark, case_study, materialized_store):
    tm = benchmark.pedantic(
        case_study.build_map, args=(materialized_store,),
        rounds=1, iterations=1,
    )
    assert len(tm.layers) == 5


def test_figure4_svg_render(benchmark, case_study, materialized_store):
    tm = case_study.build_map(materialized_store)
    svg = benchmark.pedantic(tm.to_svg, rounds=3, iterations=1)
    assert svg.startswith("<svg")


def test_zz_summary(benchmark, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "green" not in TIMINGS:
        pytest.skip("benchmarks did not run")
    record_summary(
        "E2/E9: greenness of Paris",
        [
            f"Listing 1 query    : {TIMINGS['listing1'] * 1000:8.2f} ms",
            f"mean LAI, parks    : {TIMINGS['green']:8.2f}",
            f"mean LAI, industry : {TIMINGS['industrial']:8.2f}",
            "paper (Fig 4): green urban areas show higher LAI than "
            "industrial areas",
        ],
    )
    assert TIMINGS["green"] > TIMINGS["industrial"]
