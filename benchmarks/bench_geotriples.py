"""Experiment E7 — GeoTriples throughput, serial vs parallel (§2/§5).

"It has been shown that GeoTriples is very efficient especially when
its mapping processor is implemented using Apache Hadoop" — our
parallel processor partitions rows over worker processes; the summary
reports rows/s and the parallel speedup.
"""

import pytest

from repro.geometry import Feature, FeatureCollection, Polygon
from repro.geotriples import (
    LogicalSource,
    MappingProcessor,
    ParallelMappingProcessor,
    TermMap,
    TriplesMap,
)
from repro.rdf import IRI, XSD

N_FEATURES = 3000
EX = "http://example.org/"

TIMINGS = {}


def build_map():
    fc = FeatureCollection()
    for i in range(N_FEATURES):
        x = (i % 100) * 0.01
        y = (i // 100) * 0.01
        fc.append(
            Feature(
                Polygon.box(x, y, x + 0.008, y + 0.008),
                {"name": f"area{i}", "population": i * 13 % 9999},
                feature_id=str(i),
            )
        )
    tmap = TriplesMap(
        name="bulk",
        logical_source=LogicalSource("geojson", fc),
        subject_map=TermMap(template=EX + "area/{gid}"),
        classes=[IRI(EX + "Area")],
        geometry_column="wkt",
    )
    tmap.add_pom(IRI(EX + "hasName"),
                 TermMap(column="name", term_type="literal"))
    tmap.add_pom(IRI(EX + "hasPopulation"),
                 TermMap(column="population", term_type="literal",
                         datatype=XSD.integer))
    return tmap


@pytest.fixture(scope="module")
def tmap():
    return build_map()


def test_serial_processor(benchmark, tmap):
    graph = benchmark.pedantic(
        lambda: MappingProcessor([tmap]).run(), rounds=3, iterations=1
    )
    TIMINGS["serial"] = benchmark.stats.stats.median
    assert len(graph) == N_FEATURES * 6


def test_partitioned_to_files(benchmark, tmap, tmp_path_factory):
    """Hadoop-style partitioned execution writing part-files."""
    def run():
        out = tmp_path_factory.mktemp("parts")
        return ParallelMappingProcessor([tmap], workers=2).run_to_files(
            str(out)
        )

    parts = benchmark.pedantic(run, rounds=2, iterations=1)
    TIMINGS["partitioned"] = benchmark.stats.stats.median
    assert sum(count for __, count in parts) == N_FEATURES * 6


def test_parallel_in_memory(benchmark, tmap):
    graph = benchmark.pedantic(
        lambda: ParallelMappingProcessor([tmap], workers=2).run(),
        rounds=2, iterations=1,
    )
    TIMINGS["parallel_2"] = benchmark.stats.stats.median
    assert len(graph) == N_FEATURES * 6


def test_zz_summary(benchmark, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "serial" not in TIMINGS:
        pytest.skip("benchmarks did not run")
    import os

    triples = N_FEATURES * 6
    serial = TIMINGS["serial"]
    lines = [
        f"serial      : {serial:8.3f} s "
        f"({triples / serial:10.0f} triples/s)",
    ]
    for key in ("partitioned", "parallel_2"):
        if key in TIMINGS:
            t = TIMINGS[key]
            lines.append(
                f"{key:12s}: {t:8.3f} s ({triples / t:10.0f} triples/s, "
                f"x{serial / t:4.2f} vs serial)"
            )
    cores = len(os.sched_getaffinity(0))
    lines.append(f"host cores: {cores}")
    if cores == 1:
        lines.append(
            "NOTE: single-core host — worker processes time-slice, so "
            "only IPC overhead is visible; the partitioned mode's chunks "
            "are independent and scale with cores (the Hadoop claim)."
        )
    lines.append("paper: GeoTriples 'very efficient especially when its "
                 "mapping processor is implemented using Apache Hadoop'")
    record_summary("E7: GeoTriples mapping throughput", lines)
