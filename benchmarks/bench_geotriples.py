"""Experiment E7 — GeoTriples throughput, serial vs parallel (§2/§5).

"It has been shown that GeoTriples is very efficient especially when
its mapping processor is implemented using Apache Hadoop" — our
parallel processor partitions rows over worker processes; the summary
reports rows/s and the parallel speedup.
"""

import time

import pytest

from repro.geometry import Feature, FeatureCollection, Polygon
from repro.geotriples import (
    LogicalSource,
    MappingProcessor,
    ParallelMappingProcessor,
    TermMap,
    TriplesMap,
)
from repro.rdf import IRI, XSD

pytestmark = pytest.mark.benchmark

N_FEATURES = 3000
EX = "http://example.org/"

WORKER_SWEEP = [1, 2, 4]
SWEEP_PARTITIONS = 8
PARTITION_READ_S = 0.02

TIMINGS = {}


def build_map(n_features=N_FEATURES):
    fc = FeatureCollection()
    for i in range(n_features):
        x = (i % 100) * 0.01
        y = (i // 100) * 0.01
        fc.append(
            Feature(
                Polygon.box(x, y, x + 0.008, y + 0.008),
                {"name": f"area{i}", "population": i * 13 % 9999},
                feature_id=str(i),
            )
        )
    tmap = TriplesMap(
        name="bulk",
        logical_source=LogicalSource("geojson", fc),
        subject_map=TermMap(template=EX + "area/{gid}"),
        classes=[IRI(EX + "Area")],
        geometry_column="wkt",
    )
    tmap.add_pom(IRI(EX + "hasName"),
                 TermMap(column="name", term_type="literal"))
    tmap.add_pom(IRI(EX + "hasPopulation"),
                 TermMap(column="population", term_type="literal",
                         datatype=XSD.integer))
    return tmap


@pytest.fixture(scope="module")
def tmap():
    return build_map()


def test_serial_processor(benchmark, tmap):
    graph = benchmark.pedantic(
        lambda: MappingProcessor([tmap]).run(), rounds=3, iterations=1
    )
    TIMINGS["serial"] = benchmark.stats.stats.median
    assert len(graph) == N_FEATURES * 6


def test_partitioned_to_files(benchmark, tmap, tmp_path_factory):
    """Hadoop-style partitioned execution writing part-files."""
    def run():
        out = tmp_path_factory.mktemp("parts")
        return ParallelMappingProcessor([tmap], workers=2).run_to_files(
            str(out)
        )

    parts = benchmark.pedantic(run, rounds=2, iterations=1)
    TIMINGS["partitioned"] = benchmark.stats.stats.median
    assert sum(count for __, count in parts) == N_FEATURES * 6


def test_parallel_in_memory(benchmark, tmap):
    graph = benchmark.pedantic(
        lambda: ParallelMappingProcessor([tmap], workers=2).run(),
        rounds=2, iterations=1,
    )
    TIMINGS["parallel_2"] = benchmark.stats.stats.median
    assert len(graph) == N_FEATURES * 6


def _best_of(fn, n):
    best, result = None, None
    for __ in range(n):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_parallel_sweep(record_summary, emit_bench, smoke):
    """Worker sweep with simulated partition reads: each of the 8
    partitions pays a fixed read latency (the Hadoop-style input
    split), so threads overlap I/O and the speedup is visible even on
    a single-core host. Partition count is fixed across the sweep, so
    every worker count produces the identical graph."""
    n_rows = 400 if smoke else 2000
    rounds = 2 if smoke else 3
    # The read cost of a Hadoop input split scales with its size:
    # 0.4 ms per row keeps the workload I/O-dominated at every scale
    # (20 ms per 50-row smoke partition, 100 ms per 250-row full one).
    read_s = n_rows // SWEEP_PARTITIONS * (PARTITION_READ_S / 50)
    tmap = build_map(n_rows)
    expected = None
    timings = {}
    for workers in WORKER_SWEEP:
        def run():
            return ParallelMappingProcessor(
                [tmap], workers=workers, partitions=SWEEP_PARTITIONS,
                partition_read_s=read_s).run()

        best, graph = _best_of(run, rounds)
        if expected is None:
            expected = set(graph)
        assert set(graph) == expected, f"workers={workers} diverged"
        timings[workers] = best
    speedup_4 = timings[1] / timings[WORKER_SWEEP[-1]]
    emit_bench("parallel", geotriples={
        "n_rows": n_rows,
        "partitions": SWEEP_PARTITIONS,
        "partition_read_s": round(read_s, 4),
        "seconds_by_workers": {str(w): round(t, 4)
                               for w, t in timings.items()},
        "speedup_workers_4": round(speedup_4, 2),
    })
    record_summary(
        "E7b: GeoTriples worker sweep (simulated partition reads)",
        [f"workers={w}: {t:7.3f} s (x{timings[1] / t:4.2f} vs serial)"
         for w, t in sorted(timings.items())]
        + [f"partitions={SWEEP_PARTITIONS}, "
           f"read={read_s * 1000:.0f} ms each, "
           f"rows={n_rows}"],
    )
    assert speedup_4 >= 2.0, f"expected >=2x at 4 workers, got {speedup_4:.2f}"


def test_zz_summary(benchmark, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "serial" not in TIMINGS:
        pytest.skip("benchmarks did not run")
    import os

    triples = N_FEATURES * 6
    serial = TIMINGS["serial"]
    lines = [
        f"serial      : {serial:8.3f} s "
        f"({triples / serial:10.0f} triples/s)",
    ]
    for key in ("partitioned", "parallel_2"):
        if key in TIMINGS:
            t = TIMINGS[key]
            lines.append(
                f"{key:12s}: {t:8.3f} s ({triples / t:10.0f} triples/s, "
                f"x{serial / t:4.2f} vs serial)"
            )
    cores = len(os.sched_getaffinity(0))
    lines.append(f"host cores: {cores}")
    if cores == 1:
        lines.append(
            "NOTE: single-core host — worker processes time-slice, so "
            "only IPC overhead is visible; the partitioned mode's chunks "
            "are independent and scale with cores (the Hadoop claim)."
        )
    lines.append("paper: GeoTriples 'very efficient especially when its "
                 "mapping processor is implemented using Apache Hadoop'")
    record_summary("E7: GeoTriples mapping throughput", lines)
