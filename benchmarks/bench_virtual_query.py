"""Experiment E3 — Listings 2+3: GeoSPARQL over OPeNDAP, end to end.

Times the complete virtual path (parse mapping → unfold → MadIS
opendap virtual table → DAP fetch → instantiate → evaluate) for the
paper's Listing 3 query, plus a spatially filtered variant that
exercises the SQL pushdown.
"""

import pytest

from repro.core.casestudy import LISTING3, PREFIXES

pytestmark = pytest.mark.benchmark

SPATIAL_QUERY = PREFIXES + """
SELECT DISTINCT ?s ?lai WHERE {
  ?s lai:lai ?lai ; geo:hasGeometry ?g .
  ?g geo:asWKT ?w .
  FILTER(geof:sfWithin(?w,
    "POLYGON ((2.2 48.84, 2.3 48.84, 2.3 48.9, 2.2 48.9, 2.2 48.84))"^^geo:wktLiteral))
}
"""


@pytest.fixture(scope="module")
def warm_engine(case_study):
    engine, operator = case_study.virtual_endpoint(window_minutes=60)
    engine.query(LISTING3)
    return engine


def test_listing3_cold(benchmark, case_study):
    def run():
        engine, __ = case_study.virtual_endpoint(window_minutes=0)
        return engine.query(LISTING3)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(result) > 500


def test_listing3_warm(benchmark, warm_engine):
    result = benchmark.pedantic(
        warm_engine.query, args=(LISTING3,), rounds=3, iterations=1
    )
    assert len(result) > 500


def test_spatial_filter_pushdown(benchmark, warm_engine):
    result = benchmark.pedantic(
        warm_engine.query, args=(SPATIAL_QUERY,), rounds=3, iterations=1
    )
    assert 0 < len(result) < 500
    assert any("ST_WITHIN" in sql for sql in warm_engine.last_sql)
