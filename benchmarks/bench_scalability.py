"""Experiment E15 — store scalability (the §5 open problem, measured).

Section 5: "much remains to be done for Strabon to scale to the
petabytes of Copernicus data." We obviously cannot measure petabytes;
this bench measures how load time and a fixed spatial-selection query
scale as the Geographica workload doubles, giving the open problem a
concrete baseline curve (near-linear load, sub-linear query thanks to
the R-tree).
"""

import pytest

from repro.geographica import (
    generate_workload,
    load_strabon,
    queries_by_key,
)

pytestmark = pytest.mark.benchmark

SCALES = [1, 2, 4]
RESULTS = {}

QUERY = queries_by_key()["SS1"].sparql


@pytest.fixture(scope="module")
def stores():
    out = {}
    for scale in SCALES:
        out[scale] = load_strabon(generate_workload(scale=scale))
    return out


@pytest.mark.parametrize("scale", SCALES)
def test_load_time(benchmark, scale):
    workload = generate_workload(scale=scale)
    store = benchmark.pedantic(
        lambda: load_strabon(workload), rounds=1, iterations=1
    )
    RESULTS[f"load_{scale}"] = (benchmark.stats.stats.median, len(store))


@pytest.mark.parametrize("scale", SCALES)
def test_spatial_selection(benchmark, stores, scale):
    store = stores[scale]
    result = benchmark.pedantic(store.query, args=(QUERY,),
                                rounds=3, iterations=1)
    RESULTS[f"query_{scale}"] = (benchmark.stats.stats.median, len(result))
    assert len(result) > 0


def test_zz_summary(benchmark, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "load_1" not in RESULTS:
        pytest.skip("benchmarks did not run")
    lines = []
    for scale in SCALES:
        load_t, triples = RESULTS[f"load_{scale}"]
        query_t, rows = RESULTS[f"query_{scale}"]
        lines.append(
            f"scale x{scale}: {triples:>7} triples | load "
            f"{load_t:6.2f} s ({triples / load_t:8.0f} t/s) | "
            f"SS1 query {query_t * 1000:7.2f} ms ({rows} rows)"
        )
    base_q = RESULTS["query_1"][0]
    top_q = RESULTS[f"query_{SCALES[-1]}"][0]
    base_rows = RESULTS["query_1"][1]
    top_rows = RESULTS[f"query_{SCALES[-1]}"][1]
    lines.append(
        f"query-time growth at x{SCALES[-1]} data: {top_q / base_q:.1f}x "
        f"for {top_rows / base_rows:.1f}x result rows (R-tree keeps "
        "spatial selections near-linear in output, not input)"
    )
    lines.append("paper (§5 open problem): scaling the store to "
                 "Copernicus volumes remains future work")
    record_summary("E15: store scalability baseline", lines)
    # shape: growth tracks the result size, not a quadratic blow-up
    assert top_q / base_q < SCALES[-1] * 2.5
