"""Experiment E4 — the paper's headline performance observation.

Section 5: "When the data gets downloaded at query-time, query
execution typically takes two orders of magnitude more time than in
the case where the data is materialized in a database or an RDF store."

Three modes over the same LAI data and the same query (Listing 3 shape):

- ``materialized``  — Strabon store, data already in memory/indexes;
- ``virtual_cold``  — Ontop-spatial over OPeNDAP, no cache (w=0):
  every query pays DAP round trips + transfer + row flattening;
- ``virtual_warm``  — same engine with the w-minute cache primed.

The final summary test prints the measured ratio; the reproduction
target is the *shape* (cold virtual ≫ materialized; warm in between).
"""

import pytest

from repro.core.casestudy import LISTING3

pytestmark = pytest.mark.benchmark

RATIOS = {}


@pytest.fixture(scope="module")
def virtual_cold(case_study):
    engine, operator = case_study.virtual_endpoint(window_minutes=0)
    return engine


@pytest.fixture(scope="module")
def virtual_warm(case_study):
    engine, operator = case_study.virtual_endpoint(window_minutes=60)
    engine.query(LISTING3)  # prime the cache
    return engine


def test_materialized_query(benchmark, materialized_store, profiler):
    result = benchmark.pedantic(
        materialized_store.query, args=(LISTING3,), rounds=5, iterations=1
    )
    RATIOS["materialized"] = benchmark.stats.stats.median
    assert len(result) > 0
    if profiler:
        profiler.profile(
            "materialized",
            lambda tracer: materialized_store.query(LISTING3,
                                                    tracer=tracer),
        )


def test_virtual_cold_query(benchmark, virtual_cold, profiler, case_study):
    result = benchmark.pedantic(
        virtual_cold.query, args=(LISTING3,), rounds=3, iterations=1
    )
    RATIOS["virtual_cold"] = benchmark.stats.stats.median
    assert len(result) > 0
    if profiler:
        # a fresh engine with the tracer wired through every layer
        # (Ontop -> MadIS -> DAP): w=0 pays the round trips again, so
        # the trace shows where the two orders of magnitude actually go
        def run(tracer):
            engine, __ = case_study.virtual_endpoint(window_minutes=0,
                                                     tracer=tracer)
            return engine.query(LISTING3)

        profiler.profile("virtual_cold", run)


def test_virtual_warm_query(benchmark, virtual_warm, profiler, case_study):
    result = benchmark.pedantic(
        virtual_warm.query, args=(LISTING3,), rounds=3, iterations=1
    )
    RATIOS["virtual_warm"] = benchmark.stats.stats.median
    assert len(result) > 0
    if profiler:
        def run(tracer):
            engine, __ = case_study.virtual_endpoint(window_minutes=60,
                                                     tracer=tracer)
            engine.query(LISTING3)  # prime the cache
            return engine.query(LISTING3)

        profiler.profile("virtual_warm", run)


def test_zz_summary(benchmark, record_summary):
    """Printed last: the measured orders-of-magnitude gap."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not {"materialized", "virtual_cold"} <= set(RATIOS):
        pytest.skip("benchmarks did not run")
    cold_ratio = RATIOS["virtual_cold"] / RATIOS["materialized"]
    warm_ratio = RATIOS["virtual_warm"] / RATIOS["materialized"]
    record_summary(
        "E4: virtual vs materialized (Listing 3 query)",
        [
            f"materialized : {RATIOS['materialized'] * 1000:9.2f} ms",
            f"virtual cold : {RATIOS['virtual_cold'] * 1000:9.2f} ms "
            f"({cold_ratio:6.1f}x)",
            f"virtual warm : {RATIOS['virtual_warm'] * 1000:9.2f} ms "
            f"({warm_ratio:6.1f}x)",
            "paper: cold virtual ~2 orders of magnitude slower than "
            "materialized",
        ],
    )
    # Shape assertions: cold ≫ materialized, warm strictly better than cold.
    assert cold_ratio > 10
    assert RATIOS["virtual_warm"] < RATIOS["virtual_cold"]
