"""Experiment E6 — Geographica micro benchmark, Strabon vs Ontop-spatial.

Section 5: "Ontop-spatial is also faster than Strabon on most of the
queries of the benchmark Geographica" (when the data lives in a
database), while "for more costly operations (e.g., spatial joins of
complex geometries), it is better to materialize the data."

Every micro query runs on both engines; the summary prints the paper's
per-query winner table and the win counts.
"""

import pytest

from repro.geographica import (
    generate_workload,
    load_ontop,
    load_strabon,
    macro_queries,
    micro_queries,
    run_benchmark,
)

pytestmark = pytest.mark.benchmark

QUERIES = micro_queries() + macro_queries()


@pytest.fixture(scope="module")
def engines():
    workload = generate_workload(scale=1)
    strabon = load_strabon(workload)
    ontop, __ = load_ontop(workload, spatial_indexes=True)
    return {"strabon": strabon, "ontop-spatial": ontop}


@pytest.mark.parametrize("query", QUERIES, ids=[q.key for q in QUERIES])
@pytest.mark.parametrize("engine_name", ["strabon", "ontop-spatial"])
def test_micro_query(benchmark, engines, engine_name, query):
    engine = engines[engine_name]
    result = benchmark.pedantic(
        engine.query, args=(query.sparql,), rounds=2, iterations=1
    )
    assert len(result) >= 0


def test_zz_summary(benchmark, engines, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = run_benchmark(engines, queries=QUERIES, repeat=2, warmup=1)
    # correctness: both engines agree on every query's row count
    for query in QUERIES:
        assert report.rows_agree(query.key), f"{query.key} rows differ"
    wins = report.win_counts()
    record_summary(
        "E6: Geographica micro benchmark",
        [
            report.render(),
            "paper: Ontop-spatial faster on most queries when data is in "
            "a DB; 'for more costly operations (e.g., spatial joins of "
            "complex geometries) it is better to materialize'",
            f"measured wins: {wins}",
            "note: with true SQL unfolding Ontop answers the selective "
            "queries within ~1 ms of the store (winning some); the "
            "residual tilt toward Strabon is a substitution effect — our "
            "Strabon is an in-process Python store with zero per-query "
            "connection/SQL-generation overhead, unlike the PostGIS-"
            "backed original the paper compared against. The paper's "
            "caveat (joins favor materialization) reproduces directly: "
            "SJ1/SJ2/RM1 go to Strabon by a clear margin.",
        ],
    )
