"""Service load harness benchmark: seeded workloads at scale.

The numbers a capacity planner reads off the multi-tenant front end:

- open loop at a fixed offered rate — p50/p99 latency, shed rate,
  plan-cache hit rate, sustained throughput;
- closed loop (clients wait, think, resubmit) — the self-limited
  steady state of the same tenant mix.

Because the whole stack runs in virtual time off one seed, every
metric except ``wall_s`` is **exactly** reproducible across machines —
the regression gate on this file is effectively bitwise for them. The
benchmark also re-runs the open-loop spec and emits
``identical_reports`` (1.0 when the two reports are byte-identical),
so a determinism break fails CI like a performance regression.

Emits ``out/BENCH_service.json``; the committed reference lives in
``benchmarks/baselines/`` (regenerate in ``--smoke`` mode — that is
what the service-smoke CI job runs)::

    python -m pytest benchmarks/bench_service.py \
        --run-benchmarks --smoke -q
    cp out/BENCH_service.json benchmarks/baselines/
"""

import time

import pytest

from repro.service import WorkloadSpec, run_workload

pytestmark = pytest.mark.benchmark


def _open_spec(smoke):
    return WorkloadSpec(
        seed=42,
        clients=400 if smoke else 2000,
        rate_rps=450.0,
        arrival="open",
    )


def _closed_spec(smoke):
    return WorkloadSpec(
        seed=42,
        clients=60 if smoke else 200,
        requests_per_client=3 if smoke else 5,
        arrival="closed",
        think_time_s=0.05,
    )


def test_open_loop_workload(smoke, emit_bench, record_summary):
    spec = _open_spec(smoke)
    start = time.perf_counter()
    report = run_workload(spec)
    wall_s = time.perf_counter() - start
    identical = float(run_workload(spec).to_json() == report.to_json())

    totals = report["totals"]
    latency = report["latency_s"]
    metrics = {
        "clients": spec.clients,
        "rate_rps": spec.rate_rps,
        "p50_s": latency["p50"],
        "p99_s": latency["p99"],
        "mean_s": latency["mean"],
        "completed": totals["completed"],
        "shed_rate": totals["shed_rate"],
        "throughput_rps": totals["throughput_rps"],
        "plan_cache_hit_rate": report["plan_cache"]["hit_rate"],
        "identical_reports": identical,
    }
    emit_bench("service", open_loop=metrics, wall_s=round(wall_s, 3))
    record_summary("service open-loop workload", [
        f"clients={spec.clients} offered={spec.rate_rps:g} rps "
        f"(seed {spec.seed}, virtual time)",
        f"p50={latency['p50'] * 1e3:g} ms  p99={latency['p99'] * 1e3:g} ms"
        f"  mean={latency['mean'] * 1e3:.2f} ms",
        f"completed={totals['completed']}  shed_rate="
        f"{totals['shed_rate']:.3f}  throughput="
        f"{totals['throughput_rps']:.1f} rps",
        f"plan-cache hit rate={report['plan_cache']['hit_rate']:.3f}",
        f"deterministic re-run identical: {bool(identical)}",
        f"wall time {wall_s:.2f}s",
    ])
    assert identical == 1.0


def test_closed_loop_workload(smoke, emit_bench, record_summary):
    spec = _closed_spec(smoke)
    start = time.perf_counter()
    report = run_workload(spec)
    wall_s = time.perf_counter() - start

    totals = report["totals"]
    latency = report["latency_s"]
    metrics = {
        "clients": spec.clients,
        "requests_per_client": spec.requests_per_client,
        "p50_s": latency["p50"],
        "p99_s": latency["p99"],
        "completed": totals["completed"],
        "shed_rate": totals["shed_rate"],
        "throughput_rps": totals["throughput_rps"],
    }
    emit_bench("service", closed_loop=metrics)
    record_summary("service closed-loop workload", [
        f"clients={spec.clients} x {spec.requests_per_client} requests, "
        f"think={spec.think_time_s:g}s (seed {spec.seed})",
        f"p50={latency['p50'] * 1e3:g} ms  p99={latency['p99'] * 1e3:g} ms",
        f"completed={totals['completed']}  shed_rate="
        f"{totals['shed_rate']:.3f}  throughput="
        f"{totals['throughput_rps']:.1f} rps",
        f"wall time {wall_s:.2f}s",
    ])
