"""Experiment E5 — the OPeNDAP adapter's time-window cache (§3.2).

"if a query arrives resulting in an OPeNDAP [call] in time t, where
t < w minutes later than a previous identical OPeNDAP call, then the
cached results can be used directly, eliminating the cost of
performing another call to the OPeNDAP server."

Benchmarks one MadIS query against the opendap virtual table with the
cache window active (hit) and with w=0 (every call pays the server).
"""

import pytest

from repro.madis import MadisConnection, attach_opendap

QUERY_CACHED = (
    "SELECT count(*) AS n FROM (opendap url:{url}, 10) WHERE LAI > 0"
)
QUERY_UNCACHED = (
    "SELECT count(*) AS n FROM (opendap url:{url}) WHERE LAI > 0"
)

pytestmark = pytest.mark.benchmark

TIMINGS = {}


@pytest.fixture(scope="module")
def conn_and_url(case_study):
    conn = MadisConnection()
    operator = attach_opendap(conn, case_study.registry)
    return conn, case_study.lai_url, operator


def test_cache_miss_every_time(benchmark, conn_and_url):
    conn, url, operator = conn_and_url
    query = QUERY_UNCACHED.format(url=url)
    rows = benchmark.pedantic(conn.execute, args=(query,),
                              rounds=3, iterations=1)
    TIMINGS["miss"] = benchmark.stats.stats.median
    assert rows[0]["n"] > 0


def test_cache_hit_inside_window(benchmark, conn_and_url):
    conn, url, operator = conn_and_url
    query = QUERY_CACHED.format(url=url)
    conn.execute(query)  # prime
    rows = benchmark.pedantic(conn.execute, args=(query,),
                              rounds=3, iterations=1)
    TIMINGS["hit"] = benchmark.stats.stats.median
    assert rows[0]["n"] > 0
    assert operator.cache_hits >= 3


def test_zz_summary(benchmark, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not {"hit", "miss"} <= set(TIMINGS):
        pytest.skip("benchmarks did not run")
    speedup = TIMINGS["miss"] / TIMINGS["hit"]
    record_summary(
        "E5: opendap operator cache window",
        [
            f"cache miss: {TIMINGS['miss'] * 1000:9.2f} ms per query",
            f"cache hit : {TIMINGS['hit'] * 1000:9.2f} ms per query "
            f"({speedup:.1f}x faster)",
            "paper: identical calls within w minutes skip the OPeNDAP "
            "server entirely",
        ],
    )
    assert speedup > 2
