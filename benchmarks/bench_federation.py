"""Experiment E12 — GeoSPARQL federation (the §5 open problem).

Compares the same spatial join answered (a) by one consolidated store
and (b) by the federation engine over two endpoints with simulated
endpoint latency — quantifying the federation overhead the paper's
open problem implies.
"""

import time

import pytest

from repro.data import arrondissements, osm_parks
from repro.geometry import wkt_dumps
from repro.geotriples import (
    LogicalSource,
    MappingProcessor,
    TermMap,
    TriplesMap,
)
from repro.parallel import WorkerPool
from repro.rdf import GADM, Graph, IRI, Literal, OSM, XSD
from repro.sparql.federation import FederationEngine, SparqlEndpoint
from repro.strabon import StrabonStore

pytestmark = pytest.mark.benchmark

QUERY = """
PREFIX gadm: <http://www.app-lab.eu/gadm/>
PREFIX osm: <http://www.app-lab.eu/osm/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
SELECT ?park ?unit WHERE {
  ?unit a gadm:AdministrativeUnit ; geo:hasGeometry ?gu .
  ?gu geo:asWKT ?wu .
  ?park osm:poiType osm:park ; geo:hasGeometry ?gp .
  ?gp geo:asWKT ?wp .
  FILTER(geof:sfIntersects(?wu, ?wp))
}
"""

TIMINGS = {}


def _gadm_graph():
    tmap = TriplesMap(
        name="gadm",
        logical_source=LogicalSource("geojson", arrondissements()),
        subject_map=TermMap(template=str(GADM) + "unit/{gid}"),
        classes=[GADM.AdministrativeUnit],
        geometry_column="wkt",
    )
    tmap.add_pom(GADM.hasName, TermMap(column="name", term_type="literal",
                                       datatype=XSD.string))
    return MappingProcessor([tmap]).run(StrabonStore("gadm"))


def _osm_graph():
    tmap = TriplesMap(
        name="osm",
        logical_source=LogicalSource("geojson", osm_parks()),
        subject_map=TermMap(template=str(OSM) + "feature/{gid}"),
        classes=[OSM.POI],
        geometry_column="wkt",
    )
    tmap.add_pom(OSM.poiType, TermMap(constant=OSM.park))
    tmap.add_pom(OSM.hasName, TermMap(column="name", term_type="literal",
                                      datatype=XSD.string))
    return MappingProcessor([tmap]).run(StrabonStore("osm"))


@pytest.fixture(scope="module")
def consolidated():
    store = StrabonStore("all")
    store.update(_gadm_graph())
    store.update(_osm_graph())
    return store


@pytest.fixture(scope="module")
def federation():
    engine = FederationEngine()
    engine.register("http://gadm.example/sparql",
                    SparqlEndpoint(_gadm_graph(), "gadm", latency_s=0.01))
    engine.register("http://osm.example/sparql",
                    SparqlEndpoint(_osm_graph(), "osm", latency_s=0.01))
    return engine


def test_consolidated_store(benchmark, consolidated):
    result = benchmark.pedantic(consolidated.query, args=(QUERY,),
                                rounds=3, iterations=1)
    TIMINGS["consolidated"] = benchmark.stats.stats.median
    TIMINGS["rows"] = len(result)
    assert len(result) > 0


def test_federated(benchmark, federation):
    result = benchmark.pedantic(federation.query, args=(QUERY,),
                                rounds=3, iterations=1)
    TIMINGS["federated"] = benchmark.stats.stats.median
    assert len(result) == TIMINGS["rows"]  # same answer across modes


WORKER_SWEEP = [1, 2, 4]
N_MEMBERS = 4
MEMBER_LATENCY_S = 0.02
EX = "http://example.org/"

SWEEP_QUERY = (
    "PREFIX ex: <http://example.org/>\n"
    "SELECT ?s ?l WHERE { ?s ex:label ?l } ORDER BY ?l"
)


class _WanEndpoint:
    """One simulated round trip per pattern-level request.

    ``SparqlEndpoint`` charges latency on ``query``/``select_group``
    only (its ``triples``/``predicates`` model a co-located graph);
    here every harvest and scan is a WAN call, which is what the
    fan-out overlaps."""

    def __init__(self, inner, latency_s):
        self.inner = inner
        self.latency_s = latency_s

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def predicates(self):
        time.sleep(self.latency_s)
        return self.inner.predicates()

    def triples(self, pattern):
        time.sleep(self.latency_s)
        return self.inner.triples(pattern)


def _sweep_engine(workers, n_rows):
    engine = FederationEngine(pool=WorkerPool(workers=workers))
    for member in range(N_MEMBERS):
        graph = Graph()
        graph.bind("ex", EX)
        for i in range(n_rows):
            node = IRI(f"{EX}m{member}/item{i}")
            graph.add(node, IRI(EX + "label"),
                      Literal(f"m{member}-item{i:04d}"))
        endpoint = SparqlEndpoint(graph, name=f"member{member}")
        engine.register(f"http://member{member}.example/sparql",
                        _WanEndpoint(endpoint, MEMBER_LATENCY_S))
    return engine


def _best_of(fn, n):
    best, result = None, None
    for __ in range(n):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_parallel_sweep(record_summary, emit_bench, smoke):
    """Fan-out sweep over a 4-member federation with per-request WAN
    latency: harvest and pattern scans dispatch concurrently, so the
    pool overlaps the round trips while the merged binding order stays
    identical to the serial engine's."""
    n_rows = 40 if smoke else 120
    rounds = 2 if smoke else 3
    expected = None
    timings = {}
    for workers in WORKER_SWEEP:
        engine = _sweep_engine(workers, n_rows)
        best, result = _best_of(lambda: engine.query(SWEEP_QUERY), rounds)
        got = [str(b["l"]) for b in result]
        if expected is None:
            expected = got
        assert got == expected, f"workers={workers} diverged"
        timings[workers] = best
    speedup_4 = timings[1] / timings[WORKER_SWEEP[-1]]
    emit_bench("parallel", federation={
        "members": N_MEMBERS,
        "rows_per_member": n_rows,
        "member_latency_s": MEMBER_LATENCY_S,
        "seconds_by_workers": {str(w): round(t, 4)
                               for w, t in timings.items()},
        "speedup_workers_4": round(speedup_4, 2),
    })
    record_summary(
        "E12b: federation fan-out worker sweep",
        [f"workers={w}: {t:7.3f} s (x{timings[1] / t:4.2f} vs serial)"
         for w, t in sorted(timings.items())]
        + [f"members={N_MEMBERS}, latency={MEMBER_LATENCY_S * 1000:.0f} ms "
           f"per request, rows/member={n_rows}"],
    )
    assert speedup_4 >= 1.5, f"expected overlap win, got {speedup_4:.2f}"


def test_zz_summary(benchmark, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "federated" not in TIMINGS:
        pytest.skip("benchmarks did not run")
    overhead = TIMINGS["federated"] / TIMINGS["consolidated"]
    record_summary(
        "E12: GeoSPARQL federation (open problem)",
        [
            f"consolidated store : {TIMINGS['consolidated'] * 1000:8.2f} ms",
            f"federated (2 eps)  : {TIMINGS['federated'] * 1000:8.2f} ms "
            f"({overhead:.1f}x)",
            f"rows (identical)   : {TIMINGS['rows']}",
            "paper: no federated GeoSPARQL engine existed; ours answers "
            "the same query over two endpoints with source selection",
        ],
    )
