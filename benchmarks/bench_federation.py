"""Experiment E12 — GeoSPARQL federation (the §5 open problem).

Compares the same spatial join answered (a) by one consolidated store
and (b) by the federation engine over two endpoints with simulated
endpoint latency — quantifying the federation overhead the paper's
open problem implies.
"""

import pytest

from repro.data import arrondissements, osm_parks
from repro.geometry import wkt_dumps
from repro.geotriples import (
    LogicalSource,
    MappingProcessor,
    TermMap,
    TriplesMap,
)
from repro.rdf import GADM, Graph, IRI, OSM, XSD
from repro.sparql.federation import FederationEngine, SparqlEndpoint
from repro.strabon import StrabonStore

QUERY = """
PREFIX gadm: <http://www.app-lab.eu/gadm/>
PREFIX osm: <http://www.app-lab.eu/osm/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
SELECT ?park ?unit WHERE {
  ?unit a gadm:AdministrativeUnit ; geo:hasGeometry ?gu .
  ?gu geo:asWKT ?wu .
  ?park osm:poiType osm:park ; geo:hasGeometry ?gp .
  ?gp geo:asWKT ?wp .
  FILTER(geof:sfIntersects(?wu, ?wp))
}
"""

TIMINGS = {}


def _gadm_graph():
    tmap = TriplesMap(
        name="gadm",
        logical_source=LogicalSource("geojson", arrondissements()),
        subject_map=TermMap(template=str(GADM) + "unit/{gid}"),
        classes=[GADM.AdministrativeUnit],
        geometry_column="wkt",
    )
    tmap.add_pom(GADM.hasName, TermMap(column="name", term_type="literal",
                                       datatype=XSD.string))
    return MappingProcessor([tmap]).run(StrabonStore("gadm"))


def _osm_graph():
    tmap = TriplesMap(
        name="osm",
        logical_source=LogicalSource("geojson", osm_parks()),
        subject_map=TermMap(template=str(OSM) + "feature/{gid}"),
        classes=[OSM.POI],
        geometry_column="wkt",
    )
    tmap.add_pom(OSM.poiType, TermMap(constant=OSM.park))
    tmap.add_pom(OSM.hasName, TermMap(column="name", term_type="literal",
                                      datatype=XSD.string))
    return MappingProcessor([tmap]).run(StrabonStore("osm"))


@pytest.fixture(scope="module")
def consolidated():
    store = StrabonStore("all")
    store.update(_gadm_graph())
    store.update(_osm_graph())
    return store


@pytest.fixture(scope="module")
def federation():
    engine = FederationEngine()
    engine.register("http://gadm.example/sparql",
                    SparqlEndpoint(_gadm_graph(), "gadm", latency_s=0.01))
    engine.register("http://osm.example/sparql",
                    SparqlEndpoint(_osm_graph(), "osm", latency_s=0.01))
    return engine


def test_consolidated_store(benchmark, consolidated):
    result = benchmark.pedantic(consolidated.query, args=(QUERY,),
                                rounds=3, iterations=1)
    TIMINGS["consolidated"] = benchmark.stats.stats.median
    TIMINGS["rows"] = len(result)
    assert len(result) > 0


def test_federated(benchmark, federation):
    result = benchmark.pedantic(federation.query, args=(QUERY,),
                                rounds=3, iterations=1)
    TIMINGS["federated"] = benchmark.stats.stats.median
    assert len(result) == TIMINGS["rows"]  # same answer across modes


def test_zz_summary(benchmark, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "federated" not in TIMINGS:
        pytest.skip("benchmarks did not run")
    overhead = TIMINGS["federated"] / TIMINGS["consolidated"]
    record_summary(
        "E12: GeoSPARQL federation (open problem)",
        [
            f"consolidated store : {TIMINGS['consolidated'] * 1000:8.2f} ms",
            f"federated (2 eps)  : {TIMINGS['federated'] * 1000:8.2f} ms "
            f"({overhead:.1f}x)",
            f"rows (identical)   : {TIMINGS['rows']}",
            "paper: no federated GeoSPARQL engine existed; ours answers "
            "the same query over two endpoints with source selection",
        ],
    )
