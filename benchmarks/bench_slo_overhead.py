"""Observability overhead benchmark: the SLO engine, query log and
flight recorder must stay cheap enough to leave on in production.

Runs the same seeded open-loop workload with the full observability
stack attached (per-request SLO window updates on two scopes,
query-log classification + deterministic sampling, flight recorder
entries) and with ``observability=False``, and emits two overhead
measures:

- ``call_overhead_ratio`` — total profiled function calls on/off.
  Because the whole stack runs in virtual time off one seed, this is
  **exactly** reproducible: it counts the work the observers add, not
  what the machine was doing that day. This is the gated metric — the
  tracked-metrics entry caps it at ~1.05, i.e. always-on observability
  may not add more than ~5 % to the request path.
- ``wall_overhead_ratio`` — best-of-N wall clock, rounds interleaved
  (on, off, on, off, …) so frequency scaling and cache drift hit both
  variants equally. Informational: too noisy on shared CI runners to
  gate at 5 %.

The benchmark also asserts the observers are *passive*: totals and
latency percentiles must be identical with and without the stack, and
two instrumented same-seed runs must produce byte-identical reports.

Emits ``out/BENCH_slo.json``; the committed reference lives in
``benchmarks/baselines/`` (regenerate in ``--smoke`` mode — that is
what the slo-smoke CI job runs)::

    python -m pytest benchmarks/bench_slo_overhead.py \
        --run-benchmarks --smoke -q
    cp out/BENCH_slo.json benchmarks/baselines/
"""

import cProfile
import time

import pytest

from repro.service import WorkloadSpec, run_workload

pytestmark = pytest.mark.benchmark

ROUNDS = 3


def _spec(smoke, observability):
    return WorkloadSpec(
        seed=42,
        clients=800 if smoke else 2000,
        rate_rps=450.0,
        arrival="open",
        observability=observability,
    )


def _profiled_calls(spec):
    """Total function calls for one run — seed-deterministic."""
    profile = cProfile.Profile()
    profile.enable()
    report = run_workload(spec)
    profile.disable()
    return sum(s.callcount for s in profile.getstats()), report


def _timed(spec):
    start = time.perf_counter()
    report = run_workload(spec)
    return time.perf_counter() - start, report


def test_observability_overhead(smoke, emit_bench, record_summary):
    run_workload(_spec(smoke, True))  # warm caches outside all timings

    calls_on, on_report = _profiled_calls(_spec(smoke, True))
    calls_off, off_report = _profiled_calls(_spec(smoke, False))
    call_ratio = calls_on / calls_off

    wall_on = wall_off = float("inf")
    for _ in range(ROUNDS):
        wall, _ignored = _timed(_spec(smoke, True))
        wall_on = min(wall_on, wall)
        wall, _ignored = _timed(_spec(smoke, False))
        wall_off = min(wall_off, wall)

    # passive observers: the observed workload must not notice them
    assert on_report["totals"] == off_report["totals"]
    assert on_report["latency_s"] == off_report["latency_s"]
    identical = float(
        run_workload(_spec(smoke, True)).to_json() == on_report.to_json())

    totals = on_report["totals"]
    qlog = on_report["query_log"]
    metrics = {
        "clients": _spec(smoke, True).clients,
        "calls_on": calls_on,
        "calls_off": calls_off,
        "call_overhead_ratio": round(call_ratio, 4),
        "wall_on_s": round(wall_on, 3),
        "wall_off_s": round(wall_off, 3),
        "wall_overhead_ratio": round(wall_on / wall_off, 4),
        "qlog_offered": qlog["offered"],
        "qlog_kept": sum(qlog["kept"].values()),
        "slo_specs": len(on_report["slo"]["specs"]),
        "identical_reports": identical,
    }
    emit_bench("slo", overhead=metrics, wall_s=round(wall_on, 3))
    record_summary("observability overhead", [
        f"clients={metrics['clients']} offered=450 rps (seed 42)",
        f"profiled calls on={calls_on} off={calls_off} "
        f"overhead={100 * (call_ratio - 1):+.2f}% (deterministic)",
        f"wall on={wall_on:.3f}s off={wall_off:.3f}s "
        f"overhead={100 * (wall_on / wall_off - 1):+.1f}% "
        f"(best of {ROUNDS}, informational)",
        f"qlog kept {metrics['qlog_kept']}/{qlog['offered']} offered; "
        f"{metrics['slo_specs']} SLO specs live",
        f"completed={totals['completed']}  shed_rate="
        f"{totals['shed_rate']:.3f}",
        f"passive + deterministic re-run identical: {bool(identical)}",
    ])
    assert identical == 1.0
