"""Plan-based query engine vs the seed evaluator.

Three microbenchmarks against the evaluator the engine replaced
(preserved verbatim in ``tests/sparql/reference_evaluator.py``, which
runs unmodified against today's Graph):

- **join ordering** — a 3-pattern BGP where the seed's boundness
  heuristic ties and falls back to text order (starting from the
  2000-row class scan) while the planner's exact cardinalities start
  from the ~50-row city scan. This is the headline number: the
  acceptance floor is 5x, the observed speedup is orders of magnitude.
- **dictionary encoding** — a reciprocal join with no ordering
  decision to make (both engines run the same plan shape), isolating
  id-space probes + decode-at-emission against term-space matching.
- **top-k** — ORDER BY + LIMIT over a 30k-row scan through the bounded
  heap vs the seed's full sort of every solution.

Emits ``out/BENCH_query_engine.json`` (including the recorded seed
baselines) for trend tracking.
"""

import importlib.util
import json
import pathlib
import random
import time

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql.evaluator import Context, eval_query
from repro.sparql.parser import parse_query

pytestmark = pytest.mark.benchmark

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = ROOT / "out" / "BENCH_query_engine.json"

_spec = importlib.util.spec_from_file_location(
    "seed_reference_evaluator",
    ROOT / "tests" / "sparql" / "reference_evaluator.py",
)
seed = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(seed)

EX = "http://example.org/"
N_PEOPLE = 2000
REPEATS = 5

JOIN_ORDER_QUERY = """SELECT ?p ?q WHERE {
  ?p <http://example.org/type> <http://example.org/Person> .
  ?p <http://example.org/knows> ?q .
  ?q <http://example.org/city> <http://example.org/city/7> .
}"""

RECIPROCAL_QUERY = """SELECT ?p ?q WHERE {
  ?p <http://example.org/knows> ?q .
  ?q <http://example.org/knows> ?p .
}"""

TOPK_QUERY = """SELECT ?p ?a WHERE {
  ?p <http://example.org/age> ?a .
} ORDER BY DESC(?a) LIMIT 10"""

N_TOPK_ROWS = 30_000


@pytest.fixture(scope="module")
def graph():
    rnd = random.Random(42)
    g = Graph()
    for i in range(N_PEOPLE):
        s = IRI(f"{EX}person/{i}")
        g.add(s, IRI(EX + "type"), IRI(EX + "Person"))
        g.add(s, IRI(EX + "age"), Literal(rnd.randrange(15, 90)))
        g.add(s, IRI(EX + "city"), IRI(f"{EX}city/{rnd.randrange(40)}"))
        for __ in range(3):
            g.add(s, IRI(EX + "knows"),
                  IRI(f"{EX}person/{rnd.randrange(N_PEOPLE)}"))
    return g


def _best_of(fn, n=REPEATS):
    result, times = None, []
    for __ in range(n):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def _run_pair(g, text, profiler=None, profile_name=None):
    ast = parse_query(text)
    t_new, r_new = _best_of(lambda: eval_query(ast, Context(g)))
    t_seed, r_seed = _best_of(
        lambda: seed.eval_query(ast, seed.Context(g)))
    assert len(r_new.rows) == len(r_seed.rows)
    if profiler:
        profiler.profile(
            profile_name,
            lambda tracer: eval_query(ast, Context(g, tracer=tracer)),
        )
    return t_new, t_seed, len(r_new.rows)


def test_join_ordering_speedup(graph, record_summary, profiler):
    t_new, t_seed, n_rows = _run_pair(
        graph, JOIN_ORDER_QUERY, profiler, "engine_join_ordering")
    speedup = t_seed / t_new
    record_summary("Query engine: cardinality-based join ordering", [
        f"graph size:        {len(graph):>10,} triples",
        f"result rows:       {n_rows:>10,}",
        f"seed evaluator:    {t_seed * 1e3:>10.2f} ms",
        f"plan engine:       {t_new * 1e3:>10.2f} ms",
        f"speedup:           {speedup:>10.1f} x (acceptance floor: 5x)",
    ])
    _emit(join_ordering={"seed_s": t_seed, "engine_s": t_new,
                         "speedup": speedup, "rows": n_rows})
    assert speedup >= 5.0


def test_dictionary_encoded_join(graph, record_summary, profiler):
    # Reciprocal knows: the second pattern is a fully-bound probe per
    # candidate, so int-tuple membership (id space) is the whole cost —
    # the seed pays a term re-encoding for every probe.
    t_new, t_seed, n_rows = _run_pair(
        graph, RECIPROCAL_QUERY, profiler, "engine_dictionary_join")
    speedup = t_seed / t_new
    record_summary("Query engine: id-space joins (same plan shape)", [
        f"result rows:       {n_rows:>10,}",
        f"seed evaluator:    {t_seed * 1e3:>10.2f} ms",
        f"plan engine:       {t_new * 1e3:>10.2f} ms",
        f"speedup:           {speedup:>10.1f} x",
    ])
    _emit(dictionary_join={"seed_s": t_seed, "engine_s": t_new,
                           "speedup": speedup, "rows": n_rows})


def test_topk_vs_full_sort(record_summary, profiler):
    # A scan wide enough that sorting it dominates: the heap keeps k
    # rows live instead of all 30k, and skips the full sort entirely.
    rnd = random.Random(1)
    g = Graph()
    for i in range(N_TOPK_ROWS):
        g.add(IRI(f"{EX}s/{i}"), IRI(EX + "age"),
              Literal(rnd.randrange(10 ** 6)))
    t_new, t_seed, n_rows = _run_pair(
        g, TOPK_QUERY, profiler, "engine_topk")
    speedup = t_seed / t_new
    record_summary("Query engine: top-k heap vs full sort", [
        f"sorted rows:       {N_TOPK_ROWS:>10,}",
        f"result rows:       {n_rows:>10,}",
        f"seed evaluator:    {t_seed * 1e3:>10.2f} ms",
        f"plan engine:       {t_new * 1e3:>10.2f} ms",
        f"speedup:           {speedup:>10.1f} x",
    ])
    _emit(topk={"seed_s": t_seed, "engine_s": t_new,
                "speedup": speedup, "rows": n_rows})


def _emit(**fields):
    OUT_PATH.parent.mkdir(exist_ok=True)
    data = {}
    if OUT_PATH.exists():
        data = json.loads(OUT_PATH.read_text())
    data.update(fields)
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
