"""Experiment E8 — JedAI meta-blocking scalability (§3).

"JedAI is a toolkit for entity resolution and its multi-core version
has been shown to be scalable to very large datasets." The workload is
a dirty-ER collection with planted duplicates; the summary reports the
comparison-count reduction per stage and the multi-core speedup.
"""

import random
import time

import pytest

from repro.interlink import EntityProfile, JedaiPipeline

pytestmark = pytest.mark.benchmark

N_ENTITIES = 900

WORKER_SWEEP = [1, 2, 4]
SWEEP_PARTITIONS = 8
CHUNK_READ_S = 0.02

TIMINGS = {}


def build_profiles(n_entities=N_ENTITIES):
    rng = random.Random(99)
    cities = ["paris", "athens", "berlin", "rome", "madrid", "vienna"]
    kinds = ["park", "museum", "school", "station"]
    profiles = []
    for i in range(n_entities // 3):
        base_name = f"place {rng.randrange(10_000)} " \
                    f"{rng.choice('abcdefgh')}{i}"
        city = rng.choice(cities)
        kind = rng.choice(kinds)
        # three noisy copies of each entity (dirty ER)
        for j, suffix in enumerate(("", " the", " le")):
            profiles.append(
                EntityProfile(
                    f"e{i}_{j}",
                    {
                        "name": base_name + suffix,
                        "city": city,
                        "type": kind,
                    },
                )
            )
    return profiles


@pytest.fixture(scope="module")
def profiles():
    return build_profiles()


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_resolution(benchmark, profiles, workers):
    pipeline = JedaiPipeline(workers=workers, purge_factor=0.2)
    clusters = benchmark.pedantic(
        pipeline.resolve, args=(profiles,), rounds=2, iterations=1
    )
    TIMINGS[workers] = (benchmark.stats.stats.median, pipeline.stats)
    assert len(clusters) > N_ENTITIES // 6  # duplicates found


def _best_of(fn, n):
    best, result = None, None
    for __ in range(n):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def test_parallel_sweep(record_summary, emit_bench, smoke):
    """Worker sweep with simulated chunk reads: meta-blocking splits
    the block index into 8 fixed chunks and each chunk pays a read
    latency, so threads overlap I/O (multi-core JedAI's block-level
    parallelism) while the candidate list stays byte-identical."""
    n_entities = 300 if smoke else N_ENTITIES
    rounds = 2 if smoke else 3
    profiles = build_profiles(n_entities)
    expected = None
    timings = {}
    for workers in WORKER_SWEEP:
        pipeline = JedaiPipeline(
            workers=workers, partitions=SWEEP_PARTITIONS,
            purge_factor=0.2, chunk_read_s=CHUNK_READ_S)
        best, clusters = _best_of(lambda: pipeline.resolve(profiles),
                                  rounds)
        if expected is None:
            expected = clusters
        assert clusters == expected, f"workers={workers} diverged"
        timings[workers] = best
    speedup_4 = timings[1] / timings[WORKER_SWEEP[-1]]
    emit_bench("parallel", metablocking={
        "n_entities": n_entities,
        "partitions": SWEEP_PARTITIONS,
        "chunk_read_s": CHUNK_READ_S,
        "seconds_by_workers": {str(w): round(t, 4)
                               for w, t in timings.items()},
        "speedup_workers_4": round(speedup_4, 2),
    })
    record_summary(
        "E8b: meta-blocking worker sweep (simulated chunk reads)",
        [f"workers={w}: {t:7.3f} s (x{timings[1] / t:4.2f} vs serial)"
         for w, t in sorted(timings.items())]
        + [f"partitions={SWEEP_PARTITIONS}, "
           f"read={CHUNK_READ_S * 1000:.0f} ms each, "
           f"entities={n_entities}"],
    )
    assert speedup_4 >= 2.0, f"expected >=2x at 4 workers, got {speedup_4:.2f}"


def test_zz_summary(benchmark, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if 1 not in TIMINGS:
        pytest.skip("benchmarks did not run")
    import os

    base, stats = TIMINGS[1]
    lines = [
        f"initial comparisons      : {stats.initial_comparisons:>10}",
        f"after block purging      : {stats.after_purging:>10}",
        f"after block filtering    : {stats.after_filtering:>10}",
        f"after meta-blocking      : {stats.after_metablocking:>10}",
        f"reduction ratio          : {stats.reduction_ratio:10.3f}",
    ]
    for workers in sorted(TIMINGS):
        t, __ = TIMINGS[workers]
        lines.append(
            f"workers={workers}: {t:7.3f} s (x{base / t:4.2f} vs 1 worker)"
        )
    cores = len(os.sched_getaffinity(0))
    lines.append(f"host cores: {cores}")
    if cores == 1:
        lines.append(
            "NOTE: single-core host — the multi-core path shows IPC "
            "overhead only; the scalability mechanism reproduced here is "
            "the comparison-count reduction, which is hardware-"
            "independent."
        )
    record_summary("E8: JedAI multi-core meta-blocking", lines)
    assert stats.after_metablocking < stats.initial_comparisons
    assert stats.reduction_ratio > 0.3
