"""Benchmark regression gate for CI's bench-smoke job.

Compares freshly emitted ``out/BENCH_*.json`` metrics against the
committed reference copies in ``benchmarks/baselines/``, using the
manifest ``benchmarks/baselines/tracked_metrics.json``::

    {
      "tolerance_factor": 2.0,
      "metrics": [
        {"file": "BENCH_parallel.json",
         "path": "geotriples.speedup_workers_4",
         "direction": "higher"},
        ...
      ]
    }

``path`` is a dotted lookup into the JSON document. ``direction`` is
``"lower"`` for metrics where smaller is better (wall times) or
``"higher"`` for metrics where larger is better (speedups). A metric
fails when it is worse than the baseline by more than the tolerance
factor (per-metric ``tolerance_factor`` overrides the global one).
A missing current file or metric is a failure: a benchmark that
silently stops emitting must not pass the gate.

``--all-present`` inverts the scoping: instead of naming metrics with
``--only``, it gates *every* ``out/BENCH_*.json`` the job emitted —
an emitted file with no tracked metrics fails (new benchmarks must
declare their gate), and files named with ``--expect`` (default: every
file in the manifest) must actually have been emitted.

Regenerate the baselines with::

    python -m pytest benchmarks -k parallel_sweep \
        --run-benchmarks --smoke
    cp out/BENCH_parallel.json benchmarks/baselines/

Exit status: 0 when every tracked metric is within tolerance,
1 otherwise.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "out"
DEFAULT_BASELINES = REPO_ROOT / "benchmarks" / "baselines"
DEFAULT_MANIFEST = DEFAULT_BASELINES / "tracked_metrics.json"


def lookup(data, dotted):
    """Resolve a dotted path in nested dicts; KeyError when absent."""
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise KeyError(f"{dotted} is not numeric")
    return float(node)


def _load(directory, name, cache):
    if name not in cache:
        path = directory / name
        if not path.exists():
            cache[name] = None
        else:
            cache[name] = json.loads(path.read_text())
    return cache[name]


def check(manifest, out_dir, baseline_dir, only=None):
    """Return (failures, report_lines) for every tracked metric.

    *only*, when given, restricts the check to metrics whose ``file``
    is in it — so a CI job that runs one benchmark gates that
    benchmark's file without failing on siblings it never emitted.
    """
    default_tol = float(manifest.get("tolerance_factor", 2.0))
    current_cache, baseline_cache = {}, {}
    failures, report = [], []
    metrics = manifest["metrics"]
    if only:
        metrics = [m for m in metrics if m["file"] in only]
        if not metrics:
            raise SystemExit(
                f"no tracked metrics match --only {sorted(only)}")
    for metric in metrics:
        name = metric["file"]
        path = metric["path"]
        direction = metric.get("direction", "lower")
        if direction not in ("lower", "higher"):
            raise ValueError(f"bad direction {direction!r} for {path}")
        tol = float(metric.get("tolerance_factor", default_tol))
        label = f"{name}:{path}"

        def fail(reason):
            failures.append(label)
            report.append(f"FAIL {label}  {reason}")

        current_doc = _load(out_dir, name, current_cache)
        baseline_doc = _load(baseline_dir, name, baseline_cache)
        if baseline_doc is None:
            fail(f"baseline file missing: {baseline_dir / name}")
            continue
        if current_doc is None:
            fail(f"benchmark did not emit {out_dir / name}")
            continue
        try:
            baseline = lookup(baseline_doc, path)
        except KeyError as exc:
            fail(f"baseline metric missing: {exc}")
            continue
        try:
            current = lookup(current_doc, path)
        except KeyError as exc:
            fail(f"current metric missing: {exc}")
            continue

        if direction == "lower":
            ok = current <= baseline * tol
        else:
            ok = current >= baseline / tol
        detail = (f"current={current:g} baseline={baseline:g} "
                  f"({direction} is better, tolerance {tol:g}x)")
        if ok:
            report.append(f"OK   {label}  {detail}")
        else:
            fail(detail)
    return failures, report


def check_all_present(manifest, out_dir, baseline_dir, expect=None):
    """Gate every emitted ``out/BENCH_*.json`` in one pass.

    Replaces the per-job ``--only`` invocations: every emitted file must
    have tracked metrics in the manifest (an untracked benchmark is a
    failure — new benchmarks must declare their gate), every tracked
    metric of every emitted file is checked against its baseline, and
    every *expected* file must actually have been emitted. *expect*
    defaults to all files named in the manifest; a CI job that runs a
    subset of the benchmarks narrows it with ``--expect BENCH_x.json``
    while still gating anything else it happened to emit.
    """
    tracked = {m["file"] for m in manifest["metrics"]}
    emitted = sorted(p.name for p in out_dir.glob("BENCH_*.json"))
    expected = set(expect) if expect else set(tracked)
    failures, report = [], []

    unknown = expected - tracked
    if unknown:
        raise SystemExit(
            f"--expect names files with no tracked metrics: "
            f"{sorted(unknown)}")
    for name in sorted(expected - set(emitted)):
        failures.append(name)
        report.append(f"FAIL {name}  expected benchmark output missing "
                      f"from {out_dir}")
    for name in [n for n in emitted if n not in tracked]:
        failures.append(name)
        report.append(f"FAIL {name}  emitted but has no tracked metrics "
                      f"in the manifest (add a baseline + entries to "
                      f"tracked_metrics.json)")

    gate = {n for n in emitted if n in tracked}
    if gate:
        metric_failures, metric_report = check(
            manifest, out_dir, baseline_dir, only=gate)
        failures.extend(metric_failures)
        report.extend(metric_report)
    return failures, report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fail when tracked benchmark metrics regress more "
                    "than the tolerance factor vs committed baselines")
    parser.add_argument("--out-dir", type=pathlib.Path,
                        default=DEFAULT_OUT,
                        help="directory with freshly emitted "
                             "BENCH_*.json (default: out/)")
    parser.add_argument("--baseline-dir", type=pathlib.Path,
                        default=DEFAULT_BASELINES,
                        help="directory with committed baseline "
                             "BENCH_*.json (default: "
                             "benchmarks/baselines/)")
    parser.add_argument("--manifest", type=pathlib.Path,
                        default=DEFAULT_MANIFEST,
                        help="tracked-metrics manifest (default: "
                             "benchmarks/baselines/"
                             "tracked_metrics.json)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="BENCH_FILE",
                        help="check only metrics tracked against this "
                             "BENCH_*.json file (repeatable); default: "
                             "all tracked metrics")
    parser.add_argument("--all-present", action="store_true",
                        help="gate every emitted out/BENCH_*.json: "
                             "untracked emissions fail, and every "
                             "--expect'ed file (default: all tracked "
                             "files) must have been emitted")
    parser.add_argument("--expect", action="append", default=None,
                        metavar="BENCH_FILE",
                        help="with --all-present: this file must have "
                             "been emitted (repeatable; default: every "
                             "file named in the manifest)")
    args = parser.parse_args(argv)
    if args.all_present and args.only:
        parser.error("--all-present and --only are mutually exclusive")
    if args.expect and not args.all_present:
        parser.error("--expect requires --all-present")

    manifest = json.loads(args.manifest.read_text())
    if args.all_present:
        failures, report = check_all_present(
            manifest, args.out_dir, args.baseline_dir,
            expect=args.expect)
    else:
        failures, report = check(
            manifest, args.out_dir, args.baseline_dir,
            only=set(args.only) if args.only else None)
    for line in report:
        print(line)
    if failures:
        print(f"\n{len(failures)} tracked metric(s) regressed beyond "
              f"tolerance", file=sys.stderr)
        return 1
    print(f"\nall {len(report)} tracked metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
