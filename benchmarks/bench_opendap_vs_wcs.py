"""Experiment E11 — DAP index caching beats WCS bbox caching (§5).

"OPeNDAP allows for the caching of datasets by serialization based on
internal array indices. This increases cache-hits for recurrent
requests of a specific subpart of the dataset which can be very useful,
e.g., in a mobile application scenario, where the viewport ... could be
defaulting to a specific, user-configurable area of interest with only
modest panning and zooming interaction."

The workload replays that mobile scenario: a home viewport revisited
with small jitters and occasional pans. DAP requests are expressed as
index windows (snap to identical constraints → cache hits); WCS
requests are keyed by the raw bbox floats (every jitter misses).
"""

import random

import pytest

from repro.opendap import DapCache, WebCoverageService, open_url
from repro.opendap.subset import index_window_for_bbox

pytestmark = pytest.mark.benchmark

N_REQUESTS = 60
HOME = (2.28, 48.82, 2.42, 48.90)

RESULTS = {}


def viewport_trace(seed=5):
    """Mostly the home viewport with pixel jitter; some pans/zooms."""
    rng = random.Random(seed)
    trace = []
    for i in range(N_REQUESTS):
        if rng.random() < 0.8:
            jitter = lambda: rng.uniform(-0.0004, 0.0004)
            trace.append((HOME[0] + jitter(), HOME[1] + jitter(),
                          HOME[2] + jitter(), HOME[3] + jitter()))
        else:
            dx = rng.uniform(-0.05, 0.05)
            dy = rng.uniform(-0.03, 0.03)
            trace.append((HOME[0] + dx, HOME[1] + dy,
                          HOME[2] + dx, HOME[3] + dy))
    return trace


@pytest.fixture(scope="module")
def stack(case_study):
    remote_cache = DapCache(ttl_s=3600)
    remote = open_url(case_study.lai_url, case_study.registry,
                      cache=remote_cache)
    coords = remote.fetch("lat,lon")
    wcs = WebCoverageService(case_study.mep.aggregated("LAI"))
    return remote, remote_cache, coords, wcs


def run_dap_trace(remote, cache, coords):
    for bbox in viewport_trace():
        windows = index_window_for_bbox(coords, bbox)
        lat0, lat1 = windows["lat"]
        lon0, lon1 = windows["lon"]
        remote.fetch(f"LAI[0:2][{lat0}:{lat1}][{lon0}:{lon1}]")
    return cache.hit_rate


def run_wcs_trace(wcs):
    for bbox in viewport_trace():
        wcs.get_coverage("LAI", bbox)
    return wcs.hit_rate


def test_dap_panning(benchmark, stack):
    remote, cache, coords, __ = stack
    benchmark.pedantic(run_dap_trace, args=(remote, cache, coords),
                       rounds=1, iterations=1)
    RESULTS["dap_hit_rate"] = cache.hit_rate
    RESULTS["dap_time"] = benchmark.stats.stats.median


def test_wcs_panning(benchmark, stack):
    __, __c, __d, wcs = stack
    benchmark.pedantic(run_wcs_trace, args=(wcs,), rounds=1, iterations=1)
    RESULTS["wcs_hit_rate"] = wcs.hit_rate
    RESULTS["wcs_time"] = benchmark.stats.stats.median


def test_zz_summary(benchmark, record_summary):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "dap_hit_rate" not in RESULTS:
        pytest.skip("benchmarks did not run")
    record_summary(
        "E11: DAP index caching vs WCS bbox caching",
        [
            f"DAP cache hit rate: {RESULTS['dap_hit_rate']:6.1%} "
            f"({RESULTS['dap_time']:.3f} s for {N_REQUESTS} viewports)",
            f"WCS cache hit rate: {RESULTS['wcs_hit_rate']:6.1%} "
            f"({RESULTS['wcs_time']:.3f} s)",
            "paper: index-serialized caching increases cache-hits for "
            "panning viewports",
        ],
    )
    assert RESULTS["dap_hit_rate"] > RESULTS["wcs_hit_rate"] + 0.3
