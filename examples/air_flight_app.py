"""AiR — the winning app of the 2017 ESA Space App Camp (Section 5).

"AiR displays an interactive projection of the Earth's surface to
airplane travelers ... letting them see information about the cities
and landmarks they pass over during their flight." The developers
"used Copernicus App Lab tools to access and integrate data from
different sources (Copernicus land monitoring service data,
OpenStreetMap data and DBpedia data about landmarks)".

This example flies a synthetic route over Paris: for each point along
the flight path it pulls the NDVI below the aircraft (Maps-API
transect), the landmarks in view (OSM + a DBpedia-style abstract), and
prints the in-flight infotainment feed.

Run:  python examples/air_flight_app.py
"""

from datetime import date

from repro.core import AppLab
from repro.data import osm_pois
from repro.geometry import Point, STRtree
from repro.geometry.crs import haversine_m
from repro.vito import NDVI_SPEC, dekad_dates

# A miniature DBpedia: landmark name -> abstract.
DBPEDIA = {
    "Tour Eiffel": "Wrought-iron lattice tower built in 1889, 330 m tall.",
    "Louvre": "The world's most-visited museum, home of the Mona Lisa.",
    "Notre-Dame": "Medieval Catholic cathedral on the Île de la Cité.",
    "Sacré-Cœur": "Basilica at the summit of Montmartre, opened 1914.",
}

FLIGHT_PATH = [(2.18, 48.78), (2.26, 48.82), (2.32, 48.86),
               (2.40, 48.89), (2.50, 48.93)]
VIEW_RADIUS_M = 3000


def main() -> None:
    lab = AppLab()
    lab.publish_product(NDVI_SPEC, dekad_dates(date(2018, 6, 1), 2),
                        cloud_fraction=0.0)
    api, token = lab.maps_api("air-app@appcamp.eu")

    pois = list(osm_pois())
    poi_index = STRtree(pois, bbox_of=lambda f: f.geometry.bounds)

    print("AiR in-flight feed (synthetic route over Paris)\n")
    for leg, (lon, lat) in enumerate(FLIGHT_PATH, start=1):
        ndvi = api.get_point("NDVI", "NDVI", lon, lat)
        surface = ("dense vegetation" if ndvi > 0.5
                   else "urban fabric" if ndvi > 0.2 else "built-up area")
        print(f"leg {leg}: ({lon:.2f}, {lat:.2f})  NDVI={ndvi:.2f} "
              f"-> {surface}")
        pad = 0.05
        candidates = poi_index.query((lon - pad, lat - pad,
                                      lon + pad, lat + pad))
        for poi in candidates:
            d = haversine_m(lon, lat, poi.geometry.x, poi.geometry.y)
            if d <= VIEW_RADIUS_M:
                name = poi.properties["name"]
                abstract = DBPEDIA.get(name, "")
                print(f"        in view ({d / 1000:.1f} km): {name}"
                      + (f" — {abstract}" if abstract else ""))
    usage = lab.auth.usage_by_user("air-app@appcamp.eu")
    print(f"\nRAMANI uptake monitoring: {usage}")


if __name__ == "__main__":
    main()
