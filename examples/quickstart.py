"""Quickstart: publish a Copernicus product and query it both ways.

Runs the minimal end-to-end path of the paper's architecture:

1. generate + publish a synthetic LAI product on the (simulated) VITO
   OPeNDAP server;
2. query it *virtually* with Ontop-spatial (workflow right of Fig. 1);
3. materialize it into a Strabon store and run the same query
   (workflow left);
4. annotate it with schema.org and ask the dataset search a question.

Run:  python examples/quickstart.py
"""

from datetime import date

from repro.core import AppLab
from repro.vito import LAI_SPEC, dekad_dates


def main() -> None:
    lab = AppLab()
    url = lab.publish_product(
        LAI_SPEC, dekad_dates(date(2018, 6, 1), 3), cloud_fraction=0.0
    )
    print(f"[1] published 3 dekads of LAI at {url}")

    query = """
    PREFIX lai: <http://www.app-lab.eu/lai/>
    SELECT (COUNT(*) AS ?n) (AVG(?v) AS ?mean) (MAX(?v) AS ?max)
    WHERE { ?obs lai:lai ?v }
    """

    engine, operator = lab.virtual_endpoint("LAI")
    row = engine.query(query).rows[0]
    print(
        f"[2] virtual (Ontop-spatial over OPeNDAP): "
        f"{row['n'].value} observations, mean LAI "
        f"{row['mean'].value:.2f}, max {row['max'].value:.2f} "
        f"({operator.server_calls} DAP call)"
    )

    store = lab.materialize("LAI")
    row = store.query(query).rows[0]
    print(
        f"[3] materialized (GeoTriples -> Strabon): "
        f"{len(store)} triples, same {row['n'].value} observations"
    )

    lab.annotate_products()
    yes, hits = lab.search.answer(
        "Is there a vegetation dataset produced by VITO?"
    )
    print(f"[4] dataset search says: {'yes' if yes else 'no'} "
          f"-> {hits[0].annotation.name if hits else '(none)'}")


if __name__ == "__main__":
    main()
