"""EO dataset discoverability via schema.org (paper Section 5 / E10).

Annotates Copernicus datasets with the schema.org EO extension, prints
the JSON-LD a landing page would embed, and answers the paper's
flagship question: "Is there a land cover dataset produced by the
European Environmental Agency covering the area of Torino, Italy?"

Run:  python examples/dataset_search.py
"""

import json

from repro.geometry import Polygon
from repro.schemaorg import (
    DatasetAnnotation,
    DatasetSearchEngine,
    to_jsonld,
)

PAN_EUROPEAN = Polygon.box(-10.0, 35.0, 30.0, 60.0)


def build_catalog() -> DatasetSearchEngine:
    engine = DatasetSearchEngine()
    engine.index(DatasetAnnotation(
        identifier="https://land.copernicus.eu/corine-2012",
        name="CORINE Land Cover 2012",
        description="Pan-European land cover / land use inventory in "
                    "44 classes, 100 m resolution",
        keywords=["land cover", "land use", "CORINE"],
        provider="European Environment Agency",
        license="https://creativecommons.org/licenses/by/4.0/",
        spatial=PAN_EUROPEAN,
        temporal_start="2011-01-01", temporal_end="2012-12-31",
        eo={"productType": "land cover", "thematicArea": "land",
            "resolution": "100m", "processingLevel": "L4"},
    ))
    engine.index(DatasetAnnotation(
        identifier="https://land.copernicus.eu/urban-atlas-2012",
        name="Urban Atlas 2012",
        description="Land use maps for 800 European urban areas",
        keywords=["land use", "urban"],
        provider="European Environment Agency",
        spatial=PAN_EUROPEAN,
        eo={"productType": "land use", "thematicArea": "land"},
    ))
    engine.index(DatasetAnnotation(
        identifier="https://land.copernicus.eu/global/lai",
        name="Copernicus Global Land LAI",
        description="Leaf Area Index 10-daily composites from PROBA-V",
        keywords=["LAI", "vegetation"],
        provider="VITO",
        spatial=Polygon.box(-180, -60, 180, 80),
        eo={"platform": "PROBA-V", "productType": "LAI",
            "thematicArea": "land"},
    ))
    return engine


def main() -> None:
    engine = build_catalog()
    print(f"indexed {len(engine)} dataset annotations\n")

    corine = build_catalog()  # fresh annotation for display
    sample = to_jsonld(DatasetAnnotation(
        identifier="https://land.copernicus.eu/corine-2012",
        name="CORINE Land Cover 2012",
        provider="European Environment Agency",
        spatial=PAN_EUROPEAN,
        eo={"productType": "land cover"},
    ))
    print("JSON-LD a dataset landing page embeds:")
    print(json.dumps(sample, indent=2)[:600], "...\n")

    questions = [
        "Is there a land cover dataset produced by the European "
        "Environment Agency covering the area of Torino, Italy?",
        "Do we have any vegetation dataset covering Paris?",
        "Is there an ocean salinity dataset covering Torino?",
    ]
    for question in questions:
        yes, hits = engine.answer(question)
        print(f"Q: {question}")
        if yes:
            best = hits[0].annotation
            print(f"A: yes -> {best.name} ({best.provider})\n")
        else:
            print("A: no matching dataset\n")


if __name__ == "__main__":
    main()
