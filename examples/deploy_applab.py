"""Operating the App Lab stack on the Terradue platform (Section 5 / E14).

Releases the stack's appliances, deploys them to the Terradue cloud,
bursts to a DIAS when it becomes available, scales the RAMANI analytics
backend under load, survives a pod failure, and rolls a new version —
the operational narrative of Section 5.

Run:  python examples/deploy_applab.py
"""

from repro.cloud import (
    Appliance,
    AppPackage,
    Cluster,
    DeploymentSpec,
    DockerImage,
    Environment,
    PodSpec,
    Sandbox,
    TerraduePlatform,
)

COMPONENTS = ("ontop-spatial", "strabon", "geotriples", "sextant", "sdl",
              "opendap")


def release(platform: TerraduePlatform, version: str):
    return platform.new_release(
        version,
        [Appliance(c, DockerImage(f"applab/{c}", version))
         for c in COMPONENTS],
    )


def main() -> None:
    platform = TerraduePlatform()
    platform.add_environment(Environment("terradue"))
    platform.add_environment(Environment("vito-mep", cpu_capacity=8))
    platform.add_environment(Environment("dias-eumetsat"))
    release(platform, "1.0.0")

    print("[1] deploy the 1.0.0 stack to Terradue")
    deployments = platform.deploy_stack("1.0.0", "terradue")
    print(f"    {len(deployments)} appliances running")

    print("[2] the EUMETSAT DIAS opens to demo users -> cloud burst")
    clones = [platform.burst(d.deployment_id, "dias-eumetsat")
              for d in deployments[:3]]
    print(f"    burst {len(clones)} appliances; report: "
          f"{platform.status_report()}")

    print("[3] RAMANI analytics on Kubernetes, scaled under load")
    cluster = Cluster(nodes=["node-a", "node-b", "node-c"])
    cluster.apply(DeploymentSpec(
        "ramani-analytics", 2, PodSpec("applab/analytics:1.0.0")))
    cluster.scale("ramani-analytics", 5)
    pods = cluster.pods_of("ramani-analytics")
    print(f"    {len(pods)} pods across nodes "
          f"{sorted({p.node for p in pods})}")

    print("[4] a pod dies; the control loop heals the deployment")
    cluster.kill_pod(pods[0].name)
    cluster.reconcile()
    print(f"    back to {len(cluster.pods_of('ramani-analytics'))} "
          f"running pods")

    print("[5] roll release 1.1.0 onto the Terradue deployment")
    release(platform, "1.1.0")
    upgraded = platform.upgrade(deployments[0].deployment_id, "1.1.0")
    print(f"    {upgraded.appliance.name} now at "
          f"{upgraded.appliance.image.reference}")

    print("[6] a developer runs an EO app in the sandbox (PaaS)")
    sandbox = Sandbox(parallelism=4)
    app = AppPackage("ndvi-tile-stats",
                     lambda tile: {"tile": tile, "mean_ndvi": 0.42})
    report = sandbox.run(app, [f"tile-{i}" for i in range(8)])
    print(f"    {report.succeeded}/{report.tasks} tiles processed in "
          f"{report.wall_time_s * 1000:.1f} ms")


if __name__ == "__main__":
    main()
