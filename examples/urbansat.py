"""Urbansat — the winning app of the 2018 ESA Space App Camp (Section 5).

"Urbansat aims to guide greener, more ecological urban planning ...
The app's map interface has a drag and drop feature, which would allow
users to compare scenarios pre and post build for their construction
projects." Its developers used App Lab tools over Copernicus land
monitoring, Urban Atlas, Natura-2000-style green areas and GADM.

This example evaluates a hypothetical construction site in Paris:
it computes the pre-build greenness budget of the affected
arrondissement (LAI city-average + Urban Atlas green share), simulates
the post-build scenario (site paved over), and prints the impact
assessment a planner would see.

Run:  python examples/urbansat.py
"""

from datetime import date

from repro.core import GreennessCaseStudy, PREFIXES
from repro.data import arrondissements, urban_atlas
from repro.geometry import Polygon
from repro.geometry import ops as geo_ops

SITE = Polygon.box(2.305, 48.876, 2.313, 48.882)  # over Parc Monceau


def main() -> None:
    study = GreennessCaseStudy(n_dekads=2, cloud_fraction=0.0)
    store = study.materialized_store()

    # which administrative area hosts the site?
    hosting = [
        f for f in arrondissements()
        if geo_ops.intersects(f.geometry, SITE)
    ]
    names = [f.properties["name"] for f in hosting]
    print(f"construction site intersects: {', '.join(names)}")

    # pre-build: LAI over the site
    result = store.query(
        PREFIXES + f"""
        SELECT (AVG(?v) AS ?mean) (COUNT(?o) AS ?n) WHERE {{
          ?o lai:lai ?v ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
          FILTER(geof:sfWithin(?w,
            "{SITE.wkt}"^^geo:wktLiteral))
        }}
        """
    )
    row = result.rows[0]
    pre_lai = row["mean"].value if row.get("mean") else 0.0
    print(f"pre-build : site LAI mean {pre_lai:.2f} "
          f"({row['n'].value} observations)")

    # green share of the hosting area from Urban Atlas
    area_geom = hosting[0].geometry
    green_area = sum(
        geo_ops.area(f.geometry)
        for f in urban_atlas()
        if f.properties["code"] == "14100"
        and geo_ops.intersects(f.geometry, area_geom)
    )
    share = green_area / geo_ops.area(area_geom)
    print(f"pre-build : Urban Atlas green share of {names[0]}: "
          f"{share:.1%}")

    # post-build scenario: site becomes sealed surface (LAI -> 0.1)
    post_lai = 0.1
    lost = pre_lai - post_lai
    print(f"post-build: site LAI -> {post_lai:.2f} "
          f"(greenness loss {lost:.2f})")
    verdict = (
        "HIGH impact — site overlaps green urban areas, consider "
        "relocating" if share > 0.05 and lost > 1.0
        else "moderate impact — add compensatory planting"
        if lost > 0.5 else "low impact"
    )
    print(f"assessment: {verdict}")


if __name__ == "__main__":
    main()
