"""The paper's Section 4 case study: the greenness of Paris.

Reproduces Listings 1-3 and Figure 4 end to end:

- builds synthetic Paris (parks, CORINE, Urban Atlas, GADM, LAI);
- materialized workflow: GeoTriples -> Strabon -> Listing 1;
- virtual workflow: Ontop-spatial + OPeNDAP adapter -> Listing 3;
- interlinks OSM parks with GADM areas (Silk);
- renders the Figure 4 thematic map to out/greenness_paris.{svg,html}
  and exports the layered GeoJSON document.

Run:  python examples/greenness_of_paris.py
"""

import json
import pathlib

from repro.core import GreennessCaseStudy

OUT = pathlib.Path(__file__).resolve().parent.parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    study = GreennessCaseStudy(n_dekads=3, cloud_fraction=0.0)
    print(f"scenario: {len(study.dates)} dekads "
          f"({study.dates[0]} .. {study.dates[-1]})")

    # -- workflow left: materialize ---------------------------------------
    store = study.materialized_store()
    print(f"[materialized] Strabon store holds {len(store)} triples "
          f"({store.indexed_geometry_count} indexed geometries)")

    listing1 = study.run_listing1(store)
    values = sorted(row["lai"].value for row in listing1)
    print(f"[Listing 1] LAI in Bois de Boulogne: {len(values)} readings, "
          f"min {values[0]:.2f} max {values[-1]:.2f}")

    green, industrial = study.park_vs_industrial_lai(store)
    print(f"[Figure 4 claim] mean LAI green-urban={green:.2f} "
          f"vs industrial={industrial:.2f}")

    # -- workflow right: virtual -------------------------------------------
    engine, operator = study.virtual_endpoint(window_minutes=10)
    listing3 = study.run_listing3(engine)
    print(f"[Listing 3] virtual endpoint returned {len(listing3)} "
          f"observations with {operator.server_calls} OPeNDAP call(s)")
    study.run_listing3(engine)
    print(f"[Listing 2 cache] second run: still "
          f"{operator.server_calls} server call(s), "
          f"{operator.cache_hits} cache hit(s)")

    # -- interlinking ------------------------------------------------------
    from repro.interlink import (
        Comparison, DatasetSelector, LinkSpec, LinkageRule, SilkEngine,
        spatial_relation,
    )
    from repro.rdf import GADM, GEO, OSM

    spec = LinkSpec(
        source=DatasetSelector(
            store, OSM.POI,
            {"geom": [GEO.hasGeometry, GEO.asWKT]},
        ),
        target=DatasetSelector(
            store, GADM.AdministrativeUnit,
            {"geom": [GEO.hasGeometry, GEO.asWKT]},
        ),
        rule=LinkageRule(
            [Comparison("geom", spatial_relation("intersects"),
                        is_spatial=True)],
            threshold=1.0,
        ),
        link_predicate=GEO.sfIntersects,
    )
    links = SilkEngine().generate_links(spec)
    store.update(links)
    print(f"[Silk] interlinked {len(links)} park/POI-to-admin-area pairs")

    # -- Figure 4 -------------------------------------------------------------
    tm = study.build_map(store)
    svg_path = OUT / "greenness_paris.svg"
    svg_path.write_text(tm.to_svg(width=900, height=650,
                                  time_key=tm.timeline()[0]))
    html_path = OUT / "greenness_paris.html"
    html_path.write_text(tm.to_html(width=900, height=650))
    geojson_path = OUT / "greenness_paris.geojson"
    geojson_path.write_text(json.dumps(tm.to_geojson()))
    print(f"[Figure 4] wrote {svg_path.name}, {html_path.name} "
          f"(time slider over {len(tm.timeline())} dekads) and "
          f"{geojson_path.name}")


if __name__ == "__main__":
    main()
