"""Onboarding a Copernicus Service Provider's datasets (Section 3.1 / E13).

Walks the metadata pipeline a CSP goes through:

1. publish a dataset with sloppy metadata;
2. DRS-validator flags the problems;
3. the ACDD recommender derives fixes from the data itself;
4. the CMS blends the fixes in post hoc via NcML (source untouched);
5. re-validation passes and the SDL completeness score rises.

Run:  python examples/csp_onboarding.py
"""

from datetime import date

import numpy as np

from repro.catalog import (
    MetadataCms,
    augmentation_ncml,
    check_acdd,
    recommend_attributes,
    validate_server,
)
from repro.opendap import (
    DapDataset,
    DapServer,
    ServerRegistry,
    apply_ncml_overrides,
)
from repro.sdl import StreamingDataLibrary


def sloppy_dataset() -> DapDataset:
    """A provider's NetCDF with the bare minimum of metadata."""
    ds = DapDataset("SWI", attributes={"title": "Soil Water Index"})
    ds.add_variable("time", ["time"], np.array([0, 10]),
                    {"units": "days since 2018-01-01"})
    ds.add_variable("lat", ["lat"], np.linspace(48.0, 49.0, 6),
                    {"units": "degrees_north"})
    ds.add_variable("lon", ["lon"], np.linspace(2.0, 3.0, 8),
                    {"units": "degrees_east"})
    ds.add_variable(
        "SWI", ["time", "lat", "lon"],
        np.random.default_rng(3).uniform(0, 1, (2, 6, 8)),
        {"units": "1", "long_name": "Soil Water Index"},
    )
    return ds


def main() -> None:
    dataset = sloppy_dataset()
    server = DapServer("csp.example")
    registry = ServerRegistry()
    registry.register(server)

    print("[1] CSP mounts a dataset with minimal metadata")
    report = check_acdd(dataset)
    print(f"    ACDD score {report.score:.2f}; missing required: "
          f"{report.missing_required}")

    print("[2] DRS validation of the live server:")
    server.mount("csp/SWI", dataset)
    drs = validate_server(server)
    for issue in drs.errors[:4]:
        print(f"    {issue}")

    print("[3] recommender derives values from the data itself:")
    for key, value in sorted(recommend_attributes(dataset).items()):
        print(f"    {key} = {value}")

    print("[4] CMS blends an NcML override (source file untouched):")
    cms = MetadataCms()
    cms.harvest(server)
    cms.mutate(
        "csp/SWI",
        institution="Example CSP",
        source="synthetic SWI",
        license="CC-BY-4.0",
        product_version="V1.0.1",
        keywords="soil moisture, SWI",
    )
    ncml = augmentation_ncml(dataset)
    fixed = apply_ncml_overrides(dataset, ncml)
    fixed = cms.apply_to("csp/SWI", fixed)
    server.mount("csp/SWI", fixed)
    print(f"    record version now {cms.record('csp/SWI').version}")

    print("[5] after augmentation:")
    report = check_acdd(fixed)
    print(f"    ACDD score {report.score:.2f}; compliant: "
          f"{report.compliant}")
    drs = validate_server(server)
    print(f"    DRS validation: {'PASS' if drs.ok else 'FAIL'}")

    sdl = StreamingDataLibrary(registry)
    sdl.register_dataset("SWI", "dap://csp.example/csp/SWI")
    completeness = sdl.metadata_completeness("SWI")
    print(f"    SDL completeness score: {completeness['score']:.2f} "
          f"(missing: {completeness['missing']})")


if __name__ == "__main__":
    main()
