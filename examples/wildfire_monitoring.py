"""Wildfire monitoring — the TELEIOS-heritage application (paper §1/§2).

The paper's lineage projects "demonstrated the potential of linked data
... by developing prototype environmental and business applications
(e.g., wild-fire monitoring and burn scar mapping)". This example runs
that scenario over the App Lab stack:

1. a BA300 burnt-area raster with injected burn scars is served over
   (simulated) OPeNDAP;
2. Ontop-spatial's *raster adapter* exposes the cells as virtual RDF
   (each cell a polygon footprint — no GeoSPARQL extension needed);
3. one GeoSPARQL query joins burnt cells with CORINE land cover and
   administrative areas — "which arrondissements have burning forests
   or parks?";
4. Sextant renders the burn-scar map to out/wildfires_paris.svg.

Run:  python examples/wildfire_monitoring.py
"""

import pathlib
from datetime import date

from repro.data import arrondissements, corine_land_cover
from repro.geometry import wkt_loads
from repro.geometry import ops as geo_ops
from repro.madis import MadisConnection
from repro.ontop import OntopSpatial, attach_raster, \
    raster_mapping_document
from repro.sextant import Style, ThematicMap
from repro.vito import BA300_SPEC, PARIS_GRID, generate_product

OUT = pathlib.Path(__file__).resolve().parent.parent / "out"

QUERY = """
PREFIX rast: <http://www.app-lab.eu/raster/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
SELECT ?cell ?w ?v WHERE {
  ?cell rast:value ?v ; geo:hasGeometry ?g .
  ?g geo:asWKT ?w .
  FILTER(?v > 0.5)
}
"""


def main() -> None:
    OUT.mkdir(exist_ok=True)

    # [1] burnt-area product with two burn scars (west park, SE zone)
    ba300 = generate_product(BA300_SPEC, date(2018, 8, 1),
                             grid=PARIS_GRID, cloud_fraction=0.0)
    ba300["BA300"].data[0, 6:8, 4:7] = 0.95    # near Bois de Boulogne
    ba300["BA300"].data[0, 3:5, 15:18] = 0.80  # south-east
    print("[1] BA300 burnt-area raster generated (2 injected scars)")

    # [2] virtual RDF over the raster
    conn = MadisConnection()
    catalog = attach_raster(conn)
    catalog.add("ba300", ba300)
    engine = OntopSpatial.from_document(
        conn, raster_mapping_document("ba300", "BA300")
    )
    burnt = engine.query(QUERY)
    print(f"[2] {len(burnt)} burnt cells exposed as virtual RDF")

    # [3] context join: land cover + administrative areas
    corine = list(corine_land_cover())
    admin = list(arrondissements())
    affected = {}
    for row in burnt:
        cell = wkt_loads(row["w"].lexical)
        covers = [
            f.properties["label"] for f in corine
            if geo_ops.intersects(f.geometry, cell)
        ]
        areas = [
            f.properties["name"] for f in admin
            if geo_ops.intersects(f.geometry, cell)
        ]
        for area in areas:
            entry = affected.setdefault(area, set())
            entry.update(covers)
    print("[3] affected administrative areas:")
    for area in sorted(affected):
        burning_green = any(
            "Green" in label or "Forest" in label
            for label in affected[area]
        )
        marker = "  ** green/forest burning **" if burning_green else ""
        print(f"    {area}: {sorted(affected[area])}{marker}")

    # [4] burn-scar map
    tm = ThematicMap("Wildfire monitoring — Paris (synthetic)",
                     "BA300 burnt cells over CORINE and admin areas")
    tm.add_geojson_layer(
        "CORINE", corine_land_cover(),
        style=Style(fill="#d8c9a3", stroke="#a89a74", opacity=0.35),
    )
    tm.add_geojson_layer(
        "Administrative areas", arrondissements(),
        style=Style(fill="none", stroke="#888888", opacity=0.8),
    )
    tm.add_raster_layer("BA300 burnt fraction", ba300, "BA300",
                        time_index=0,
                        style=Style(stroke="#550000", opacity=0.6))
    svg_path = OUT / "wildfires_paris.svg"
    svg_path.write_text(tm.to_svg(width=900, height=600))
    print(f"[4] wrote {svg_path.name}")


if __name__ == "__main__":
    main()
